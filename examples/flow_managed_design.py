#!/usr/bin/env python3
"""Flow management and derivation relations (Section 3.5), hands-on.

A hierarchical two-cell design (an inverter leaf placed twice in a
parent) is driven through the forced flow.  Along the way the example
shows what the master framework enforces and records:

* an out-of-order layout attempt is **rejected** by the fixed flow;
* a supervised early start (Section 2.4) is allowed but flagged, and the
  tool session pops the extra consistency window;
* after the run, the full derivation chain of the layout is recovered —
  the "what belongs to what" record bare FMCAD cannot produce.

Run:  python examples/flow_managed_design.py
"""

import pathlib
import tempfile

from repro.core import HybridFramework
from repro.core.mapping import WORKING_VARIANT
from repro.errors import FlowOrderError
from repro.jcf.project import JCFDesignObjectVersion


def leaf_schematic(editor):
    editor.add_port("a", "in")
    editor.add_port("y", "out")
    editor.place_gate("g", "NOT", 1)
    editor.wire("a", "g", "in0")
    editor.wire("y", "g", "out")


def parent_schematic(editor):
    editor.add_port("x", "in")
    editor.add_port("z", "out")
    editor.place_cell("u1", "inv")
    editor.place_cell("u2", "inv")
    editor.wire("x", "u1", "a")
    editor.wire("mid", "u1", "y")
    editor.wire("mid", "u2", "a")
    editor.wire("z", "u2", "y")


def parent_bench(testbench):
    testbench.drive(0, "x", "0")
    testbench.expect(30, "z", "0")  # two inverters = buffer
    testbench.drive(50, "x", "1")
    testbench.expect(80, "z", "1")


def parent_layout(editor):
    editor.draw_rect("metal1", 0, 0, 60, 4)
    editor.add_label("x", "metal1", 1, 1)
    editor.draw_rect("metal1", 0, 10, 60, 14)
    editor.add_label("z", "metal1", 1, 11)


def main():
    root = pathlib.Path(tempfile.mkdtemp(prefix="flow_managed_"))
    hybrid = HybridFramework(root)
    resources = hybrid.jcf.resources
    resources.define_user("admin", "dana")
    resources.define_team("admin", "frontend")
    resources.add_member("admin", "dana", "frontend")
    hybrid.setup_standard_flow()

    library = hybrid.fmcad.create_library("asic")
    library.create_cell("inv")
    library.create_cell("buf2")
    project = hybrid.adopt_library("dana", library, "asic")
    resources.assign_team_to_project("admin", "frontend", project.oid)
    for cell in ("inv", "buf2"):
        hybrid.prepare_cell("dana", project, cell, team_name="frontend")

    # the leaf goes through the full flow first
    hybrid.run_schematic_entry("dana", project, library, "inv",
                               leaf_schematic)

    def leaf_bench(testbench):
        testbench.drive(0, "a", "0")
        testbench.expect(30, "y", "1")

    hybrid.run_simulation("dana", project, library, "inv", leaf_bench)

    # -- forced flow order on the parent cell -------------------------------
    hybrid.run_schematic_entry("dana", project, library, "buf2",
                               parent_schematic)
    print("attempting layout before simulation (fixed flow forbids it):")
    try:
        hybrid.run_layout_entry("dana", project, library, "buf2",
                                parent_layout)
    except FlowOrderError as exc:
        print(f"  rejected: {exc}\n")

    print("same attempt under wrapper supervision (force_early=True):")
    result = hybrid.run_layout_entry(
        "dana", project, library, "buf2", parent_layout, force_early=True
    )
    print(f"  allowed, forced_early={result.forced_early}")
    print(f"  rejected starts so far: {hybrid.jcf.engine.rejected_starts}")
    print(f"  forced starts so far:   {hybrid.jcf.engine.forced_starts}\n")

    # finish the flow properly
    sim = hybrid.run_simulation("dana", project, library, "buf2",
                                parent_bench)
    print(f"simulation of buf2 (through the hierarchy): "
          f"{'pass' if sim.success else 'fail'} ({sim.details})\n")

    # -- the derivation record ------------------------------------------------
    variant = project.cell("buf2").latest_version().variant(WORKING_VARIANT)
    layout_dobj = variant.find_design_object("layout")
    layout_version = layout_dobj.latest_version()
    chain = hybrid.jcf.engine.derivation_chain(layout_version)
    print("derivation ancestry of the buf2 layout version:")
    for ancestor in chain:
        dobj = ancestor.design_object
        print(f"  {dobj.name} ({dobj.viewtype_name}) "
              f"v{ancestor.number} [{ancestor.oid}]")

    print("\nbare FMCAD's record of the same history:",
          hybrid.fmcad.derivation_relations(), "(Section 3.5)")


if __name__ == "__main__":
    main()
