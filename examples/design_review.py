#!/usr/bin/env python3
"""Design review: the consultant, cross-probing and customizations.

A designer makes three classic mistakes; the framework's assistance
machinery catches each one:

1. a schematic with **two drivers on one net** — flagged by the ERC
   through the design consultant;
2. a testbench that passes but **initialises nothing** — exposed by the
   simulator's initialization-coverage report;
3. a layout label mismatch — found by **cross-probing** a net that
   exists in the schematic but resolves to nothing in the layout.

Along the way the stock extension-language customizations audit every
tool invocation, and the JCF desktop renders the project tree.

Run:  python examples/design_review.py
"""

import pathlib
import tempfile

from repro.core import DesignConsultant, HybridFramework
from repro.core.crossprobe import CrossProbeService
from repro.fmcad.customizations import (
    apply_standard_customizations,
    audit_counts,
)
from repro.workloads.scripts import inverter_chain_bench


def flawed_schematic(editor):
    """Two inverters both driving the output: an ERC violation."""
    editor.add_port("a", "in")
    editor.add_port("y", "out")
    for name in ("i0", "i1"):
        editor.place_gate(name, "NOT", 1)
        editor.wire("a", name, "in0")
        editor.wire("y", name, "out")  # both drive y!


def fixed_schematic(editor):
    """The repaired 2-stage buffer."""
    editor.delete("i1")
    editor.unwire("y", "i0", "out")
    editor.wire("n", "i0", "out")
    editor.place_gate("i1", "NOT", 1)
    editor.wire("n", "i1", "in0")
    editor.wire("y", "i1", "out")


def lazy_testbench(testbench):
    """Passes trivially: it drives nothing and checks nothing."""


def mislabelled_layout(editor):
    editor.draw_rect("metal1", 0, 0, 40, 4)
    editor.add_label("a", "metal1", 1, 1)
    editor.draw_rect("metal1", 0, 10, 40, 14)
    editor.add_label("out", "metal1", 1, 11)  # schematic calls it "y"!


def main():
    root = pathlib.Path(tempfile.mkdtemp(prefix="review_"))
    hybrid = HybridFramework(root)
    resources = hybrid.jcf.resources
    resources.define_user("admin", "gina")
    resources.define_team("admin", "reviewers")
    resources.add_member("admin", "gina", "reviewers")
    hybrid.setup_standard_flow()
    apply_standard_customizations(hybrid.fmcad)

    library = hybrid.fmcad.create_library("review_lib")
    library.create_cell("buf2")
    project = hybrid.adopt_library("gina", library, "review")
    resources.assign_team_to_project("admin", "reviewers", project.oid)
    hybrid.prepare_cell("gina", project, "buf2", team_name="reviewers")
    consultant = DesignConsultant(hybrid.jcf, guard=hybrid.guard)

    # -- mistake 1: the shorted schematic -----------------------------------
    hybrid.run_schematic_entry("gina", project, library, "buf2",
                               flawed_schematic)
    print("after the first schematic save:")
    for advice in consultant.advise(project, library):
        if advice.topic == "erc":
            print(f"  {advice}")

    print("\nfixing the schematic...")
    hybrid.run_schematic_entry("gina", project, library, "buf2",
                               fixed_schematic)
    erc_advice = [a for a in consultant.advise(project, library)
                  if a.topic == "erc"]
    print(f"  ERC findings now: {len(erc_advice)}")

    # -- mistake 2: the lazy testbench ------------------------------------------
    from repro.tools.schematic.model import Schematic
    from repro.tools.schematic.netlist import netlist_schematic
    from repro.tools.simulator.engine import LogicSimulator

    result = hybrid.run_simulation("gina", project, library, "buf2",
                                   lazy_testbench)
    print(f"\nlazy testbench verdict: "
          f"{'pass' if result.success else 'fail'} — but:")
    schematic = Schematic.from_bytes(
        library.read_version(library.cellview("buf2", "schematic"))
    )
    netlist = netlist_schematic(schematic)
    sim = LogicSimulator(netlist).run([])
    print(f"  initialization coverage: "
          f"{sim.initialization_coverage():.0%} "
          f"(uninitialised: {sim.uninitialized_nets()})")
    print("  re-running with a real testbench...")
    result = hybrid.run_simulation("gina", project, library, "buf2",
                                   inverter_chain_bench(2))
    print(f"  real testbench verdict: "
          f"{'pass' if result.success else 'fail'}")

    # -- mistake 3: the mislabelled layout ------------------------------------------
    hybrid.run_layout_entry("gina", project, library, "buf2",
                            mislabelled_layout)
    probe = CrossProbeService(hybrid.fmcad, library, "buf2", "gina")
    for net in ("a", "y"):
        outcome = probe.probe_from_schematic(net)
        status = ("highlights "
                  f"{outcome.highlighted_shapes} shapes"
                  if outcome.resolved else "NOT FOUND in layout")
        print(f"  cross-probe {net!r}: {status}")
    probe.close()

    # -- the audit trail and the project tree ------------------------------------------
    print("\ntool-invocation audit (extension-language customization):")
    for tool, count in sorted(audit_counts(hybrid.fmcad).items()):
        print(f"  {tool:20s} {count}")
    print("\n" + hybrid.jcf.desktop.render_project(project))


if __name__ == "__main__":
    main()
