#!/usr/bin/env python3
"""Black-box integration: an FPGA vendor flow under JCF management.

The paper's group also modelled an FPGA design flow in JCF ([Seep94b]),
and the introduction notes JCF supports integration levels "ranging from
simple black-box integration up to very tight white-box integration".
This example runs the four-step FPGA flow with the vendor tools wrapped
as **black boxes** (opaque functions on staged files):

    schematic_entry (white box) -> synthesis -> place_and_route
                                 -> bitstream_generation

Even for opaque tools, the master framework still stages data through
OMS, enforces the fixed order, versions every output in both frameworks
and records the complete derivation chain — only the in-tool menu
guarding is unavailable (there are no menus to guard).

Run:  python examples/fpga_black_box_flow.py
"""

import pathlib
import tempfile

from repro.core import BlackBoxToolWrapper, HybridFramework
from repro.jcf.flows import fpga_flow
from repro.jcf.project import JCFDesignObjectVersion


def schematic(editor):
    editor.add_port("clk", "in")
    editor.add_port("d", "in")
    editor.add_port("q", "out")
    editor.place_gate("ff", "DFF")
    editor.wire("d", "ff", "d")
    editor.wire("clk", "ff", "clk")
    editor.wire("q", "ff", "q")


def synthesis_tool(inputs):
    """Pretend vendor synthesis: schematic bytes -> netlist bytes."""
    source = inputs["schematic"]
    return True, b"EDIF-NETLIST(" + str(len(source)).encode() + b" bytes)", \
        "mapped to 1 CLB"


def place_route_tool(inputs):
    netlist = inputs["netlist"]
    return True, b"PLACED{" + netlist[:16] + b"}", "routed, 0 overflows"


def bitstream_tool(inputs):
    placement = inputs["placement"]
    return True, b"BITSTREAM:" + placement[:12], "bitstream generated"


def main():
    root = pathlib.Path(tempfile.mkdtemp(prefix="fpga_"))
    hybrid = HybridFramework(root)
    resources = hybrid.jcf.resources
    resources.define_user("admin", "fred")
    resources.define_team("admin", "fpga_team")
    resources.add_member("admin", "fred", "fpga_team")
    hybrid.register_flow(fpga_flow())

    library = hybrid.fmcad.create_library("fpga_lib")
    library.create_cell("controller")
    project = hybrid.adopt_library("fred", library, "fpga_project")
    resources.assign_team_to_project("admin", "fpga_team", project.oid)
    hybrid.prepare_cell("fred", project, "controller",
                        flow_name="fpga_flow", team_name="fpga_team")

    print("white-box step:")
    result = hybrid.run_schematic_entry(
        "fred", project, library, "controller", schematic
    )
    print(f"  schematic_entry -> {result.details}")

    print("black-box steps:")
    vendor_tools = [
        ("synthesis", "synthesis_tool", "netlist", synthesis_tool),
        ("place_and_route", "place_route_tool", "placement",
         place_route_tool),
        ("bitstream_generation", "bitstream_tool", "bitstream",
         bitstream_tool),
    ]
    last = None
    for activity, tool, viewtype, fn in vendor_tools:
        wrapper = BlackBoxToolWrapper(
            hybrid.jcf, hybrid.fmcad, hybrid.mapper, hybrid.guard,
            activity_name=activity, tool_name=tool,
            output_viewtype=viewtype, tool_fn=fn,
        )
        last = wrapper.run("fred", project, library, "controller")
        print(f"  {activity:22s} -> {last.details}  "
              f"(FMCAD v{last.fmcad_version}, JCF {last.jcf_version_oid})")

    print("\nFMCAD library now holds:")
    for cellview in library.cell("controller").cellviews():
        version = cellview.default_version
        print(f"  {cellview.name:24s} v{version.number}  "
              f"{version.read_data()[:40]!r}")

    bitstream = JCFDesignObjectVersion(
        hybrid.jcf.db, hybrid.jcf.db.get(last.jcf_version_oid)
    )
    print("\nderivation ancestry of the bitstream (recorded by JCF):")
    for ancestor in hybrid.jcf.engine.derivation_chain(bitstream):
        dobj = ancestor.design_object
        print(f"  {dobj.viewtype_name:12s} {dobj.name} v{ancestor.number}")


if __name__ == "__main__":
    main()
