#!/usr/bin/env python3
"""Quickstart: stand up a hybrid JCF-FMCAD environment and run one flow.

This walks the shortest useful path through the library:

1. create the hybrid framework (JCF master + FMCAD slave, shared clock);
2. define users/teams and the standard three-tool flow of the paper;
3. create an FMCAD library, adopt it into JCF (Table 1 mapping);
4. reserve the cell in a private workspace and run
   schematic entry -> digital simulation -> layout entry;
5. inspect what the master framework now knows: derivation relations,
   flow state, and the simulated cost of it all.

Run:  python examples/quickstart.py
"""

import pathlib
import tempfile

from repro.core import HybridFramework
from repro.core.mapping import WORKING_VARIANT


def enter_inverter_schematic(editor):
    """Designer actions inside the schematic entry tool: a 2-stage buffer."""
    editor.add_port("a", "in")
    editor.add_port("y", "out")
    editor.place_gate("i0", "NOT", 1)
    editor.place_gate("i1", "NOT", 1)
    editor.wire("a", "i0", "in0")
    editor.wire("n0", "i0", "out")
    editor.wire("n0", "i1", "in0")
    editor.wire("y", "i1", "out")


def configure_testbench(testbench):
    """Designer actions inside the simulator: two checks on the buffer."""
    testbench.drive(0, "a", "0")
    testbench.expect(30, "y", "0")
    testbench.drive(50, "a", "1")
    testbench.expect(80, "y", "1")


def draw_layout(editor):
    """Designer actions inside the layout editor: two labelled straps."""
    editor.draw_rect("metal1", 0, 0, 40, 4)
    editor.add_label("a", "metal1", 1, 1)
    editor.draw_rect("metal1", 0, 10, 40, 14)
    editor.add_label("y", "metal1", 1, 11)


def main():
    root = pathlib.Path(tempfile.mkdtemp(prefix="jcf_fmcad_"))
    print(f"workspace: {root}\n")

    # -- 1. the hybrid framework -------------------------------------------
    hybrid = HybridFramework(root)

    # -- 2. resources (administrator) and the fixed flow ---------------------
    resources = hybrid.jcf.resources
    resources.define_user("admin", "alice", "Alice Designer")
    resources.define_team("admin", "asic_team")
    resources.add_member("admin", "alice", "asic_team")
    hybrid.setup_standard_flow()

    # -- 3. an FMCAD library, adopted into JCF -------------------------------
    library = hybrid.fmcad.create_library("demo_lib")
    library.create_cell("buffer2")
    project = hybrid.adopt_library("alice", library, "demo_project")
    resources.assign_team_to_project("admin", "asic_team", project.oid)
    print(f"adopted library {library.name!r} as project {project.name!r}")
    print("Table 1 mapping coverage:", hybrid.mapper.coverage())

    # -- 4. reserve and run the flow ------------------------------------------
    hybrid.prepare_cell("alice", project, "buffer2", team_name="asic_team")
    for description, runner, action in (
        ("schematic entry",
         hybrid.run_schematic_entry, enter_inverter_schematic),
        ("digital simulation",
         hybrid.run_simulation, configure_testbench),
        ("layout entry", hybrid.run_layout_entry, draw_layout),
    ):
        result = runner("alice", project, library, "buffer2", action)
        status = "ok" if result.success else "FAILED"
        print(f"  {description:20s} -> {status}  ({result.details})")

    # -- 5. what the master framework knows ------------------------------------
    variant = (
        project.cell("buffer2").latest_version().variant(WORKING_VARIANT)
    )
    print("\nflow state:",
          hybrid.jcf.engine.state_of(variant).status_by_activity)
    print("\nderivation record (what belongs to what):")
    for execution, record in hybrid.jcf.engine.what_belongs_to_what(
        variant
    ).items():
        print(f"  {execution}")
        print(f"    needs:   {record['needs']}")
        print(f"    creates: {record['creates']}")

    findings = hybrid.guard.scan(project, library)
    print(f"\nconsistency scan: {len(findings)} findings")

    print("\nsimulated designer time by category (ms):")
    for category, ms in sorted(hybrid.clock.elapsed_by_category().items()):
        print(f"  {category:12s} {ms:10.1f}")


if __name__ == "__main__":
    main()
