#!/usr/bin/env python3
"""Team design: the Section 3.1 multi-user story, played out.

A four-designer team works on a shared three-cell design.  The same
access pattern is replayed twice:

* against **bare FMCAD** — checkout/checkin on one shared library, one
  ``.meta`` file, manual metadata refresh;
* against the **hybrid framework** — JCF workspace reservations, with
  new cell versions derived on conflict (parallel work FMCAD forbids).

The output shows the paper's qualitative claims as numbers: FMCAD
designers block and read stale metadata; hybrid designers never idle.

Run:  python examples/team_asic_project.py
"""

import pathlib
import tempfile

from repro.workloads.metrics import format_table
from repro.workloads.sessions import MultiUserSimulation


def main():
    root = pathlib.Path(tempfile.mkdtemp(prefix="team_asic_"))
    rows = []
    for designers in (2, 4, 8):
        simulation = MultiUserSimulation(
            designers=designers, cells=3, rounds=40, seed=11
        )
        fmcad = simulation.run_fmcad_only(root / f"fmcad{designers}")
        hybrid = simulation.run_hybrid(root / f"hybrid{designers}")
        rows.append([
            designers,
            f"{fmcad.block_rate:.0%}",
            fmcad.completed,
            fmcad.stale_reads,
            f"{hybrid.block_rate:.0%}",
            hybrid.completed,
            hybrid.parallel_versions,
        ])

    print("Multi-user design, 3 shared cells, 40 rounds")
    print("(fmcad = checkout/checkin baseline; hybrid = JCF workspaces)\n")
    print(
        format_table(
            [
                "designers",
                "fmcad blocked",
                "fmcad done",
                "stale reads",
                "hybrid blocked",
                "hybrid done",
                "parallel versions",
            ],
            rows,
        )
    )
    print(
        "\nReading: FMCAD blocking grows with team size and designers work"
        "\nfrom stale metadata; the hybrid framework converts every conflict"
        "\ninto a parallel cell version (Section 3.1)."
    )


if __name__ == "__main__":
    main()
