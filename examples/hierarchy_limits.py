#!/usr/bin/env python3
"""Design hierarchies and the JCF 3.0 limitation (Section 3.3).

Three scenarios on generated designs:

1. an **isomorphic** design (layout hierarchy mirrors the schematic
   hierarchy) is adopted; the manual submission cost — one JCF desktop
   interaction per CompOf edge — is reported;
2. a **non-isomorphic** design (the top layout flattens its children)
   is rejected by JCF 3.0 strict mode, exactly as the 1995 prototype had
   to reject it;
3. the same design is accepted by the **future-release** mode the paper
   announces, with the conflicts recorded.

Run:  python examples/hierarchy_limits.py
"""

import pathlib
import tempfile

from repro.core import HybridFramework
from repro.core.hierarchy import HierarchyManager
from repro.errors import NonIsomorphicHierarchyError
from repro.workloads.designs import (
    DesignSpec,
    generate_design,
    generate_layout_for,
    populate_library,
)


def fresh_hybrid(root, name, strict=True):
    hybrid = HybridFramework(root / name, jcf3_strict=strict)
    hybrid.jcf.resources.define_user("admin", "erin")
    hybrid.jcf.resources.define_team("admin", "team")
    hybrid.jcf.resources.add_member("admin", "erin", "team")
    hybrid.setup_standard_flow()
    return hybrid


def main():
    root = pathlib.Path(tempfile.mkdtemp(prefix="hierarchy_"))
    spec = DesignSpec(name="soc", depth=2, fanout=3, leaf_inputs=4, seed=42)

    # -- scenario 1: isomorphic ----------------------------------------------
    design = generate_design(spec)
    hybrid = fresh_hybrid(root, "iso")
    library = populate_library(hybrid.fmcad, "soclib", design)
    project = hybrid.adopt_library("erin", library, "soc")
    submission = hybrid.hierarchy.submissions[-1]
    print(f"design: {spec.num_cells} cells, "
          f"{len(design.hierarchy)} hierarchy edges")
    print("scenario 1 — isomorphic design:")
    print(f"  accepted: {submission.accepted}")
    print(f"  manual desktop interactions paid: "
          f"{submission.desktop_interactions} (one per edge, Section 3.3)")
    print(f"  declared CompOf edges in JCF: "
          f"{len(hybrid.jcf.desktop.declared_hierarchy(project))}\n")

    # -- scenario 2: non-isomorphic, JCF 3.0 strict -----------------------------
    design2 = generate_design(spec)
    design2.layouts["soc"] = generate_layout_for(
        design2.schematics["soc"], isomorphic=False
    )
    strict = fresh_hybrid(root, "strict")
    library2 = populate_library(strict.fmcad, "soclib", design2)
    print("scenario 2 — non-isomorphic design under JCF 3.0:")
    try:
        strict.adopt_library("erin", library2, "soc")
    except NonIsomorphicHierarchyError as exc:
        print(f"  rejected: {exc}")
    print(f"  rejections recorded: {strict.hierarchy.rejections}\n")

    # -- scenario 3: future-release mode -------------------------------------------
    future = fresh_hybrid(root, "future", strict=False)
    library3 = populate_library(future.fmcad, "soclib", design2)
    project3 = future.mapper.import_library(library3, "erin", "soc")
    manager = HierarchyManager(future.jcf.desktop, jcf3_strict=False)
    submission3 = manager.submit_from_library("erin", project3, library3)
    print("scenario 3 — same design, future-release mode "
          "(non-isomorphic support):")
    print(f"  accepted: {submission3.accepted}")
    print(f"  conflicts recorded ({len(submission3.conflicts)}):")
    for conflict in submission3.conflicts:
        print(f"    {conflict}")


if __name__ == "__main__":
    main()
