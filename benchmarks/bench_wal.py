"""E36e — write-ahead-log persistence and delta harvest.

The Section 3.6 durability tax: the seed persisted the whole OMS
snapshot on every save, so making a checkin durable cost O(database),
however small the change.  The write-ahead log makes durability cost
O(change set), and delta harvest stops unchanged tool outputs from
crossing the OMS boundary at all.  Two experiments:

1. **per-checkin persistence cost** — grow the database 10x and persist
   one identical small checkin at each size.  In WAL mode the bytes
   written (and the wall time) stay flat; making the same checkin
   durable via a snapshot rewrite grows linearly with the database;
2. **delta vs full harvest** — run the E36 design-entry flow twice
   (the rerun reproduces the schematic byte-identically).  With delta
   harvest the rerun's boundary crossing is a metadata operation, not a
   copy, so the simulated copy-in/copy-out time drops while the stored
   state stays equivalent.

Run standalone (``python benchmarks/bench_wal.py [--smoke]``) or via
``pytest benchmarks/bench_wal.py --benchmark-only -s``; full runs
persist ``benchmarks/results/e36e_wal_persistence.txt``.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import shutil
import statistics
import sys
import tempfile
import time
from typing import Dict, List, Tuple

if __name__ == "__main__":  # standalone: make src/ importable without install
    _SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.core.coupling import HybridFramework
from repro.oms import durable
from repro.oms.database import OMSDatabase
from repro.oms.schema import AttributeDef, Schema
from repro.oms.snapshot import dump_snapshot
from repro.oms.wal import WriteAheadLog
from repro.workloads.metrics import format_table

#: database sizes (design objects) for the per-checkin cost experiment;
#: the span is the acceptance criterion's 10x growth
DB_SIZES = [200, 600, 2_000]
PAYLOAD_BYTES = 2_000
#: identical small checkins persisted (and timed) at each size
CHECKINS = 30
SMOKE_DB_SIZES = [50, 500]
SMOKE_CHECKINS = 10
if os.environ.get("REPRO_BENCH_SMOKE"):
    DB_SIZES = SMOKE_DB_SIZES
    CHECKINS = SMOKE_CHECKINS

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "e36e_wal_persistence.txt"
)


def _schema() -> Schema:
    schema = Schema("walbench")
    schema.define_entity(
        "Design", [AttributeDef("name", "str", required=True)]
    )
    return schema


def _grow(db: OMSDatabase, start: int, stop: int) -> None:
    for index in range(start, stop):
        db.create(
            "Design",
            {"name": f"d{index}"},
            payload=index.to_bytes(4, "big") * (PAYLOAD_BYTES // 4),
        )


# -- experiment 1: per-checkin persistence cost vs database size ------------


def run_persistence_cost(
    sizes: List[int],
) -> Tuple[List[List[str]], Dict[str, List[float]]]:
    """Persist one identical checkin at each database size, both modes."""
    rows = []
    wal_ms: List[float] = []
    wal_bytes: List[float] = []
    snap_ms: List[float] = []
    snap_bytes: List[float] = []
    root = pathlib.Path(tempfile.mkdtemp())
    try:
        wal = WriteAheadLog(root / "wal")
        db, _ = wal.recover(_schema())
        db.attach_wal(wal)
        grown = 0
        for size in sizes:
            _grow(db, grown, size)
            grown = size
            target = db.select("Design")[0].oid

            # WAL mode: durability per checkin is one appended record;
            # median per-checkin wall time after an untimed warm-up
            for index in range(5):
                db.set_payload(target, b"warm" + index.to_bytes(4, "big"))
            before_bytes = wal.stats()["bytes_appended"]
            samples = []
            for index in range(CHECKINS):
                start = time.perf_counter()
                db.set_payload(target, b"edit" + index.to_bytes(4, "big"))
                samples.append((time.perf_counter() - start) * 1000)
            wal_checkin_ms = statistics.median(samples)
            wal_checkin_bytes = (
                wal.stats()["bytes_appended"] - before_bytes
            ) / CHECKINS

            # snapshot mode: the same checkin is durable only after a
            # whole-database rewrite (what the seed's save_state did)
            snapshot_path = root / "snapshot.json"
            samples = []
            for index in range(CHECKINS):
                start = time.perf_counter()
                db.set_payload(target, b"snap" + index.to_bytes(4, "big"))
                durable.atomic_replace(snapshot_path, dump_snapshot(db))
                samples.append((time.perf_counter() - start) * 1000)
            snap_checkin_ms = statistics.median(samples)
            snap_checkin_bytes = float(snapshot_path.stat().st_size)

            wal_ms.append(wal_checkin_ms)
            wal_bytes.append(wal_checkin_bytes)
            snap_ms.append(snap_checkin_ms)
            snap_bytes.append(snap_checkin_bytes)
            rows.append([
                f"{size:>6,}",
                f"{wal_checkin_bytes:,.0f}",
                f"{wal_checkin_ms:.3f}",
                f"{snap_checkin_bytes:,.0f}",
                f"{snap_checkin_ms:.3f}",
            ])
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return rows, {
        "wal_ms": wal_ms,
        "wal_bytes": wal_bytes,
        "snap_ms": snap_ms,
        "snap_bytes": snap_bytes,
    }


# -- experiment 2: delta vs full harvest on the design-entry flow -----------


def _inverter_editor(editor) -> None:
    if editor.schematic.ports():
        return  # rerun: reproduce the entered design byte-identically
    editor.add_port("a", "in")
    editor.add_port("y", "out")
    previous = "a"
    for index in range(2):
        editor.place_gate(f"i{index}", "NOT", 1)
        editor.wire(previous, f"i{index}", "in0")
        out_net = "y" if index == 1 else f"n{index}"
        editor.wire(out_net, f"i{index}", "out")
        previous = out_net


def run_harvest_arm(delta_harvest: bool) -> Dict[str, float]:
    root = pathlib.Path(tempfile.mkdtemp())
    try:
        hybrid = HybridFramework(root / "env")
        for wrapper in (
            hybrid.schematic_entry,
            hybrid.digital_simulation,
            hybrid.layout_entry,
        ):
            wrapper.delta_harvest = delta_harvest
        resources = hybrid.jcf.resources
        resources.define_user("admin", "alice")
        resources.define_team("admin", "team1")
        resources.add_member("admin", "alice", "team1")
        hybrid.setup_standard_flow()
        library = hybrid.fmcad.create_library("chiplib")
        library.create_cell("inv2")
        project = hybrid.adopt_library("alice", library, "chipA")
        resources.assign_team_to_project("admin", "team1", project.oid)
        hybrid.prepare_cell("alice", project, "inv2", team_name="team1")
        for _ in range(4):  # entry, then three byte-identical reruns
            result = hybrid.run_schematic_entry(
                "alice", project, library, "inv2", _inverter_editor
            )
            assert result.success
        harvest = hybrid.stats()["harvest"]
        return {
            "copy_ms": hybrid.clock.elapsed_by_category().get("copy", 0.0),
            "delta_hits": float(harvest["delta_hits"]),
            "full_imports": float(harvest["full_imports"]),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


# -- report + assertions ------------------------------------------------------


def run_bench(sizes: List[int]) -> Tuple[str, Dict[str, float]]:
    cost_rows, cost = run_persistence_cost(sizes)
    full = run_harvest_arm(delta_harvest=False)
    delta = run_harvest_arm(delta_harvest=True)

    snap_growth = cost["snap_bytes"][-1] / cost["snap_bytes"][0]
    wal_growth = cost["wal_bytes"][-1] / cost["wal_bytes"][0]
    report = (
        "E36e (Section 3.6) — write-ahead-log persistence and delta "
        "harvest\n\n"
        "1. persisting one identical small checkin as the database "
        "grows\n   (bytes written to disk and wall ms, per checkin, "
        f"median of {CHECKINS})\n\n"
    )
    report += format_table(
        [
            "objects",
            "WAL bytes",
            "WAL ms",
            "snapshot bytes",
            "snapshot ms",
        ],
        cost_rows,
    )
    report += (
        f"\n\ngrowth across the {sizes[0]:,} -> {sizes[-1]:,} object "
        f"span: WAL {wal_growth:.2f}x, snapshot {snap_growth:.1f}x\n\n"
        "2. delta vs full harvest — design entry plus three reruns that\n"
        "   reproduce the schematic byte-identically\n\n"
    )
    report += format_table(
        ["harvest", "simulated copy ms", "delta hits", "full imports"],
        [
            [
                "full (seed)",
                f"{full['copy_ms']:,.1f}",
                f"{full['delta_hits']:.0f}",
                f"{full['full_imports']:.0f}",
            ],
            [
                "delta",
                f"{delta['copy_ms']:,.1f}",
                f"{delta['delta_hits']:.0f}",
                f"{delta['full_imports']:.0f}",
            ],
        ],
    )
    report += (
        "\n\nreading: with the WAL, the cost of making a checkin durable "
        "is the size of\nthe change, not the size of the database — flat "
        "as the database grows 10x,\nwhere the seed's snapshot rewrite "
        "grows linearly.  Delta harvest removes the\nre-intern copy for "
        "tool runs whose output bytes did not change."
    )

    metrics = {
        "wal_growth": wal_growth,
        "snap_growth": snap_growth,
        "delta_copy_ms": delta["copy_ms"],
        "full_copy_ms": full["copy_ms"],
    }

    # -- shape assertions ---------------------------------------------------
    # (1) WAL: identical checkins append the same bytes at every size
    # (flat to within the LSN's digit width), and wall time stays flat
    # within the ±20% acceptance band while the snapshot arm grows with
    # the database
    assert abs(wal_growth - 1.0) < 0.01, (
        f"WAL bytes per checkin grew {wal_growth:.2f}x with database size"
    )
    assert cost["wal_ms"][-1] <= 1.2 * cost["wal_ms"][0] or (
        cost["wal_ms"][-1] < 1.0  # sub-ms jitter floor on tiny commits
    ), f"WAL per-checkin wall time grew with database size: {cost['wal_ms']}"
    size_span = sizes[-1] / sizes[0]
    assert snap_growth > 0.5 * size_span, (
        f"snapshot bytes should track database size: {snap_growth:.1f}x"
    )
    # (2) delta harvest: reruns hit, and the boundary-crossing time drops
    assert delta["delta_hits"] >= 3.0
    assert full["delta_hits"] == 0.0
    assert delta["copy_ms"] < full["copy_ms"]

    return report, metrics


class TestWALBench:
    def test_e36e_wal_persistence(self, benchmark, report_writer):
        report, metrics = run_bench(DB_SIZES)
        report_writer("e36e_wal_persistence", report)
        assert abs(metrics["wal_growth"] - 1.0) < 0.01
        # real wall time of the hot path: one logged checkin
        root = pathlib.Path(tempfile.mkdtemp())
        wal = WriteAheadLog(root)
        db, _ = wal.recover(_schema())
        db.attach_wal(wal)
        _grow(db, 0, DB_SIZES[0])
        target = db.select("Design")[0].oid
        counter = [0]

        def checkin():
            counter[0] += 1
            db.set_payload(target, counter[0].to_bytes(8, "big"))

        benchmark(checkin)
        shutil.rmtree(root, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes, no results file (CI)",
    )
    args = parser.parse_args(argv)
    sizes = SMOKE_DB_SIZES if args.smoke else DB_SIZES
    report, metrics = run_bench(sizes)
    print(report)
    if not args.smoke:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(report + "\n", encoding="utf-8")
        print(f"\nwrote {RESULTS_PATH}")
    print(
        f"OK: WAL per-checkin bytes flat ({metrics['wal_growth']:.2f}x) "
        f"while snapshots grew {metrics['snap_growth']:.1f}x; delta "
        f"harvest cut boundary copy time "
        f"{metrics['full_copy_ms'] / metrics['delta_copy_ms']:.1f}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
