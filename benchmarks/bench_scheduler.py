"""Parallel coupled-run scheduler: wall-clock speedup and determinism.

The paper's coupling executed one encapsulated tool at a time; the
batch scheduler (``repro.core.scheduler``) runs independent coupled
runs concurrently while keeping the committed OMS state byte-identical
to a sequential execution.  This benchmark drives a batch of
``N_RUNS`` independent schematic-entry runs whose tool step sleeps for
``TOOL_SLEEP_S`` real seconds — the external-EDA-tool latency the
scheduler exists to overlap — through three arms:

1. **plain loop** — the pre-scheduler API, one ``run_schematic_entry``
   after another (reference wall time, summed simulated time);
2. **run_many(workers=1)** — the scheduler's sequential baseline: the
   same wave/gate/lane protocol, executed serially;
3. **run_many(workers=WORKERS)** — the parallel arm.

Asserted shape:

* parallel wall time beats the sequential scheduler arm by at least
  ``MIN_SPEEDUP``x (the external latencies really overlap);
* the workers=1 and workers=WORKERS arms end in **byte-identical** OMS
  snapshots (both environments are rebuilt at the same directory, since
  snapshots embed absolute tool paths);
* both scheduler arms end with a clean cross-framework audit;
* group-commit coalesces the parallel arm's per-run metadata
  transactions into fewer flushes than commits.

The simulated clock reports *critical-path makespan* (every wave run
charges a private lane; the master clock advances to the latest lane
end), so the report also shows simulated makespan against the summed
per-run cost — the contention-free speedup the batch admits.

Run standalone (``python benchmarks/bench_scheduler.py [--smoke]``) or
via ``pytest benchmarks/bench_scheduler.py --benchmark-only -s``; full
runs persist ``benchmarks/results/scheduler_parallel.txt``.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import shutil
import sys
import tempfile
import time
from typing import Dict, Tuple

if __name__ == "__main__":  # standalone: make src/ importable without install
    _SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.core.coupling import HybridFramework
from repro.core.scheduler import RunRequest
from repro.workloads.metrics import format_table

#: independent coupled runs in the benchmark batch
N_RUNS = 8
#: worker threads in the parallel arm
WORKERS = 4
#: real seconds each tool step blocks (external tool latency)
TOOL_SLEEP_S = 0.25
#: required wall-clock speedup of workers=WORKERS over workers=1
MIN_SPEEDUP = 3.0
#: the fixed schedule seed both scheduler arms share
SEED = 7

if os.environ.get("REPRO_BENCH_SMOKE"):
    TOOL_SLEEP_S = 0.06

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "scheduler_parallel.txt"
)


def build_environment(root: pathlib.Path):
    """A hybrid environment with N_RUNS prepared cells at *root*."""
    if root.exists():
        shutil.rmtree(root)
    hybrid = HybridFramework(root)
    resources = hybrid.jcf.resources
    resources.define_user("admin", "alice")
    resources.define_team("admin", "team1")
    resources.add_member("admin", "alice", "team1")
    hybrid.setup_standard_flow()
    library = hybrid.fmcad.create_library("chiplib")
    cells = [f"block{i}" for i in range(N_RUNS)]
    for cell in cells:
        library.create_cell(cell)
    project = hybrid.adopt_library("alice", library, "chipA")
    resources.assign_team_to_project("admin", "team1", project.oid)
    for cell in cells:
        hybrid.prepare_cell("alice", project, cell, team_name="team1")
    return hybrid, project, library, cells


def slow_schematic_edit(editor):
    """A two-inverter schematic whose entry blocks for TOOL_SLEEP_S.

    The sleep stands in for the real EDA tool's runtime — the part of a
    coupled run that holds no OMS state and therefore overlaps.
    """
    time.sleep(TOOL_SLEEP_S)
    editor.add_port("a", "in")
    editor.add_port("y", "out")
    previous = "a"
    for i in range(2):
        editor.place_gate(f"i{i}", "NOT", 1)
        editor.wire(previous, f"i{i}", "in0")
        out_net = "y" if i == 1 else f"n{i}"
        editor.wire(out_net, f"i{i}", "out")
        previous = out_net


def batch_requests(project, library, cells):
    return [
        RunRequest(
            "alice", project, library, cell, "schematic_entry",
            kwargs={"edit_fn": slow_schematic_edit},
        )
        for cell in cells
    ]


# -- the three arms ----------------------------------------------------------


def run_plain_loop(root: pathlib.Path) -> Dict[str, float]:
    hybrid, project, library, cells = build_environment(root)
    sim_before = hybrid.clock.now_ms
    start = time.perf_counter()
    for cell in cells:
        hybrid.run_schematic_entry(
            "alice", project, library, cell, slow_schematic_edit
        )
    return {
        "wall_s": time.perf_counter() - start,
        "sim_ms": hybrid.clock.now_ms - sim_before,
    }


def run_scheduled(root: pathlib.Path, workers: int):
    hybrid, project, library, cells = build_environment(root)
    result = hybrid.run_many(
        batch_requests(project, library, cells), workers=workers, seed=SEED
    )
    assert all(o.ok for o in result.outcomes), (
        f"scheduled batch (workers={workers}) had failures: "
        f"{[(o.index, o.status, o.error) for o in result.outcomes if not o.ok]}"
    )
    audit = hybrid.audit()
    assert audit.clean, (
        f"workers={workers} arm left a dirty audit:\n{audit.render()}"
    )
    snapshot = hybrid.jcf.save_snapshot()
    return result, snapshot


# -- report + assertions ------------------------------------------------------


def run_bench() -> Tuple[str, Dict[str, float]]:
    root = pathlib.Path(tempfile.mkdtemp(prefix="bench_scheduler_")) / "env"

    plain = run_plain_loop(root)
    sequential, seq_snapshot = run_scheduled(root, workers=1)
    parallel, par_snapshot = run_scheduled(root, workers=WORKERS)
    shutil.rmtree(root.parent, ignore_errors=True)

    speedup = sequential.wall_s / parallel.wall_s
    sim_speedup = (
        parallel.summed_ms / parallel.makespan_ms
        if parallel.makespan_ms
        else 1.0
    )
    commits = parallel.commit_stats

    rows = [
        ["plain loop", "-", f"{plain['wall_s']:.2f} s",
         f"{plain['sim_ms']:.0f} ms", "-", "-"],
        ["run_many", "1", f"{sequential.wall_s:.2f} s",
         f"{sequential.makespan_ms:.0f} ms",
         f"{sequential.summed_ms:.0f} ms", f"{len(sequential.waves)}"],
        ["run_many", f"{WORKERS}", f"{parallel.wall_s:.2f} s",
         f"{parallel.makespan_ms:.0f} ms",
         f"{parallel.summed_ms:.0f} ms", f"{len(parallel.waves)}"],
    ]

    report = (
        "Parallel coupled-run scheduler: wall-clock speedup, determinism\n\n"
        f"batch: {N_RUNS} independent schematic-entry runs, each tool\n"
        f"step blocking {TOOL_SLEEP_S:.2f} s (external tool latency);\n"
        f"schedule seed {SEED}\n\n"
    )
    report += format_table(
        ["arm", "workers", "wall", "sim makespan", "sim summed", "waves"],
        rows,
    )
    report += (
        f"\n\nwall-clock speedup (workers={WORKERS} vs workers=1): "
        f"{speedup:.2f}x (required >= {MIN_SPEEDUP:.1f}x)\n"
        f"simulated makespan vs summed cost: {sim_speedup:.2f}x "
        "(critical-path accounting)\n"
        f"snapshots byte-identical across arms: "
        f"{seq_snapshot == par_snapshot}\n"
        f"group-commit: {commits['commit_count']} commits -> "
        f"{commits['flush_count']} flushes "
        f"({commits['coalesced_commits']} coalesced)\n"
        f"lock manager: {parallel.lock_stats['acquisitions']} acquisitions, "
        f"{parallel.lock_stats['contentions']} contentions"
    )
    report += (
        "\n\nreading: the scheduler overlaps the runs' external tool\n"
        "latency for a real wall-clock speedup while the gate protocol\n"
        "keeps the committed OMS state byte-identical to the sequential\n"
        "execution, and the simulated clock reports the batch's\n"
        "contention-free critical path instead of summed time."
    )

    metrics = {
        "plain_wall_s": plain["wall_s"],
        "seq_wall_s": sequential.wall_s,
        "par_wall_s": parallel.wall_s,
        "speedup": speedup,
        "sim_speedup": sim_speedup,
        "makespan_ms": parallel.makespan_ms,
        "summed_ms": parallel.summed_ms,
        "coalesced_commits": float(commits["coalesced_commits"]),
    }

    # -- shape assertions ---------------------------------------------------
    assert seq_snapshot == par_snapshot, (
        "parallel execution changed the committed OMS state: snapshots "
        "of the workers=1 and workers=%d arms differ" % WORKERS
    )
    assert speedup >= MIN_SPEEDUP, (
        f"wall-clock speedup {speedup:.2f}x below the required "
        f"{MIN_SPEEDUP:.1f}x ({N_RUNS} runs, {WORKERS} workers)"
    )
    # independent runs: one wave, makespan ~= the longest single run
    assert len(parallel.waves) == 1
    assert parallel.makespan_ms < parallel.summed_ms
    assert commits["coalesced_commits"] > 0
    assert parallel.lock_stats["contentions"] == 0

    return report, metrics


class TestSchedulerBench:
    def test_parallel_speedup_and_determinism(self, benchmark, report_writer):
        report, metrics = run_bench()
        report_writer("scheduler_parallel", report)
        assert metrics["speedup"] >= MIN_SPEEDUP
        # real wall time of building the dependency waves themselves
        from repro.core.scheduler import BatchScheduler

        class _Key:
            def __init__(self, name):
                self.name = name

        lib = _Key("chiplib")
        requests = [
            RunRequest.__new__(RunRequest) for _ in range(64)
        ]
        for i, request in enumerate(requests):
            request.user = "alice"
            request.project = None
            request.library = lib
            request.cell_name = f"block{i % 16}"
            request.activity = "schematic_entry"
            request.kwargs = {}
            request.reads = ()
            request.label = f"r{i}"
        benchmark(lambda: BatchScheduler.build_waves(requests))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shorter tool sleeps, no results file (CI)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        global TOOL_SLEEP_S
        TOOL_SLEEP_S = 0.06
    report, metrics = run_bench()
    print(report)
    if not args.smoke:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(report + "\n", encoding="utf-8")
        print(f"\nwrote {RESULTS_PATH}")
    print(
        f"OK: {metrics['speedup']:.2f}x wall speedup "
        f"(>= {MIN_SPEEDUP:.1f}x), snapshots identical, "
        f"{metrics['coalesced_commits']:.0f} commits coalesced"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
