"""ABL — ablation: integration levels (white box vs black box).

The paper's introduction notes JCF supports integration levels "ranging
from simple black-box integration up to very tight white-box
integration".  This ablation runs the same logical step — produce a
simulation result for a schematic — once through the white-box simulator
wrapper and once through a black-box stand-in, and compares what each
level buys:

* identical on both: staging, FMCAD/OMS dual versioning, derivation
  recording, flow enforcement;
* white-box only: guarded menu points (the extension-language
  consistency mechanism) and tool-level verdicts (the black box is
  trusted blindly).
"""

import pathlib
import tempfile

from repro.core import BlackBoxToolWrapper, HybridFramework
from repro.core.mapping import WORKING_VARIANT
from repro.workloads.metrics import format_table
from repro.workloads.scripts import (
    inverter_chain_bench,
    inverter_chain_editor,
)


def fresh_env():
    root = pathlib.Path(tempfile.mkdtemp())
    hybrid = HybridFramework(root)
    hybrid.jcf.resources.define_user("admin", "alice")
    hybrid.jcf.resources.define_team("admin", "team")
    hybrid.jcf.resources.add_member("admin", "alice", "team")
    hybrid.setup_standard_flow()
    library = hybrid.fmcad.create_library("lib")
    library.create_cell("cell")
    project = hybrid.adopt_library("alice", library, "proj")
    hybrid.jcf.resources.assign_team_to_project("admin", "team",
                                                project.oid)
    hybrid.prepare_cell("alice", project, "cell", team_name="team")
    hybrid.run_schematic_entry(
        "alice", project, library, "cell", inverter_chain_editor(2)
    )
    return hybrid, project, library


def run_white_box(hybrid, project, library, session_probe):
    original_open = hybrid.fmcad.open_session

    def spy(tool_name, user):
        session = original_open(tool_name, user)
        session_probe["session"] = session
        return session

    hybrid.fmcad.open_session = spy
    try:
        return hybrid.run_simulation(
            "alice", project, library, "cell", inverter_chain_bench(2)
        )
    finally:
        hybrid.fmcad.open_session = original_open


def run_black_box(hybrid, project, library, session_probe):
    def opaque_simulator(inputs):
        # an external simulator binary: consumes the schematic file,
        # reports success without the framework seeing inside
        assert "schematic" in inputs
        return True, b"SIM-LOG: 0 errors", "external simulator passed"

    wrapper = BlackBoxToolWrapper(
        hybrid.jcf, hybrid.fmcad, hybrid.mapper, hybrid.guard,
        activity_name="digital_simulation",
        tool_name="digital_simulator",
        output_viewtype="simulation",
        tool_fn=opaque_simulator,
    )
    original_open = hybrid.fmcad.open_session

    def spy(tool_name, user):
        session = original_open(tool_name, user)
        session_probe["session"] = session
        return session

    hybrid.fmcad.open_session = spy
    try:
        return wrapper.run("alice", project, library, "cell")
    finally:
        hybrid.fmcad.open_session = original_open


def locked_menus(session):
    return sum(
        1 for name in session.menu_names() if session.menu(name).locked
    )


class TestIntegrationLevels:
    def test_ablation_integration_levels(self, benchmark, report_writer):
        rows = []
        outcomes = {}
        for label, runner in (
            ("white box", run_white_box),
            ("black box", run_black_box),
        ):
            hybrid, project, library = fresh_env()
            probe = {}
            result = runner(hybrid, project, library, probe)
            session = probe["session"]
            variant = (
                project.cell("cell").latest_version()
                .variant(WORKING_VARIANT)
            )
            record = hybrid.jcf.engine.what_belongs_to_what(variant)
            sim_entry = next(
                entry for key, entry in record.items()
                if "digital_simulation" in key
            )
            outcomes[label] = {
                "guarded": locked_menus(session),
                "derivations": len(sim_entry["needs"]),
                "fmcad_version": result.fmcad_version,
                "success": result.success,
            }
            rows.append([
                label,
                outcomes[label]["guarded"],
                len(sim_entry["needs"]),
                len(sim_entry["creates"]),
                result.fmcad_version,
            ])

        # identical design management either way
        assert outcomes["white box"]["derivations"] == \
            outcomes["black box"]["derivations"] == 1
        assert outcomes["white box"]["fmcad_version"] == \
            outcomes["black box"]["fmcad_version"] == 1
        # the consistency gap: only the white box locks menus
        assert outcomes["white box"]["guarded"] >= 4
        assert outcomes["black box"]["guarded"] == 0

        def timed():
            hybrid, project, library = fresh_env()
            return run_black_box(hybrid, project, library, {})

        benchmark.pedantic(timed, rounds=2, iterations=1)

        report = (
            "ABL (intro) — integration levels: the same simulation step "
            "at two depths\n\n"
        )
        report += format_table(
            ["integration", "guarded menus", "needs recorded",
             "creates recorded", "FMCAD version"],
            rows,
        )
        report += (
            "\n\nreading: black-box integration keeps the full design-"
            "management benefit\n(staging, dual versioning, derivation "
            "record, flow order) but loses the\nextension-language menu "
            "guard — the paper's motivation for tight coupling."
        )
        report_writer("abl_integration_levels", report)
