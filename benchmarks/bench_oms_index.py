"""OMS link-index microbenchmark — naive O(E) scan vs adjacency index.

The seed kernel answered ``targets()``/``sources()`` by scanning every
``(source, target)`` pair of the relation, so each metadata query on the
JCF desktop hot path cost O(E).  The adjacency-indexed
:class:`~repro.oms.links.LinkStore` answers the same queries in
O(degree).  This benchmark builds relations of 10k–100k links, probes
random sources with both implementations (the naive scan reproduces the
seed code on the very same data) and persists the observed speedup to
``benchmarks/results/oms_index_microbench.txt``.

Run standalone (``python benchmarks/bench_oms_index.py [--smoke]``) or
via ``pytest benchmarks/bench_oms_index.py --benchmark-only -s``.
"""

from __future__ import annotations

import argparse
import pathlib
import random
import sys
import time
from typing import Dict, List, Tuple

if __name__ == "__main__":  # standalone: make src/ importable without install
    _SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.ids import sort_key
from repro.oms.database import OMSDatabase
from repro.oms.objects import OMSObject
from repro.oms.schema import AttributeDef, Schema

#: full-run relation sizes (number of links)
SIZES = [10_000, 100_000]
#: CI smoke sizes — seconds, not minutes
SMOKE_SIZES = [1_000, 5_000]
FANOUT = 10
PROBES = 200

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "oms_index_microbench.txt"
)


def build_db(
    n_links: int, fanout: int = FANOUT
) -> Tuple[OMSDatabase, List[str], List[str]]:
    """A database with *n_links* edges, out- and in-degree == *fanout*."""
    schema = Schema("bench")
    schema.define_entity(
        "Node", [AttributeDef("name", "str", required=True)]
    )
    schema.define_relationship("edge", "Node", "Node", "M:N")
    db = OMSDatabase(schema)
    n_each = n_links // fanout
    sources = [
        db.create("Node", {"name": f"s{i}"}).oid for i in range(n_each)
    ]
    targets = [
        db.create("Node", {"name": f"t{i}"}).oid for i in range(n_each)
    ]
    for i, src in enumerate(sources):
        for j in range(fanout):
            db.link("edge", src, targets[(i + j) % n_each])
    return db, sources, targets


def naive_targets(db: OMSDatabase, rel_name: str, source_oid: str) -> List[OMSObject]:
    """The seed implementation: full scan of the relation's pair set."""
    oids = sorted(
        (
            dst
            for src, dst in db._link_index.iter_pairs(rel_name)
            if src == source_oid
        ),
        key=sort_key,
    )
    return [db.get(oid) for oid in oids]


def naive_sources(db: OMSDatabase, rel_name: str, target_oid: str) -> List[OMSObject]:
    oids = sorted(
        (
            src
            for src, dst in db._link_index.iter_pairs(rel_name)
            if dst == target_oid
        ),
        key=sort_key,
    )
    return [db.get(oid) for oid in oids]


def _time_per_op(fn, probes: List[str]) -> float:
    """Wall-clock microseconds per call, averaged over all probes."""
    start = time.perf_counter()
    for oid in probes:
        fn(oid)
    return (time.perf_counter() - start) / len(probes) * 1e6


def run_microbench(
    sizes: List[int], probes: int = PROBES, seed: int = 7
) -> Tuple[str, Dict[int, float]]:
    """Benchmark every size; returns (report text, size -> targets speedup)."""
    rows = []
    speedups: Dict[int, float] = {}
    for n_links in sizes:
        db, sources, targets = build_db(n_links)
        rng = random.Random(seed)
        probe_oids = [rng.choice(sources) for _ in range(probes)]
        probe_targets = [rng.choice(targets) for _ in range(probes)]
        # correctness guard: both paths must answer identically
        for oid in probe_oids[:5]:
            assert [o.oid for o in db.targets("edge", oid)] == [
                o.oid for o in naive_targets(db, "edge", oid)
            ]
        naive_us = _time_per_op(
            lambda oid: naive_targets(db, "edge", oid), probe_oids
        )
        indexed_us = _time_per_op(
            lambda oid: db.targets("edge", oid), probe_oids
        )
        naive_src_us = _time_per_op(
            lambda oid: naive_sources(db, "edge", oid), probe_targets
        )
        indexed_src_us = _time_per_op(
            lambda oid: db.sources("edge", oid), probe_targets
        )
        speedups[n_links] = naive_us / indexed_us
        rows.append(
            f"{n_links:>8,}  {naive_us:>15.1f}  {indexed_us:>17.1f}  "
            f"{naive_us / indexed_us:>11.1f}x  {naive_src_us:>15.1f}  "
            f"{indexed_src_us:>17.1f}  {naive_src_us / indexed_src_us:>11.1f}x"
        )
    header = (
        "OMS link-index microbenchmark — naive O(E) scan vs adjacency index\n"
        f"fanout {FANOUT}, {probes} random probes per size, wall-clock µs/op\n"
        "\n"
        f"{'links':>8}  {'naive tgt (µs)':>15}  {'indexed tgt (µs)':>17}  "
        f"{'tgt speedup':>12}  {'naive src (µs)':>15}  "
        f"{'indexed src (µs)':>17}  {'src speedup':>12}\n"
    )
    footer = (
        "\nreading: the naive scan grows linearly with relation size while\n"
        "the indexed store stays flat at O(degree) — the metadata cost the\n"
        "paper's Section 3.6 requires to be independent of design size."
    )
    return header + "\n".join(rows) + footer, speedups


class TestOMSIndexBench:
    def test_index_vs_naive_scan(self, benchmark, report_writer):
        report, speedups = run_microbench(SIZES)
        report_writer("oms_index_microbench", report)
        db, sources, _ = build_db(SIZES[0])
        benchmark(db.targets, "edge", sources[0])
        assert speedups[max(SIZES)] >= 10, (
            f"indexed targets() only {speedups[max(SIZES)]:.1f}x faster "
            f"than the naive scan at {max(SIZES):,} links"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes, relaxed threshold, no results file (CI)",
    )
    args = parser.parse_args(argv)
    sizes = SMOKE_SIZES if args.smoke else SIZES
    report, speedups = run_microbench(sizes)
    print(report)
    top = max(sizes)
    threshold = 3.0 if args.smoke else 10.0
    if not args.smoke:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(report + "\n", encoding="utf-8")
        print(f"\nwrote {RESULTS_PATH}")
    if speedups[top] < threshold:
        print(
            f"FAIL: speedup {speedups[top]:.1f}x at {top:,} links "
            f"(threshold {threshold}x)",
            file=sys.stderr,
        )
        return 1
    print(f"OK: {speedups[top]:.1f}x speedup at {top:,} links")
    return 0


if __name__ == "__main__":
    sys.exit(main())
