"""E36 — Section 3.6: performance of the hybrid environment.

The paper's performance statements, reproduced on the simulated cost
model (deterministic) plus real wall time of the in-memory code paths:

1. **metadata operations** go through the JCF desktop and are fast and
   independent of design size;
2. **design-data operations** copy files to and from the OMS database
   via the UNIX file system — even for read-only access — so their
   simulated latency grows linearly with design size and dominates for
   complex, realistic designs;
3. **ablation**: the procedural interface the paper lists as future
   work removes the copy entirely, making read access size-independent —
   and copy-on-write staging closes most of that gap *without* opening
   the OMS interface: a re-export of unchanged data is validated by
   digest and priced like a metadata operation.
"""

import os
import pathlib
import tempfile

from repro.jcf.framework import JCFFramework
from repro.workloads.metrics import format_table

#: design-data sizes (bytes): small academic -> complex realistic design
SIZES = [1_000, 10_000, 100_000, 1_000_000]
if os.environ.get("REPRO_BENCH_SMOKE"):
    # CI smoke mode: keep the endpoints so every shape assertion
    # (flatness, linearity, >10x growth) still exercises the full range
    SIZES = [1_000, 1_000_000]


def fresh_jcf(procedural=False):
    root = pathlib.Path(tempfile.mkdtemp())
    return JCFFramework(root, enable_procedural_interface=procedural)


def setup_design_object(jcf, size):
    project = jcf.desktop.create_project("alice", f"p{size}")
    variant = project.create_cell("c").create_version().create_variant("v")
    dobj = variant.create_design_object("c/schematic", "schematic")
    version = dobj.new_version(b"x" * size)
    return version


class TestPerformance:
    def test_e36_metadata_vs_design_data(self, benchmark, report_writer):
        rows = []
        metadata_costs = []
        copy_costs = []
        cow_costs = []
        native_costs = []
        direct_costs = []
        for size in SIZES:
            # -- metadata operation (desktop) -------------------------------
            jcf = fresh_jcf()
            version = setup_design_object(jcf, size)
            before = jcf.clock.now_ms
            jcf.db.set_attr(version.oid, "directory_path", "/tmp/x")
            metadata_ms = jcf.clock.now_ms - before
            metadata_costs.append(metadata_ms)

            # -- read-only design-data access through staging ----------------
            before = jcf.clock.now_ms
            jcf.staging.export_object(version.oid)
            copy_ms = jcf.clock.now_ms - before
            copy_costs.append(copy_ms)

            # -- the same read-only access repeated: CoW digest hit ----------
            before = jcf.clock.now_ms
            jcf.staging.export_object(version.oid)
            cow_ms = jcf.clock.now_ms - before
            cow_costs.append(cow_ms)

            # -- the same bytes accessed natively in FMCAD -------------------
            before = jcf.clock.now_ms
            jcf.clock.charge_native_io(size, files=1)
            native_ms = jcf.clock.now_ms - before
            native_costs.append(native_ms)

            # -- ablation: procedural interface (paper future work) ----------
            ablated = fresh_jcf(procedural=True)
            ablated_version = setup_design_object(ablated, size)
            before = ablated.clock.now_ms
            ablated.db.procedural_interface().read_payload(
                ablated_version.oid
            )
            direct_ms = ablated.clock.now_ms - before
            direct_costs.append(direct_ms)

            rows.append([
                f"{size:>9,}",
                f"{metadata_ms:.1f}",
                f"{copy_ms:.1f}",
                f"{cow_ms:.1f}",
                f"{native_ms:.1f}",
                f"{copy_ms / native_ms:.1f}x",
                f"{direct_ms:.1f}",
            ])

        # -- shape assertions -----------------------------------------------
        # metadata cost is flat across design sizes
        assert max(metadata_costs) == min(metadata_costs)
        # staging cost grows strictly and linearly in the bytes moved:
        # the marginal cost between the largest and smallest design
        # matches the per-byte rate exactly (fixed per-file overhead
        # cancels out)
        assert copy_costs == sorted(copy_costs)
        per_byte = (copy_costs[-1] - copy_costs[0]) / (SIZES[-1] - SIZES[0])
        from repro.clock import CostModel

        assert abs(per_byte - CostModel().copy_byte_ms) < 1e-9
        assert copy_costs[-1] > 10 * copy_costs[0]
        # even read-only access pays: staging beats native by a growing gap
        for copy_ms, native_ms in zip(copy_costs, native_costs):
            assert copy_ms > native_ms
        assert (copy_costs[-1] / native_costs[-1]) > (
            copy_costs[0] / native_costs[0]
        )
        # small designs acceptable: staging under one UI interaction...
        assert copy_costs[0] < 1500.0
        # ...large designs problematic: staging dwarfs a metadata op
        assert copy_costs[-1] > 100 * metadata_costs[-1]
        # ablation: direct access is flat and metadata-priced
        assert max(direct_costs) == min(direct_costs)
        assert direct_costs[-1] < copy_costs[-1] / 10
        # CoW staging closes most of the gap without opening OMS: a
        # repeated read-only export is flat, size-independent and priced
        # exactly like the future-work procedural read
        assert max(cow_costs) == min(cow_costs)
        assert cow_costs[-1] < copy_costs[-1] / 10
        assert cow_costs == direct_costs

        # real wall time of the staging copy path on the largest design
        jcf = fresh_jcf()
        version = setup_design_object(jcf, SIZES[-1])
        benchmark(lambda: jcf.staging.export_object(version.oid))

        report = (
            "E36 (Section 3.6) — performance (simulated ms per "
            "operation)\n\n"
        )
        report += format_table(
            [
                "design bytes",
                "metadata op",
                "first staged read (hybrid)",
                "re-export (CoW hit)",
                "native read (FMCAD)",
                "hybrid penalty",
                "procedural read (ablation)",
            ],
            rows,
        )
        report += (
            "\n\npaper claims reproduced: metadata performance is "
            "sufficiently high and\nflat; design-data operations copy "
            "through the file system even for read-only\naccess, "
            "acceptable for small designs but dominant for complex ones. "
            "The\nfuture-work procedural interface eliminates the copy — "
            "and copy-on-write\nstaging closes most of that gap while "
            "keeping OMS closed: after the first\nexport, repeated "
            "read-only access is a digest probe, flat and metadata-"
            "priced,\nidentical in cost to the procedural read."
        )
        report_writer("e36_performance", report)

    def test_e36_end_to_end_cost_breakdown(self, benchmark, hybrid_env,
                                           report_writer):
        """Where a full coupled flow actually spends its simulated time."""
        hybrid = hybrid_env
        library = hybrid.fmcad.create_library("lib")
        library.create_cell("cell")
        project = hybrid.adopt_library("alice", library, "proj")
        hybrid.jcf.resources.assign_team_to_project("admin", "team",
                                                    project.oid)
        hybrid.prepare_cell("alice", project, "cell", team_name="team")

        def schematic_fn(editor):
            editor.add_port("a", "in")
            editor.add_port("y", "out")
            editor.place_gate("g", "NOT", 1)
            editor.wire("a", "g", "in0")
            editor.wire("y", "g", "out")

        def bench_fn(testbench):
            testbench.drive(0, "a", "0")
            testbench.expect(30, "y", "1")

        def layout_fn(editor):
            editor.draw_rect("metal1", 0, 0, 40, 4)
            editor.add_label("a", "metal1", 1, 1)
            editor.draw_rect("metal1", 0, 10, 40, 14)
            editor.add_label("y", "metal1", 1, 11)

        def full_flow():
            hybrid.run_schematic_entry("alice", project, library, "cell",
                                       schematic_fn)
            hybrid.run_simulation("alice", project, library, "cell",
                                  bench_fn)
            hybrid.run_layout_entry("alice", project, library, "cell",
                                    layout_fn)

        benchmark.pedantic(full_flow, rounds=1, iterations=1)

        by_category = hybrid.clock.elapsed_by_category()
        total = sum(by_category.values())
        rows = [
            [category, f"{ms:,.0f}", f"{ms / total:.0%}"]
            for category, ms in sorted(
                by_category.items(), key=lambda kv: -kv[1]
            )
        ]
        # the designer-facing costs (UI, tools) dominate; the framework's
        # own metadata work is comparatively cheap — "performance ... is
        # of less importance since the main aspect is functionality"
        assert by_category["ui"] + by_category["tool"] > by_category[
            "metadata"
        ]
        report = (
            "E36b (Section 3.6) — simulated cost breakdown of one full "
            "coupled flow\n\n"
        )
        report += format_table(["category", "ms", "share"], rows)
        report_writer("e36b_cost_breakdown", report)


class TestRealIO:
    def test_e36_real_io_staged_vs_native(self, benchmark, report_writer):
        """Wall-clock confirmation of the simulated E36 shape.

        The simulated clock encodes the *cost model*; this test measures
        the reproduction's real file I/O on the same 1 MB design: the
        staged path (OMS blob -> staging file -> read back) does strictly
        more work than a native library read, on any machine.
        """
        import time

        size = 1_000_000
        jcf = fresh_jcf()
        version = setup_design_object(jcf, size)

        # native arm: an FMCAD library holding the same bytes
        import tempfile

        from repro.fmcad.library import Library

        library = Library("lib", pathlib.Path(tempfile.mkdtemp()))
        library.create_cell("c")
        cellview = library.create_cellview("c", "schematic")
        library.write_version(cellview, b"x" * size, "u")

        def staged_read():
            staged = jcf.staging.export_object(version.oid)
            data = staged.path.read_bytes()
            jcf.staging.release(version.oid)
            return len(data)

        def native_read():
            return len(library.read_version(cellview))

        # warm both paths, then sample the native arm manually
        staged_read(), native_read()
        native_samples = []
        for _ in range(20):
            start = time.perf_counter()
            native_read()
            native_samples.append(time.perf_counter() - start)
        native_best = min(native_samples)

        result = benchmark(staged_read)
        assert result == size

        staged_best = benchmark.stats.stats.min
        rows = [
            ["staged read (OMS copy path)", f"{staged_best * 1e3:.3f}"],
            ["native read (FMCAD library)", f"{native_best * 1e3:.3f}"],
            ["ratio", f"{staged_best / native_best:.1f}x"],
        ]
        report = (
            "E36c (Section 3.6) — real wall-clock I/O on a 1 MB design "
            "(best of N, this machine)\n\n"
        )
        report += format_table(["path", "best ms"], rows)
        report += (
            "\n\nreading: independent of the calibrated cost model, the "
            "staged path\nphysically writes and re-reads the design file, "
            "so read-only access through\nthe closed OMS interface does "
            "strictly more I/O than a native library read."
        )
        report_writer("e36c_real_io", report)
