"""E36d — copy-on-write staging and delta version chains.

The Section 3.6 problem: design-data access copies files through the
UNIX file system even for read-only use, so its cost grows with design
size.  The content-addressed payload store attacks this on three fronts,
each measured here on the simulated cost model:

1. **re-export flatness** — after the first export, a repeated read-only
   ``export_object`` of unchanged data is a digest probe: its cost is
   flat across design sizes and no further bytes are copied;
2. **multi-user workload** — a re-export-heavy team workload (several
   users repeatedly staging the same cells, occasional edits) moves an
   order of magnitude fewer bytes than the naive always-copy staging the
   seed implemented (``copy_on_write=False`` is that baseline, bit for
   bit);
3. **delta version chains** — a 50-version design object with small
   edits stores roughly one full payload plus small deltas, not 50 full
   copies.

Run standalone (``python benchmarks/bench_staging.py [--smoke]``) or via
``pytest benchmarks/bench_staging.py --benchmark-only -s``; full runs
persist ``benchmarks/results/e36d_cow_staging.txt``.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import tempfile
from typing import Dict, List, Tuple

if __name__ == "__main__":  # standalone: make src/ importable without install
    _SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.jcf.framework import JCFFramework
from repro.oms.blobs import BlobStore
from repro.oms.storage import StagingArea
from repro.workloads.metrics import format_table

#: design-data sizes (bytes) for the re-export flatness experiment
SIZES = [1_000, 10_000, 100_000, 1_000_000]
#: payload size per design object in the multi-user workload
WORKLOAD_BYTES = 200_000
#: CI smoke mode — endpoints keep every shape assertion meaningful
SMOKE_SIZES = [1_000, 1_000_000]
SMOKE_WORKLOAD_BYTES = 20_000
if os.environ.get("REPRO_BENCH_SMOKE"):
    SIZES = SMOKE_SIZES
    WORKLOAD_BYTES = SMOKE_WORKLOAD_BYTES

#: multi-user workload shape: a small team re-staging the same cells
USERS = 4
OBJECTS = 3
ROUNDS = 24
#: rounds in which one designer actually edits an object
MUTATION_ROUNDS = (8, 16)

RE_EXPORTS = 5
CHAIN_VERSIONS = 50
CHAIN_PAYLOAD = 50_000

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "e36d_cow_staging.txt"
)


def fresh_jcf() -> JCFFramework:
    return JCFFramework(pathlib.Path(tempfile.mkdtemp()))


def setup_design_objects(jcf: JCFFramework, payloads: List[bytes]):
    """One variant holding one design object version per payload."""
    project = jcf.desktop.create_project("alice", "bench")
    variant = project.create_cell("c").create_version().create_variant("v")
    versions = []
    for index, payload in enumerate(payloads):
        dobj = variant.create_design_object(f"c/view{index}", "schematic")
        versions.append(dobj.new_version(payload))
    return versions


# -- experiment 1: repeated read-only export is size-independent ------------


def run_reexport(sizes: List[int]) -> Tuple[List[List[str]], Dict[str, List[float]]]:
    rows = []
    first_costs: List[float] = []
    reexport_costs: List[float] = []
    reexport_bytes: List[int] = []
    for size in sizes:
        jcf = fresh_jcf()
        version = setup_design_objects(jcf, [b"x" * size])[0]
        before = jcf.clock.now_ms
        jcf.staging.export_object(version.oid)
        first_ms = jcf.clock.now_ms - before
        before = jcf.clock.now_ms
        for _ in range(RE_EXPORTS):
            jcf.staging.export_object(version.oid)
        reexport_ms = (jcf.clock.now_ms - before) / RE_EXPORTS
        accounting = jcf.staging.accounting()
        first_costs.append(first_ms)
        reexport_costs.append(reexport_ms)
        reexport_bytes.append(accounting["bytes_exported"])
        rows.append([
            f"{size:>9,}",
            f"{first_ms:.1f}",
            f"{reexport_ms:.1f}",
            f"{accounting['bytes_exported']:,}",
            f"{accounting['export_hits']}",
        ])
    return rows, {
        "first": first_costs,
        "reexport": reexport_costs,
        "bytes": [float(b) for b in reexport_bytes],
    }


# -- experiment 2: multi-user re-export-heavy workload, CoW vs naive --------


def run_workload_arm(copy_on_write: bool, obj_bytes: int) -> Dict[str, float]:
    """USERS users re-staging OBJECTS cells for ROUNDS rounds."""
    jcf = fresh_jcf()
    payloads = [bytes([65 + i]) * obj_bytes for i in range(OBJECTS)]
    versions = setup_design_objects(jcf, payloads)
    areas = [
        StagingArea(
            jcf.db,
            jcf.root / "staging" / f"user{u}",
            copy_on_write=copy_on_write,
        )
        for u in range(USERS)
    ]
    clock_start = jcf.clock.now_ms
    for round_no in range(ROUNDS):
        if round_no in MUTATION_ROUNDS:
            # user 0 edits object 0 and checks the change back in
            staged = areas[0].export_object(versions[0].oid)
            edited = f"edit{round_no}".encode() + staged.path.read_bytes()[8:]
            staged.path.write_bytes(edited)
            areas[0].import_object(versions[0].oid)
        for area in areas:  # everyone (re-)stages every cell this round
            area.export_objects([v.oid for v in versions])
    bytes_copied = sum(
        a.bytes_exported + a.bytes_imported for a in areas
    )
    files_copied = sum(
        a.files_exported + a.files_imported for a in areas
    )
    hits = sum(a.export_hits + a.import_hits for a in areas)
    return {
        "bytes": float(bytes_copied),
        "files": float(files_copied),
        "hits": float(hits),
        "clock_ms": jcf.clock.now_ms - clock_start,
    }


# -- experiment 3: delta version chains -------------------------------------


def run_version_chain() -> Dict[str, int]:
    jcf = fresh_jcf()
    payload = bytearray(b"d" * CHAIN_PAYLOAD)
    project = jcf.desktop.create_project("alice", "chain")
    variant = project.create_cell("c").create_version().create_variant("v")
    dobj = variant.create_design_object("c/schematic", "schematic")
    dobj.new_version(bytes(payload))
    for i in range(CHAIN_VERSIONS - 1):  # small edit per successor version
        payload[(i * 17) % CHAIN_PAYLOAD] = ord("e")
        dobj.new_version(bytes(payload))
    return jcf.versioning.chain_storage(dobj)


# -- report + assertions ------------------------------------------------------


def run_bench(
    sizes: List[int], obj_bytes: int
) -> Tuple[str, Dict[str, float]]:
    reexport_rows, reexport = run_reexport(sizes)
    naive = run_workload_arm(copy_on_write=False, obj_bytes=obj_bytes)
    cow = run_workload_arm(copy_on_write=True, obj_bytes=obj_bytes)
    chain = run_version_chain()

    byte_reduction = naive["bytes"] / cow["bytes"]
    report = (
        "E36d (Section 3.6) — copy-on-write staging and delta version "
        "chains\n\n"
        "1. repeated read-only export (simulated ms; bytes copied is the\n"
        f"   cumulative total after 1 export + {RE_EXPORTS} re-exports)\n\n"
    )
    report += format_table(
        [
            "design bytes",
            "first export",
            "re-export",
            "bytes copied",
            "CoW hits",
        ],
        reexport_rows,
    )
    report += (
        f"\n\n2. multi-user workload — {USERS} users re-staging "
        f"{OBJECTS} cells of {obj_bytes:,} bytes\n"
        f"   for {ROUNDS} rounds, {len(MUTATION_ROUNDS)} actual edits\n\n"
    )
    report += format_table(
        ["staging", "bytes copied", "files copied", "CoW hits",
         "simulated ms"],
        [
            [
                "naive (seed)",
                f"{naive['bytes']:,.0f}",
                f"{naive['files']:,.0f}",
                f"{naive['hits']:,.0f}",
                f"{naive['clock_ms']:,.1f}",
            ],
            [
                "copy-on-write",
                f"{cow['bytes']:,.0f}",
                f"{cow['files']:,.0f}",
                f"{cow['hits']:,.0f}",
                f"{cow['clock_ms']:,.1f}",
            ],
            [
                "reduction",
                f"{byte_reduction:.1f}x",
                f"{naive['files'] / cow['files']:.1f}x",
                "",
                f"{naive['clock_ms'] / cow['clock_ms']:.1f}x",
            ],
        ],
    )
    report += (
        f"\n\n3. delta version chain — {chain['versions']} versions of a "
        f"{CHAIN_PAYLOAD:,}-byte design object\n\n"
    )
    report += format_table(
        ["versions", "logical bytes", "stored bytes", "full payloads",
         "delta payloads", "max depth"],
        [[
            f"{chain['versions']}",
            f"{chain['logical_bytes']:,}",
            f"{chain['stored_bytes']:,}",
            f"{chain['full_payloads']}",
            f"{chain['delta_payloads']}",
            f"{chain['max_depth']}",
        ]],
    )
    report += (
        "\n\nreading: after the first copy, read-only access to unchanged "
        "design data is\na size-independent digest probe, so the "
        "re-export-heavy team workload moves\nan order of magnitude fewer "
        "bytes than the seed's always-copy staging; and a\nlong chain of "
        "small edits costs one full payload plus small deltas instead\nof "
        "one full copy per version."
    )

    metrics: Dict[str, float] = {
        "byte_reduction": byte_reduction,
        "chain_stored": float(chain["stored_bytes"]),
        "chain_logical": float(chain["logical_bytes"]),
        "chain_full": float(chain["full_payloads"]),
        "chain_max_depth": float(chain["max_depth"]),
    }

    # -- shape assertions ---------------------------------------------------
    # (1) re-export cost is flat across design sizes while the first
    # export grows; the cumulative bytes copied equal exactly one export
    assert max(reexport["reexport"]) == min(reexport["reexport"])
    assert reexport["first"][-1] > 10 * reexport["first"][0]
    assert reexport["bytes"] == [float(s) for s in sizes]
    # (2) the CoW workload copies >=10x fewer bytes than the naive one
    assert byte_reduction >= 10.0, (
        f"CoW staging only reduced bytes copied {byte_reduction:.1f}x"
    )
    assert cow["clock_ms"] < naive["clock_ms"]
    # (3) N versions cost O(first payload + sum of deltas): one full
    # payload, every other version a small delta, depth bounded
    assert chain["full_payloads"] == 1
    assert chain["delta_payloads"] == CHAIN_VERSIONS - 1
    assert chain["stored_bytes"] < CHAIN_PAYLOAD + (CHAIN_VERSIONS - 1) * 1_000
    assert chain["max_depth"] <= BlobStore.MAX_CHAIN_DEPTH

    return report, metrics


class TestStagingBench:
    def test_e36d_cow_staging(self, benchmark, report_writer):
        report, metrics = run_bench(SIZES, WORKLOAD_BYTES)
        report_writer("e36d_cow_staging", report)
        assert metrics["byte_reduction"] >= 10.0
        # real wall time of the hot path: a digest-validated re-export
        jcf = fresh_jcf()
        version = setup_design_objects(jcf, [b"x" * SIZES[-1]])[0]
        jcf.staging.export_object(version.oid)
        benchmark(lambda: jcf.staging.export_object(version.oid))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes, no results file (CI)",
    )
    args = parser.parse_args(argv)
    sizes = SMOKE_SIZES if args.smoke else SIZES
    obj_bytes = SMOKE_WORKLOAD_BYTES if args.smoke else WORKLOAD_BYTES
    report, metrics = run_bench(sizes, obj_bytes)
    print(report)
    if not args.smoke:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(report + "\n", encoding="utf-8")
        print(f"\nwrote {RESULTS_PATH}")
    print(
        f"OK: {metrics['byte_reduction']:.1f}x fewer bytes copied; "
        f"{CHAIN_VERSIONS} versions stored in "
        f"{metrics['chain_stored']:,.0f} bytes "
        f"({metrics['chain_logical']:,.0f} logical)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
