"""E31d — design server: shard scaling, overload behaviour, identity.

E31 measured the multi-user value of the hybrid coupling with an
in-process simulation; this extension measures the *serving* layer that
carries the paper's 10³-designer population: per-library shards, batch
coalescing into group commits, and admission control.  Three
experiments:

1. **shard scaling at 10³ sessions** — the same 1024-designer scenario
   replayed through the serving engine at 1/2/4/8 shards.  Throughput
   is checkins per *simulated* second (simulated cost model, shard
   lanes overlap); the latency tail is p50/p95/p99 from submission to
   committed wave.  The acceptance bar: 4 shards sustain at least 2×
   the aggregate checkin throughput of 1 shard;
2. **overload at 2× offered rate** — a token bucket sized for half the
   offered load plus a bounded queue.  The server must shed the excess
   with typed ``ServerOverloadError`` rejections while the p95 of the
   *admitted* requests stays bounded (within 3× of the uncontended
   tail at the same shard count);
3. **batched/sharded ≡ sequential** — the final OMS snapshot after a
   coalesced, sharded, 4-worker replay is byte-identical to the same
   requests run with workers=1, rebuilt at the same filesystem root.

Run standalone (``python benchmarks/bench_server.py [--smoke]``) or via
``pytest benchmarks/bench_server.py --benchmark-only -s``; full runs
persist ``benchmarks/results/e31d_server.txt``.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import shutil
import sys
import tempfile
import time
from typing import Dict, List, Tuple

if __name__ == "__main__":  # standalone: make src/ importable without install
    _SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.errors import ServerOverloadError
from repro.server.engine import ServeEngine
from repro.workloads.loadgen import ScenarioSpec, build_scenario, replay_engine
from repro.workloads.metrics import format_table, percentiles

#: shard counts for the scaling experiment
SHARD_COUNTS = [1, 2, 4, 8]
#: the paper's population: 32 teams x 32 designers = 1024 sessions
SPEC = ScenarioSpec(teams=32, designers_per_team=32, runs_per_designer=1)
#: runs coalesced per shard window before an eager flush
MAX_BATCH = 32
#: deadline bound on a window, simulated ms
WINDOW_MS = 2000.0
if os.environ.get("REPRO_BENCH_SMOKE"):
    SHARD_COUNTS = [1, 2, 4]
    SPEC = ScenarioSpec(teams=8, designers_per_team=8, runs_per_designer=1)
    MAX_BATCH = 8

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "e31d_server.txt"


def _fresh_root() -> pathlib.Path:
    return pathlib.Path(tempfile.mkdtemp(prefix="repro-e31d-")) / "env"


# -- experiment 1: shard scaling at 10^3 sessions ----------------------------


def run_scaling(
    shard_counts: List[int], spec: ScenarioSpec
) -> Tuple[List[List[str]], Dict[int, float], Dict[int, Dict[str, float]]]:
    rows: List[List[str]] = []
    throughput: Dict[int, float] = {}
    tails: Dict[int, Dict[str, float]] = {}
    for shards in shard_counts:
        root = _fresh_root()
        hybrid, plans = build_scenario(root, spec, persistence="wal")
        engine = ServeEngine(
            hybrid, shards=shards, max_batch=MAX_BATCH, window_ms=WINDOW_MS
        )
        started = time.perf_counter()
        report = replay_engine(engine, plans, spec)
        wall_s = time.perf_counter() - started
        assert report.ok == spec.total_runs, (
            f"{report.ok}/{spec.total_runs} checkins at {shards} shards"
        )
        audit = hybrid.audit()
        assert audit.clean, f"dirty audit at {shards} shards"
        throughput[shards] = report.checkins_per_sim_s
        tails[shards] = report.latency_percentiles()
        rows.append(
            [
                shards,
                report.ok,
                f"{report.makespan_ms / 1000.0:.1f}",
                f"{throughput[shards]:.2f}",
                f"{tails[shards]['p50'] / 1000.0:.1f}",
                f"{tails[shards]['p95'] / 1000.0:.1f}",
                f"{tails[shards]['p99'] / 1000.0:.1f}",
                f"{wall_s:.0f}",
            ]
        )
        shutil.rmtree(root.parent, ignore_errors=True)
    return rows, throughput, tails


# -- experiment 2: overload at 2x the sustainable rate -----------------------


def run_overload(
    spec: ScenarioSpec, baseline_p95_ms: float
) -> Tuple[List[List[str]], Dict[str, float]]:
    """Offer the whole population at once against a bucket sized for
    half of it; the excess must be shed as typed rejections and the
    admitted tail must stay bounded."""
    shards = 4
    root = _fresh_root()
    hybrid, plans = build_scenario(root, spec, persistence="wal")
    # arrivals land 1ms apart, so the whole population is offered over
    # total_runs ms; size each shard's bucket (burst + refill over that
    # horizon) for half its fair share, making offered:sustainable 2:1
    horizon_s = spec.total_runs / 1000.0
    tokens_per_shard = max((spec.total_runs / 2.0) / shards, 2.0)
    burst = max(int(tokens_per_shard / 8), 2)
    per_shard_rate = max((tokens_per_shard - burst) / horizon_s, 1.0)
    engine = ServeEngine(
        hybrid,
        shards=shards,
        max_batch=MAX_BATCH,
        window_ms=WINDOW_MS,
        queue_depth=max(spec.sessions // shards, 8),
        admission_rate_per_s=per_shard_rate,
        admission_burst=burst,
    )
    report = replay_engine(engine, plans, spec)
    audit = hybrid.audit()
    assert audit.clean, "dirty audit under overload"
    shutil.rmtree(root.parent, ignore_errors=True)

    rejected = sum(report.rejected.values())
    assert rejected > 0, "2x overload produced no rejections"
    assert report.admitted + rejected == report.submitted
    assert report.ok == report.admitted, "an admitted run was lost"
    tail = percentiles(report.latencies_ms)
    bound_ms = 3.0 * baseline_p95_ms
    assert tail["p95"] <= bound_ms, (
        f"admitted p95 {tail['p95']:.0f}ms blew the {bound_ms:.0f}ms bound"
    )

    metrics = {
        "offered": float(report.submitted),
        "admitted": float(report.admitted),
        "rejected": float(rejected),
        "admitted_p95_ms": tail["p95"],
        "bound_ms": bound_ms,
    }
    rows = [
        ["offered", report.submitted, "-"],
        ["admitted", report.admitted, f"{tail['p95'] / 1000.0:.1f}"],
        [
            "rejected",
            rejected,
            ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(report.rejected.items())
            ),
        ],
    ]
    return rows, metrics


# -- experiment 3: batched/sharded == sequential -----------------------------


def run_identity(spec: ScenarioSpec) -> Tuple[List[List[str]], bool]:
    """Same requests, same root path, workers=1 vs workers=4: the final
    OMS snapshot must not differ by a byte."""
    root = _fresh_root()
    digests: List[bytes] = []
    for workers in (1, 4):
        hybrid, plans = build_scenario(root, spec, persistence="snapshot")
        engine = ServeEngine(
            hybrid, shards=4, max_batch=MAX_BATCH, window_ms=WINDOW_MS,
            workers=workers,
        )
        report = replay_engine(engine, plans, spec)
        assert report.ok == spec.total_runs
        digests.append(hybrid.save_state().read_bytes())
        shutil.rmtree(root, ignore_errors=True)
    shutil.rmtree(root.parent, ignore_errors=True)
    identical = digests[0] == digests[1]
    rows = [
        ["workers=1", len(digests[0])],
        ["workers=4", len(digests[1])],
        ["identical", identical],
    ]
    return rows, identical


# -- report -----------------------------------------------------------------


def run_bench(shard_counts: List[int], spec: ScenarioSpec):
    scaling_rows, throughput, tails = run_scaling(shard_counts, spec)
    # identity on a smaller population: the property is structural, the
    # full population only makes the diff slower to compute
    identity_spec = ScenarioSpec(
        teams=min(spec.teams, 4),
        designers_per_team=min(spec.designers_per_team, 4),
        runs_per_designer=spec.runs_per_designer,
    )
    overload_rows, overload = run_overload(spec, tails[4]["p95"])
    identity_rows, identical = run_identity(identity_spec)

    report = "\n".join(
        [
            "E31d: design server (sharding, coalescing, admission)",
            "",
            f"shard scaling ({spec.sessions} sessions, batch<={MAX_BATCH}, "
            f"window {WINDOW_MS:.0f}ms, simulated time):",
            format_table(
                [
                    "shards", "checkins", "makespan_s", "chk/sim_s",
                    "p50_s", "p95_s", "p99_s", "wall_s",
                ],
                scaling_rows,
            ),
            "",
            "overload at 2x the sustainable rate (4 shards, "
            "token bucket + bounded queue):",
            format_table(["requests", "count", "p95_s / reasons"],
                         overload_rows),
            "",
            "batched/sharded vs sequential, same root "
            f"({identity_spec.sessions} sessions):",
            format_table(["arm", "snapshot"], identity_rows),
        ]
    )

    # -- shape assertions ---------------------------------------------------
    speedup = throughput[4] / throughput[1]
    assert speedup >= 2.0, (
        f"4 shards gave only {speedup:.2f}x the 1-shard throughput"
    )
    assert identical, "sharded snapshot diverged from the sequential one"
    metrics = {
        "throughput": throughput,
        "speedup_4v1": speedup,
        "tails": tails,
        "overload": overload,
        "identical": identical,
    }
    return report, metrics


class TestServerBench:
    def test_e31d_server(self, benchmark, report_writer):
        report, metrics = run_bench(SHARD_COUNTS, SPEC)
        report_writer("e31d_server", report)
        # real wall time of the hot path: admit + coalesce one request
        root = _fresh_root()
        small = ScenarioSpec(teams=1, designers_per_team=1,
                             runs_per_designer=1)
        hybrid, plans = build_scenario(root, small)
        engine = ServeEngine(hybrid, shards=1, max_batch=10**6,
                             window_ms=1e12, queue_depth=10**7)
        plan = plans[0]
        session = engine.open_session(
            plan.user, plan.team, plan.library, plan.project
        )

        def submit():
            engine.submit(
                session, plan.cells[0], "schematic_entry", kwargs={},
                now_ms=0.0,
            )

        benchmark(submit)
        shutil.rmtree(root.parent, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes, no results file (CI)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        shard_counts = [1, 2, 4]
        spec = ScenarioSpec(teams=8, designers_per_team=8,
                            runs_per_designer=1)
    else:
        shard_counts = SHARD_COUNTS
        spec = SPEC
    report, metrics = run_bench(shard_counts, spec)
    print(report)
    if not args.smoke:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(report + "\n", encoding="utf-8")
        print(f"\nwrote {RESULTS_PATH}")
    print(
        f"OK: {metrics['speedup_4v1']:.2f}x throughput at 4 shards vs 1; "
        f"shed {metrics['overload']['rejected']:.0f}/"
        f"{metrics['overload']['offered']:.0f} under 2x overload with "
        f"admitted p95 {metrics['overload']['admitted_p95_ms'] / 1000.0:.1f}s; "
        f"snapshots identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
