"""E31e — design server under network chaos: fencing, availability, retries.

E31d measured the serving layer on a kind network; this extension
measures it on a hostile one.  Two experiments:

1. **availability with a wedged shard** — the population replayed with
   one shard's first wave wedged by an injected dispatch fault; its
   circuit breaker (threshold 1, effectively infinite cooldown) fences
   the shard for the rest of the replay.  Requests hashed to the fenced
   shard are refused fail-fast with typed ``ShardUnavailableError``;
   the acceptance bar is that the *healthy* shards keep serving: their
   availability stays at or above 90% and their p95 latency within 3×
   the no-chaos baseline at the same shard count;
2. **seeded socket chaos soak** — real protocol clients replayed
   against a live server while seeded fault schedules tear reads, eat
   acks and wedge dispatches.  Clients reconnect, resume their session
   and retry idempotently.  The bar: zero double commits (no cellview
   gains more than one version per planned run), zero dropped sessions
   within the retry budget, and a clean recover+audit after the storm.

Run standalone (``python benchmarks/bench_server_chaos.py [--smoke]``)
or via ``pytest benchmarks/bench_server_chaos.py --benchmark-only -s``;
full runs persist ``benchmarks/results/e31e_server_chaos.txt``.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import pathlib
import random
import shutil
import sys
import tempfile
from typing import Dict, List, Tuple

if __name__ == "__main__":  # standalone: make src/ importable without install
    _SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.errors import ShardUnavailableError
from repro.faults import KIND_TRANSIENT, FaultPlan, FaultRule, inject
from repro.server.engine import ServeEngine
from repro.server.protocol import ScriptCatalog
from repro.workloads.loadgen import (
    ScenarioSpec,
    build_scenario,
    replay_engine,
    replay_socket,
    snapshot_cell_versions,
)
from repro.workloads.metrics import format_table, percentiles

SHARDS = 4
SPEC = ScenarioSpec(teams=16, designers_per_team=8, runs_per_designer=1)
SOAK_SPEC = ScenarioSpec(teams=4, designers_per_team=4, runs_per_designer=1)
SOAK_SEEDS = [11, 23, 47]
MAX_BATCH = 8
WINDOW_MS = 500.0
#: healthy shards must keep at least this fraction of their requests ok
AVAILABILITY_FLOOR = 0.90
#: ...at a latency tail within this factor of the no-chaos baseline
TAIL_FACTOR = 3.0
if os.environ.get("REPRO_BENCH_SMOKE"):
    SPEC = ScenarioSpec(teams=8, designers_per_team=4, runs_per_designer=1)
    SOAK_SPEC = ScenarioSpec(teams=2, designers_per_team=2,
                             runs_per_designer=1)
    SOAK_SEEDS = [11]

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "e31e_server_chaos.txt"
)
KWARGS = ScriptCatalog().resolve("schematic_entry", "idempotent_inverter", {})


def _fresh_root() -> pathlib.Path:
    return pathlib.Path(tempfile.mkdtemp(prefix="repro-e31e-")) / "env"


# -- experiment 1: availability with a wedged shard --------------------------


def _drive_with_fenced_shard(
    hybrid, plans, spec: ScenarioSpec
) -> Tuple[Dict[int, Dict[str, float]], List[int], List]:
    """Replay the population while the first shard to flush is wedged.

    Returns per-shard tallies, the list of fenced shard ids, and the
    completed pendings of healthy shards.
    """
    engine = ServeEngine(
        hybrid,
        shards=SHARDS,
        max_batch=MAX_BATCH,
        window_ms=WINDOW_MS,
        breaker_threshold=1,
        breaker_cooldown_ms=1e9,  # never half-opens within the replay
    )
    sessions = [
        engine.open_session(p.user, p.team, p.library, p.project)
        for p in plans
    ]
    tallies: Dict[int, Dict[str, float]] = {
        shard: {"submitted": 0, "ok": 0, "refused": 0, "shed": 0}
        for shard in range(SHARDS)
    }
    pendings = []
    now = engine.epoch_ms
    since_pump = 0
    # the wedge: the first wave to flush dies in dispatch; with
    # threshold 1 that single failure fences its shard for good
    with inject(FaultPlan.transient("server.dispatch", on_hit=1)):
        for session, plan in zip(sessions, plans):
            for cell in plan.cells:
                now += 1.0
                tally = tallies[session.shard_id]
                tally["submitted"] += 1
                try:
                    pending = engine.submit(
                        session, cell, "schematic_entry",
                        kwargs=KWARGS, now_ms=now,
                    )
                    pendings.append((session.shard_id, pending))
                except ShardUnavailableError:
                    tally["refused"] += 1
                since_pump += 1
                if since_pump >= MAX_BATCH:
                    engine.pump(now)
                    since_pump = 0
        engine.drain(now)
    fenced = [
        shard for shard in range(SHARDS)
        if engine.stats()["per_shard"][shard]["breaker"]["state"] == "open"
    ]
    healthy_ok = []
    for shard_id, pending in pendings:
        if pending.outcome is not None and pending.outcome.ok:
            tallies[shard_id]["ok"] += 1
            if shard_id not in fenced:
                healthy_ok.append(pending)
        else:
            tallies[shard_id]["shed"] += 1
    engine.close()
    return tallies, fenced, healthy_ok


def run_availability(spec: ScenarioSpec):
    # baseline arm: same population, same shape, no chaos
    root = _fresh_root()
    hybrid, plans = build_scenario(root, spec, persistence="wal")
    engine = ServeEngine(
        hybrid, shards=SHARDS, max_batch=MAX_BATCH, window_ms=WINDOW_MS
    )
    baseline = replay_engine(engine, plans, spec)
    assert baseline.ok == spec.total_runs, "baseline replay lost runs"
    baseline_p95 = percentiles(baseline.latencies_ms)["p95"]
    shutil.rmtree(root.parent, ignore_errors=True)

    # chaos arm
    root = _fresh_root()
    hybrid, plans = build_scenario(root, spec, persistence="wal")
    tallies, fenced, healthy_ok = _drive_with_fenced_shard(
        hybrid, plans, spec
    )
    audit = hybrid.audit()
    assert audit.clean, "dirty audit after the fenced-shard replay"
    shutil.rmtree(root.parent, ignore_errors=True)

    assert len(fenced) == 1, f"expected exactly one fenced shard: {fenced}"
    healthy_submitted = sum(
        tallies[s]["submitted"] for s in range(SHARDS) if s not in fenced
    )
    healthy_served = sum(
        tallies[s]["ok"] for s in range(SHARDS) if s not in fenced
    )
    availability = (
        healthy_served / healthy_submitted if healthy_submitted else 0.0
    )
    healthy_p95 = percentiles([p.latency_ms for p in healthy_ok])["p95"]
    bound_ms = TAIL_FACTOR * baseline_p95

    rows = []
    for shard in range(SHARDS):
        tally = tallies[shard]
        rows.append([
            shard,
            "fenced" if shard in fenced else "healthy",
            int(tally["submitted"]),
            int(tally["ok"]),
            int(tally["refused"]),
            int(tally["shed"]),
        ])
    rows.append([
        "all-healthy", f"{availability * 100.0:.1f}% avail",
        healthy_submitted, healthy_served, "-", "-",
    ])

    assert availability >= AVAILABILITY_FLOOR, (
        f"healthy-shard availability {availability:.3f} fell below "
        f"{AVAILABILITY_FLOOR}"
    )
    assert healthy_p95 <= bound_ms, (
        f"healthy p95 {healthy_p95:.0f}ms blew the {bound_ms:.0f}ms bound "
        f"(baseline {baseline_p95:.0f}ms)"
    )
    metrics = {
        "availability": availability,
        "baseline_p95_ms": baseline_p95,
        "healthy_p95_ms": healthy_p95,
        "bound_ms": bound_ms,
        "fenced_shard": fenced[0],
    }
    return rows, metrics


# -- experiment 2: seeded socket chaos soak ----------------------------------


def _chaos_plan(seed: int) -> FaultPlan:
    rng = random.Random(seed)
    rules = []
    for point in ("net.read", "net.write"):
        rules.append(FaultRule(
            point, KIND_TRANSIENT,
            on_hit=rng.randint(2, 6), times=rng.randint(1, 2),
        ))
    rules.append(FaultRule(
        "server.dispatch", KIND_TRANSIENT, on_hit=rng.randint(1, 3), times=1,
    ))
    return FaultPlan(rules)


def run_soak(spec: ScenarioSpec, seeds: List[int]):
    from repro.server.design_server import DesignServer

    rows = []
    totals = {"ok": 0, "retries": 0, "dedupe_hits": 0, "dropped": 0,
              "double_commits": 0}
    for seed in seeds:
        root = _fresh_root()
        hybrid, plans = build_scenario(root, spec, persistence="wal")
        before = snapshot_cell_versions(hybrid, plans)

        async def exercise():
            server = DesignServer(
                hybrid, shards=2, max_batch=4, window_ms=10.0,
                breaker_threshold=3, breaker_cooldown_ms=50.0,
            )
            host, port = await server.start()
            try:
                with inject(_chaos_plan(seed)):
                    return await replay_socket(
                        host, port, plans, spec,
                        retry_overload=5, seed=seed,
                        ack_timeout_ms=1_000.0,
                    )
            finally:
                await server.stop()

        report = asyncio.run(exercise())
        after = snapshot_cell_versions(hybrid, plans)
        double_commits = sum(
            max(0, after[key] - before.get(key, 0) - 1) for key in after
        )
        hybrid.recover()
        audit = hybrid.audit()
        assert audit.clean, f"dirty audit after chaos seed {seed}"
        shutil.rmtree(root.parent, ignore_errors=True)

        rows.append([
            seed, report.ok, report.retries, report.dedupe_hits,
            report.dropped_sessions, double_commits,
        ])
        totals["ok"] += report.ok
        totals["retries"] += report.retries
        totals["dedupe_hits"] += report.dedupe_hits
        totals["dropped"] += report.dropped_sessions
        totals["double_commits"] += double_commits

    assert totals["double_commits"] == 0, "a retry double-committed"
    assert totals["dropped"] == 0, (
        "a session was dropped inside its retry budget"
    )
    assert totals["ok"] > 0, "the soak made no progress"
    return rows, totals


# -- report -----------------------------------------------------------------


def run_bench(spec: ScenarioSpec, soak_spec: ScenarioSpec,
              seeds: List[int]):
    availability_rows, availability = run_availability(spec)
    soak_rows, soak = run_soak(soak_spec, seeds)

    report = "\n".join(
        [
            "E31e: design server under network chaos "
            "(fencing, availability, idempotent retries)",
            "",
            f"availability with one shard wedged ({spec.sessions} "
            f"sessions, {SHARDS} shards, breaker threshold 1):",
            format_table(
                ["shard", "state", "submitted", "ok", "refused", "shed"],
                availability_rows,
            ),
            "",
            f"healthy p95 {availability['healthy_p95_ms']:.0f}ms vs "
            f"baseline {availability['baseline_p95_ms']:.0f}ms "
            f"(bound {availability['bound_ms']:.0f}ms)",
            "",
            f"seeded socket chaos soak ({soak_spec.sessions} sessions "
            "per seed, torn reads + eaten acks + wedged dispatch):",
            format_table(
                ["seed", "ok", "retries", "deduped", "dropped",
                 "double_commits"],
                soak_rows,
            ),
        ]
    )
    metrics = {"availability": availability, "soak": soak}
    return report, metrics


class TestServerChaosBench:
    def test_e31e_server_chaos(self, benchmark, report_writer):
        report, metrics = run_bench(SPEC, SOAK_SPEC, SOAK_SEEDS)
        report_writer("e31e_server_chaos", report)
        # real wall time of the hot path the hardening added: grant,
        # fence-check and release one lease
        from repro.server.leases import LeaseTable

        table = LeaseTable(ttl_ms=30_000.0)
        tick = iter(range(10**9))

        def lease_roundtrip():
            now = float(next(tick))
            lease = table.acquire("s1", "u1", "lib", "cell", now_ms=now)
            table.validate(lease.key, lease.token, now_ms=now)
            table.release("s1", lease.key)

        benchmark(lease_roundtrip)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes, no results file (CI)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        spec = ScenarioSpec(teams=8, designers_per_team=4,
                            runs_per_designer=1)
        soak_spec = ScenarioSpec(teams=2, designers_per_team=2,
                                 runs_per_designer=1)
        seeds = [11]
    else:
        spec = SPEC
        soak_spec = SOAK_SPEC
        seeds = SOAK_SEEDS
    report, metrics = run_bench(spec, soak_spec, seeds)
    print(report)
    if not args.smoke:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(report + "\n", encoding="utf-8")
        print(f"\nwrote {RESULTS_PATH}")
    availability = metrics["availability"]
    soak = metrics["soak"]
    print(
        f"OK: healthy-shard availability "
        f"{availability['availability'] * 100.0:.1f}% with shard "
        f"{availability['fenced_shard']} fenced; healthy p95 "
        f"{availability['healthy_p95_ms']:.0f}ms <= "
        f"{availability['bound_ms']:.0f}ms; soak committed "
        f"{soak['ok']} runs with {soak['retries']} retries, "
        f"{soak['dedupe_hits']} deduped, 0 double commits"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
