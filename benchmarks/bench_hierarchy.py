"""E33 — Section 3.3: handling of design hierarchies.

Three measurements:

1. **Manual submission cost** — hierarchy information must be passed to
   JCF by hand via the desktop before design work starts; the cost is
   one interaction per CompOf edge and grows with design size.
2. **JCF 3.0 strict mode** — non-isomorphic designs (layout hierarchy
   differs from schematic hierarchy) are rejected.
3. **Future-release ablation** — the same designs are accepted when
   non-isomorphic support is enabled, with conflicts recorded.
"""

import pathlib
import tempfile

import pytest

from repro.core import HybridFramework
from repro.core.hierarchy import (
    HierarchyManager,
    extract_children_map,
)
from repro.errors import HierarchyError
from repro.errors import NonIsomorphicHierarchyError
from repro.workloads.designs import (
    DesignSpec,
    generate_design,
    generate_layout_for,
    populate_library,
)
from repro.workloads.metrics import format_table

SIZES = [
    DesignSpec(name="d", depth=1, fanout=2, seed=5),    # 3 cells
    DesignSpec(name="d", depth=2, fanout=2, seed=5),    # 7 cells
    DesignSpec(name="d", depth=2, fanout=3, seed=5),    # 13 cells
    DesignSpec(name="d", depth=3, fanout=3, seed=5),    # 40 cells
]


def fresh_env(strict=True):
    root = pathlib.Path(tempfile.mkdtemp())
    hybrid = HybridFramework(root, jcf3_strict=strict)
    hybrid.jcf.resources.define_user("admin", "alice")
    hybrid.jcf.resources.define_team("admin", "team")
    hybrid.jcf.resources.add_member("admin", "alice", "team")
    hybrid.setup_standard_flow()
    return hybrid


class TestSubmissionCost:
    def test_e33_manual_submission_cost(self, benchmark, report_writer):
        rows = []
        for spec in SIZES:
            hybrid = fresh_env()
            design = generate_design(spec)
            library = populate_library(hybrid.fmcad, "lib", design)
            interactions_before = hybrid.jcf.desktop.total_interactions()
            hybrid.adopt_library("alice", library, "proj")
            submission = hybrid.hierarchy.submissions[-1]
            rows.append([
                spec.num_cells,
                len(design.hierarchy),
                submission.desktop_interactions,
                hybrid.jcf.desktop.total_interactions()
                - interactions_before,
            ])
            # cost is exactly one desktop interaction per edge
            assert submission.desktop_interactions == len(design.hierarchy)

        # monotone growth with design size
        submission_costs = [row[2] for row in rows]
        assert submission_costs == sorted(submission_costs)
        assert submission_costs[-1] > submission_costs[0]

        # time hierarchy extraction on the largest design
        hybrid = fresh_env()
        design = generate_design(SIZES[-1])
        library = populate_library(hybrid.fmcad, "lib", design)
        benchmark(lambda: extract_children_map(library, "schematic"))

        report = (
            "E33a (Section 3.3) — manual hierarchy submission before "
            "design start\n\n"
        )
        report += format_table(
            ["cells", "hierarchy edges", "submission interactions",
             "total desktop interactions"],
            rows,
        )
        report += (
            "\n\npaper claim reproduced: all hierarchical manipulations "
            "must be done\nmanually via the JCF desktop — a per-edge cost "
            "that grows with the design."
        )
        report_writer("e33a_submission_cost", report)


class TestIsomorphismRule:
    def test_e33_strict_vs_future(self, benchmark, report_writer):
        spec = DesignSpec(name="d", depth=2, fanout=2, seed=9)
        rows = []

        scenarios = [
            ("isomorphic", True, True),
            ("non-isomorphic", True, False),
            ("non-isomorphic (future mode)", False, False),
        ]
        for label, strict, isomorphic in scenarios:
            hybrid = fresh_env(strict=strict)
            design = generate_design(spec)
            if not isomorphic:
                design.layouts["d"] = generate_layout_for(
                    design.schematics["d"], isomorphic=False
                )
            library = populate_library(hybrid.fmcad, "lib", design)
            project = hybrid.mapper.import_library(library, "alice", "p")
            manager = HierarchyManager(
                hybrid.jcf.desktop, jcf3_strict=strict
            )
            try:
                submission = manager.submit_from_library(
                    "alice", project, library
                )
                rows.append([
                    label, "accepted", len(submission.conflicts),
                    submission.desktop_interactions,
                ])
                accepted = True
            except NonIsomorphicHierarchyError:
                rows.append([label, "REJECTED", len(
                    manager.submissions[-1].conflicts
                ), 0])
                accepted = False
            if label == "isomorphic":
                assert accepted
            elif strict:
                assert not accepted, (
                    "JCF 3.0 must reject non-isomorphic hierarchies"
                )
            else:
                assert accepted, "future mode must accept"

        # time the isomorphism decision itself
        hybrid = fresh_env()
        design = generate_design(spec)
        library = populate_library(hybrid.fmcad, "lib", design)

        def decide():
            functional = extract_children_map(library, "schematic")
            physical = extract_children_map(library, "layout")
            from repro.core.hierarchy import hierarchies_isomorphic

            return hierarchies_isomorphic(functional, physical)

        assert benchmark(decide) is True

        report = (
            "E33b (Section 3.3) — non-isomorphic hierarchies: JCF 3.0 "
            "vs future release\n\n"
        )
        report += format_table(
            ["design", "outcome", "conflicts", "interactions paid"], rows
        )
        report += (
            "\n\npaper claim reproduced: the current hybrid framework "
            "cannot support\nnon-isomorphic hierarchies (JCF 3.0); the "
            "announced future release accepts\nthem, recording the "
            "viewtype conflicts."
        )
        report_writer("e33b_isomorphism", report)


def leaf_edit(editor):
    editor.add_port("a", "in")
    editor.add_port("y", "out")
    editor.place_gate("g", "NOT", 1)
    editor.wire("a", "g", "in0")
    editor.wire("y", "g", "out")


def parent_edit_placing(children):
    def edit(editor):
        editor.add_port("x", "in")
        editor.add_port("z", "out")
        previous = "x"
        for index, child in enumerate(children):
            editor.place_cell(f"u{index}", child)
            out_net = "z" if index == len(children) - 1 else f"m{index}"
            editor.wire(previous, f"u{index}", "a")
            editor.wire(out_net, f"u{index}", "y")
            previous = out_net
    return edit


def build_incrementally(procedural: bool, n_leaves: int = 4):
    """Grow a design cell-by-cell through the wrappers.

    Returns (hybrid, project, library, manual_interactions, drift).
    In manual mode the designer must re-submit hierarchy edges via the
    desktop after the parent save; in procedural mode the schematic tool
    passes them to JCF automatically (Section 3.3 future work).
    """
    root = pathlib.Path(tempfile.mkdtemp())
    hybrid = HybridFramework(
        root, enable_hierarchy_procedural_interface=procedural
    )
    hybrid.jcf.resources.define_user("admin", "alice")
    hybrid.jcf.resources.define_team("admin", "team")
    hybrid.jcf.resources.add_member("admin", "alice", "team")
    hybrid.setup_standard_flow()
    library = hybrid.fmcad.create_library("lib")
    leaves = [f"leaf{i}" for i in range(n_leaves)]
    for cell in leaves + ["top"]:
        library.create_cell(cell)
    project = hybrid.adopt_library("alice", library, "proj")
    hybrid.jcf.resources.assign_team_to_project("admin", "team",
                                                project.oid)
    for cell in leaves + ["top"]:
        hybrid.prepare_cell("alice", project, cell, team_name="team")
    for cell in leaves:
        hybrid.run_schematic_entry("alice", project, library, cell,
                                   leaf_edit)

    before = hybrid.jcf.desktop.total_interactions()
    hybrid.run_schematic_entry(
        "alice", project, library, "top", parent_edit_placing(leaves)
    )
    manual_interactions = 0
    if not procedural:
        # the designer must notice and re-submit by hand
        edges = [("top", leaf) for leaf in leaves]
        hybrid.jcf.desktop.submit_hierarchy("alice", project, edges)
        manual_interactions = (
            hybrid.jcf.desktop.total_interactions() - before
        )
    drift = len(hybrid.hierarchy.verify_against_library(project, library))
    return hybrid, manual_interactions, drift


class TestProceduralInterfaceAblation:
    def test_e33_procedural_interface_ablation(self, benchmark,
                                               report_writer):
        """E33c: manual desktop submission vs the future-work interface."""
        manual_hybrid, manual_cost, manual_drift = build_incrementally(
            procedural=False
        )
        proc_hybrid, proc_cost, proc_drift = build_incrementally(
            procedural=True
        )

        # shapes: procedural mode costs no designer interactions and
        # never drifts; manual mode pays per edge
        assert proc_cost == 0
        assert manual_cost >= 4
        assert proc_drift == 0 and manual_drift == 0
        assert proc_hybrid.hierarchy.procedural_edges == 4
        # and JCF 3.0 (the manual arm) refuses the procedural call
        project = manual_hybrid.jcf.desktop.find_project("proj")
        try:
            manual_hybrid.hierarchy.submit_procedurally(
                project, [("top", "leaf0")]
            )
            raise AssertionError("JCF 3.0 must refuse the procedural call")
        except HierarchyError:
            pass

        benchmark.pedantic(
            lambda: build_incrementally(procedural=True),
            rounds=2, iterations=1,
        )

        from repro.workloads.metrics import format_table

        rows = [
            ["manual desktop submission (JCF 3.0)", manual_cost,
             manual_drift, "designer must remember"],
            ["procedural interface (future work)", proc_cost,
             proc_drift, "tools feed JCF automatically"],
        ]
        report = (
            "E33c (Section 3.3 ablation) — hierarchy maintenance while "
            "growing a design\n(4 subcells placed into a new parent "
            "through the schematic tool)\n\n"
        )
        report += format_table(
            ["mode", "designer interactions", "drift findings", "notes"],
            rows,
        )
        report += (
            "\n\npaper outlook reproduced: 'this drawback could be "
            "overcome by a JCF\nprocedural interface which might be used "
            "by the design tools to pass the\nhierarchy information to "
            "JCF' — implemented, it eliminates the manual cost."
        )
        report_writer("e33c_procedural_ablation", report)
