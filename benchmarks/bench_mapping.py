"""TAB1 — Table 1: the JCF <-> FMCAD data-model mapping.

Regenerates the table, applies the mapping to a populated library in
both directions, verifies losslessness for isomorphic designs, and
times the import (the operation every adoption pays).
"""

from repro.core.mapping import TABLE1_MAPPING, WORKING_VARIANT
from repro.workloads.designs import (
    DesignSpec,
    generate_design,
    populate_library,
)
from repro.workloads.metrics import format_table

#: The rows exactly as printed in the paper.
EXPECTED_TABLE1 = [
    ("Project", "Library"),
    ("CellVersion", "Cell"),
    ("ViewType", "View"),
    ("DesignObject", "Cellview"),
    ("DesignObjectVersion", "Cellview Version"),
]


class TestTable1:
    def test_table1_mapping(self, benchmark, hybrid_env, report_writer):
        hybrid = hybrid_env
        design = generate_design(
            DesignSpec(name="chip", depth=2, fanout=2, leaf_inputs=4,
                       seed=1)
        )
        library = populate_library(hybrid.fmcad, "chiplib", design)

        # verify the published table verbatim
        assert list(TABLE1_MAPPING) == EXPECTED_TABLE1

        state = {"round": 0}

        def import_once():
            state["round"] += 1
            return hybrid.mapper.import_library(
                library, "alice", f"chip_{state['round']}"
            )

        project = benchmark.pedantic(
            import_once, rounds=5, iterations=1
        )

        # -- losslessness of the forward mapping --------------------------
        assert {c.name for c in project.cells()} == set(design.cell_names())
        for cell in project.cells():
            variant = cell.latest_version().variant(WORKING_VARIANT)
            jcf_views = {d.viewtype_name for d in variant.design_objects()}
            fmcad_views = {
                cv.viewtype.name
                for cv in library.cell(cell.name).cellviews()
            }
            assert jcf_views == fmcad_views

        # -- round trip back to FMCAD ---------------------------------------
        exported = hybrid.mapper.export_project(project, "chip_export")
        for cell in library.cells():
            for cellview in cell.cellviews():
                original = library.read_version(cellview)
                copied = exported.read_version(
                    exported.cellview(cell.name, cellview.view.name)
                )
                assert copied == original, (
                    f"round trip lost data for {cellview.name}"
                )

        coverage = hybrid.mapper.coverage()
        rows = [
            [jcf, fmcad, coverage.get(jcf, 0)]
            for jcf, fmcad in TABLE1_MAPPING
        ]
        report = (
            "Table 1 — JCF-FMCAD mapping (as published), with the number\n"
            "of correspondences established importing a "
            f"{design.spec.num_cells}-cell design:\n\n"
        )
        report += format_table(
            ["JCF object", "FMCAD object", "instances mapped"], rows
        )
        report += (
            "\n\nround trip FMCAD -> JCF -> FMCAD: lossless "
            "(all version data byte-identical)"
        )
        report_writer("tab1_mapping", report)
