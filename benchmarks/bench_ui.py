"""E34 — Section 3.4: the user-interface burden of the hybrid framework.

One scripted designer task — "bring a cell through schematic,
simulation, and layout, with proper bookkeeping" — is performed under
three interface regimes:

* **fmcad_only** — tool windows only; no bookkeeping exists to do;
* **jcf_only** — desktop only (metadata work without integrated tools —
  tool launches are external black boxes);
* **hybrid** — the real coupled environment: JCF desktop *and* every
  tool window, with the extra switches the paper acknowledges.

Expected shape (asserted): the hybrid task uses strictly more UI
contexts and context switches than either single framework — "the user
has to cope with an extra user interface".
"""

from repro.clock import SimClock
from repro.core.desktop import (
    CombinedDesktop,
    FMCAD_LAYOUT,
    FMCAD_SCHEMATIC,
    FMCAD_SIMULATOR,
    JCF_DESKTOP,
)
from repro.workloads.metrics import format_table


def fmcad_only_task(desktop: CombinedDesktop) -> None:
    """Free tool invocation: three tool windows, no management UI."""
    desktop.begin_task("fmcad_only")
    desktop.enter(FMCAD_SCHEMATIC)
    desktop.interact(6)          # draw the schematic, save
    desktop.enter(FMCAD_SIMULATOR)
    desktop.interact(3)          # configure and run
    desktop.enter(FMCAD_SCHEMATIC)
    desktop.interact(2)          # fix, save again
    desktop.enter(FMCAD_LAYOUT)
    desktop.interact(5)          # draw, save
    desktop.end_task()


def jcf_only_task(desktop: CombinedDesktop) -> None:
    """Pure desktop work: reserve, submit hierarchy, publish; external
    tools are invoked from the desktop without their own UI here."""
    desktop.begin_task("jcf_only")
    desktop.enter(JCF_DESKTOP)
    desktop.interact(3)          # reserve + hierarchy submission
    desktop.interact(3)          # launch activities from the desktop
    desktop.interact(2)          # publish + configuration
    desktop.end_task()


def hybrid_task(desktop: CombinedDesktop) -> None:
    """The coupled workflow: desktop bookkeeping around every tool."""
    desktop.begin_task("hybrid")
    desktop.enter(JCF_DESKTOP)
    desktop.interact(3)          # reserve + hierarchy submission
    desktop.enter(FMCAD_SCHEMATIC)
    desktop.interact(6)
    desktop.enter(JCF_DESKTOP)
    desktop.interact(1)          # confirm activity completion
    desktop.enter(FMCAD_SIMULATOR)
    desktop.interact(3)
    desktop.enter(JCF_DESKTOP)
    desktop.interact(1)
    desktop.enter(FMCAD_LAYOUT)
    desktop.interact(5)
    desktop.enter(JCF_DESKTOP)
    desktop.interact(2)          # publish + configuration
    desktop.end_task()


class TestUIBurden:
    def test_e34_interface_burden(self, benchmark, report_writer):
        clock = SimClock()
        desktop = CombinedDesktop(clock)
        for task in (fmcad_only_task, jcf_only_task, hybrid_task):
            task(desktop)

        def timed_run():
            local = CombinedDesktop(SimClock())
            hybrid_task(local)
            return local.reports[-1]

        benchmark(timed_run)

        summary = desktop.summary()
        fmcad = summary["fmcad_only"]
        jcf = summary["jcf_only"]
        hybrid = summary["hybrid"]

        # -- shape assertions ------------------------------------------------
        assert hybrid["contexts"] > fmcad["contexts"]
        assert hybrid["contexts"] > jcf["contexts"]
        assert hybrid["switches"] > fmcad["switches"]
        assert hybrid["switches"] > jcf["switches"]
        # the extra interface costs simulated time too
        switch_ms = clock.elapsed_by_category()["ui_switch"]
        assert switch_ms > 0

        rows = [
            [name, values["contexts"], values["switches"],
             values["interactions"]]
            for name, values in summary.items()
        ]
        report = (
            "E34 (Section 3.4) — user-interface burden per scripted "
            "design task\n\n"
        )
        report += format_table(
            ["configuration", "distinct UIs", "context switches",
             "interactions"],
            rows,
        )
        report += (
            f"\n\nsimulated context-switch time for all tasks: "
            f"{switch_ms:.0f} ms"
            "\n\npaper claim reproduced: in the hybrid prototype the "
            "designer works with\nboth the FMCAD and the JCF user "
            "interface — an extra interface and extra\nswitching that "
            "neither single framework imposes."
        )
        report_writer("e34_ui_burden", report)
