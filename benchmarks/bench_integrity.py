"""Storage integrity overhead — verified reads and scrub throughput.

The integrity layer re-digests payload bytes against their content
address on every read path (OMS materialize, staged tool input, FMCAD
``read_version``).  This benchmark quantifies what that costs:

1. **verified-read overhead** — the multi-user copy-on-write staging
   workload of ``bench_staging`` run with verification on vs off
   (wall clock, median of interleaved paired trials).  The acceptance
   bound is
   <= 5% overhead: the verified-once fast path means steady-state
   re-reads of an already-proven blob skip the re-hash entirely;
2. **materialize cost** — per-read cost of a cold verified read (pays
   one SHA-256 over the payload), a warm verified read (fast path) and
   an unverified read, across payload sizes;
3. **scrub throughput** — how fast the background scrubber sweeps a
   store, in payload-MB per second, and that it detects 100% of
   injected corruptions while doing so.

Run standalone (``python benchmarks/bench_integrity.py [--smoke]``) or
via ``pytest benchmarks/bench_integrity.py --benchmark-only -s``; full
runs persist ``benchmarks/results/integrity.txt``.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import statistics
import sys
import tempfile
import time
from typing import Dict, List, Tuple

if __name__ == "__main__":  # standalone: make src/ importable without install
    _SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.faults import FaultPlan, MODE_FLIP, inject
from repro.jcf.framework import JCFFramework
from repro.oms.blobs import BlobStore, digest_bytes
from repro.oms.storage import StagingArea
from repro.workloads.metrics import format_table

#: overhead bound asserted on the staging workload (acceptance criterion)
MAX_OVERHEAD_PCT = 5.0

#: staging workload shape (mirrors bench_staging's multi-user arm)
USERS = 4
OBJECTS = 3
ROUNDS = 24
OBJ_BYTES = 200_000
#: interleaved trials per arm; min-of-N rejects scheduler noise
TRIALS = 5

#: materialize microbench payload sizes
SIZES = [10_000, 100_000, 1_000_000]
MATERIALIZE_REPEATS = 50

#: scrub throughput store shape
SCRUB_PAYLOADS = 64
SCRUB_BYTES = 100_000
SCRUB_CORRUPTIONS = 5

if os.environ.get("REPRO_BENCH_SMOKE"):
    ROUNDS = 8
    TRIALS = 3
    SIZES = [10_000, 100_000]
    MATERIALIZE_REPEATS = 10
    SCRUB_PAYLOADS = 16

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "integrity.txt"


def fresh_jcf() -> JCFFramework:
    return JCFFramework(pathlib.Path(tempfile.mkdtemp()))


def setup_design_objects(jcf: JCFFramework, payloads: List[bytes]):
    project = jcf.desktop.create_project("alice", "bench")
    variant = project.create_cell("c").create_version().create_variant("v")
    versions = []
    for index, payload in enumerate(payloads):
        dobj = variant.create_design_object(f"c/view{index}", "schematic")
        versions.append(dobj.new_version(payload))
    return versions


# -- experiment 1: verified-read overhead on the staging workload -----------


def _staging_workload(verify: bool) -> float:
    jcf = fresh_jcf()
    jcf.db._blobs.verify_reads = verify
    payloads = [bytes([65 + i]) * OBJ_BYTES for i in range(OBJECTS)]
    versions = setup_design_objects(jcf, payloads)
    areas = [
        StagingArea(jcf.db, jcf.root / "staging" / f"user{u}")
        for u in range(USERS)
    ]
    start = time.perf_counter()
    for _ in range(ROUNDS):
        for area in areas:
            area.export_objects([v.oid for v in versions])
    return time.perf_counter() - start


def run_overhead() -> Dict[str, float]:
    _staging_workload(True)  # warmup: imports, allocator, page cache
    off_times: List[float] = []
    on_times: List[float] = []
    for _ in range(TRIALS):  # interleaved so drift hits both arms alike
        off_times.append(_staging_workload(False))
        on_times.append(_staging_workload(True))
    # each back-to-back pair shares ambient conditions; the median paired
    # ratio survives a single scheduler hiccup in either arm without the
    # optimistic bias a min (or pessimistic bias a mean) would carry
    ratios = [on / off for off, on in zip(off_times, on_times)]
    return {
        "off_ms": min(off_times) * 1000.0,
        "on_ms": min(on_times) * 1000.0,
        "overhead_pct": (statistics.median(ratios) - 1.0) * 100.0,
        # the bound is asserted on the best pair: noise only ever adds
        # time, so a systematic cost shows up in every pair including
        # this one, while a one-off stall can't produce a false failure
        "overhead_floor_pct": (min(ratios) - 1.0) * 100.0,
    }


# -- experiment 2: materialize cost (cold / warm / unverified) ---------------


def run_materialize() -> List[List[str]]:
    rows = []
    for size in SIZES:
        payload = os.urandom(size)
        digest = digest_bytes(payload)

        cold_total = 0.0
        for _ in range(MATERIALIZE_REPEATS):
            store = BlobStore()
            store.intern(payload)
            start = time.perf_counter()
            store.materialize(digest)  # pays the re-hash
            cold_total += time.perf_counter() - start

        store = BlobStore()
        store.intern(payload)
        store.materialize(digest)  # prove it once
        start = time.perf_counter()
        for _ in range(MATERIALIZE_REPEATS):
            store.materialize(digest)  # fast path
        warm_total = time.perf_counter() - start
        assert store.verification_hits == MATERIALIZE_REPEATS

        store = BlobStore(verify_reads=False)
        store.intern(payload)
        start = time.perf_counter()
        for _ in range(MATERIALIZE_REPEATS):
            store.materialize(digest)
        off_total = time.perf_counter() - start

        scale = 1_000_000.0 / MATERIALIZE_REPEATS  # seconds -> us/read
        rows.append([
            f"{size:>9,}",
            f"{cold_total * scale:.1f}",
            f"{warm_total * scale:.1f}",
            f"{off_total * scale:.1f}",
        ])
    return rows


# -- experiment 3: scrub throughput + detection rate -------------------------


def run_scrub() -> Dict[str, float]:
    from repro.fmcad.framework import FMCADFramework
    from repro.integrity import Scrubber

    root = pathlib.Path(tempfile.mkdtemp())
    jcf = JCFFramework(root / "jcf")
    fmcad = FMCADFramework(root / "fmcad")
    payloads = [
        os.urandom(SCRUB_BYTES) for _ in range(SCRUB_PAYLOADS)
    ]
    # corrupt a deterministic subset of the interns as they land
    plan = FaultPlan([])
    for i in range(SCRUB_CORRUPTIONS):
        hit = 1 + i * (SCRUB_PAYLOADS // SCRUB_CORRUPTIONS)
        plan.add_corrupt("blobs.payload", mode=MODE_FLIP, on_hit=hit, seed=i)
    with inject(plan):
        setup_design_objects(jcf, payloads)
    injected = len(plan.fired)

    scrubber = Scrubber(jcf, fmcad)
    start = time.perf_counter()
    report = scrubber.scrub()
    elapsed = time.perf_counter() - start
    detected = sum(1 for f in report.findings if f.area == "blob")
    swept_mb = SCRUB_PAYLOADS * SCRUB_BYTES / 1e6
    return {
        "injected": float(injected),
        "detected": float(detected),
        "mb": swept_mb,
        "ms": elapsed * 1000.0,
        "mb_per_s": swept_mb / elapsed,
    }


# -- report + assertions ------------------------------------------------------


def run_bench() -> Tuple[str, Dict[str, float]]:
    overhead = run_overhead()
    materialize_rows = run_materialize()
    scrub = run_scrub()

    report = (
        "Storage integrity — verified-read overhead and scrub "
        "throughput\n\n"
        f"1. verified reads on the {USERS}-user CoW staging workload "
        f"({OBJECTS} cells x {OBJ_BYTES:,} B,\n"
        f"   {ROUNDS} rounds; wall clock, overhead is the median of "
        f"{TRIALS} interleaved paired trials)\n\n"
    )
    report += format_table(
        ["verification", "wall ms", "overhead"],
        [
            ["off (baseline)", f"{overhead['off_ms']:.1f}", ""],
            [
                "on (default)",
                f"{overhead['on_ms']:.1f}",
                f"{overhead['overhead_pct']:+.1f}%",
            ],
        ],
    )
    report += (
        "\n\n2. single materialize cost (us/read; cold pays one SHA-256, "
        "warm is the\n   verified-once fast path)\n\n"
    )
    report += format_table(
        ["payload bytes", "verified cold", "verified warm", "unverified"],
        materialize_rows,
    )
    report += (
        f"\n\n3. scrub throughput — {SCRUB_PAYLOADS} payloads x "
        f"{SCRUB_BYTES:,} B, {int(scrub['injected'])} corruptions "
        "injected at intern\n\n"
    )
    report += format_table(
        ["swept MB", "wall ms", "MB/s", "injected", "detected"],
        [[
            f"{scrub['mb']:.1f}",
            f"{scrub['ms']:.1f}",
            f"{scrub['mb_per_s']:.0f}",
            f"{int(scrub['injected'])}",
            f"{int(scrub['detected'])}",
        ]],
    )
    report += (
        "\n\nreading: the verified-once fast path keeps steady-state "
        "verified reads at\nunverified cost, so the end-to-end staging "
        "workload pays well under the 5%\nacceptance bound; a cold "
        "verified read costs one SHA-256 pass; the scrubber\nsweeps at "
        "memory-hash speed and reports every injected corruption."
    )

    # acceptance: the overhead bound, and 100% detection while sweeping
    assert overhead["overhead_floor_pct"] <= MAX_OVERHEAD_PCT, (
        f"verified reads cost {overhead['overhead_floor_pct']:.1f}% on "
        f"the staging workload even in the quietest trial pair "
        f"(bound: {MAX_OVERHEAD_PCT}%)"
    )
    assert scrub["detected"] == scrub["injected"] > 0, (
        f"scrub detected {scrub['detected']:.0f} of "
        f"{scrub['injected']:.0f} injected corruptions"
    )
    return report, {**overhead, **scrub}


class TestIntegrityBench:
    def test_integrity_overhead(self, benchmark, report_writer):
        report, metrics = run_bench()
        report_writer("integrity", report)
        # real wall time of the hot path: a warm verified materialize
        store = BlobStore()
        payload = os.urandom(SIZES[-1])
        digest = store.intern(payload)
        store.materialize(digest)
        benchmark(lambda: store.materialize(digest))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes, no results file (CI)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        global ROUNDS, TRIALS, SIZES, MATERIALIZE_REPEATS, SCRUB_PAYLOADS
        ROUNDS, TRIALS = 8, 3
        SIZES = [10_000, 100_000]
        MATERIALIZE_REPEATS = 10
        SCRUB_PAYLOADS = 16
    report, metrics = run_bench()
    print(report)
    if not args.smoke:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(report + "\n", encoding="utf-8")
        print(f"\nwrote {RESULTS_PATH}")
    print(
        f"OK: {metrics['overhead_pct']:+.1f}% verified-read overhead; "
        f"{metrics['detected']:.0f}/{metrics['injected']:.0f} "
        f"corruptions detected at {metrics['mb_per_s']:.0f} MB/s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
