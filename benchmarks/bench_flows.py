"""E35b — durable flow orchestration: throughput and crash-resume.

The Section 3.5 flow-control evaluation was qualitative; E35 made the
activity ordering measurable and this extension measures the *durable*
flow layer on top of it.  Two experiments:

1. **queue throughput at N teams** — T teams each enqueue flows for
   their own cells; one ``FlowQueue.drain`` runs them through the batch
   scheduler with per-team fair waves.  Reported as whole flows per
   second at each team count; every flow must complete and no team may
   be starved (each team's flows all finish in every configuration);
2. **resume latency after a crash-kill** — a flow is crash-killed
   mid-simulation, the environment is reopened, and recovery + resume
   roll it forward.  The resumed run must complete while re-running
   only the interrupted tail of the activity DAG, never the whole flow
   — crash recovery costs the torn activities, not the finished ones.

Run standalone (``python benchmarks/bench_flows.py [--smoke]``) or via
``pytest benchmarks/bench_flows.py --benchmark-only -s``; full runs
persist ``benchmarks/results/e35b_durable_flows.txt``.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import shutil
import sys
import tempfile
import time
from typing import Dict, List, Tuple

if __name__ == "__main__":  # standalone: make src/ importable without install
    _SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.core.coupling import HybridFramework
from repro.faults import CrashFault, FaultPlan, inject
from repro.jcf.model import FLOW_DONE
from repro.workloads.metrics import format_table, percentiles

#: team counts for the throughput experiment
TEAM_COUNTS = [1, 2, 4]
#: flows (one per cell) each team enqueues
FLOWS_PER_TEAM = 3
if os.environ.get("REPRO_BENCH_SMOKE"):
    TEAM_COUNTS = [1, 2]
    FLOWS_PER_TEAM = 2

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "e35b_durable_flows.txt"
)


def build_environment(root: pathlib.Path, teams: int, cells_per_team: int):
    """A hybrid with *teams* teams, each owning its own prepared cells."""
    hybrid = HybridFramework(root, persistence="wal")
    resources = hybrid.jcf.resources
    library = hybrid.fmcad.create_library("chiplib")
    cells: List[Tuple[str, str, str]] = []  # (cell, user, team)
    for t in range(teams):
        user, team = f"u{t}", f"team{t}"
        resources.define_user("admin", user)
        resources.define_team("admin", team)
        resources.add_member("admin", user, team)
        for c in range(cells_per_team):
            cell = f"t{t}c{c}"
            library.create_cell(cell)
            cells.append((cell, user, team))
    hybrid.setup_standard_flow()
    project = hybrid.adopt_library("u0", library, "chipA")
    for t in range(teams):
        resources.assign_team_to_project("admin", f"team{t}", project.oid)
    for cell, user, team in cells:
        hybrid.prepare_cell(user, project, cell, team_name=team)
    library.flush_meta("setup")
    return hybrid, project, cells


def enqueue_flows(hybrid, project, cells) -> List[str]:
    return [
        hybrid.flows_orchestrator.start(
            user=user,
            project=project,
            cell_name=cell,
            flow_name="jcf_fmcad_flow",
            script="inverter_flow",
            library_name="chiplib",
            team=team,
        ).oid
        for cell, user, team in cells
    ]


# -- experiment 1: queue throughput at N teams ------------------------------


def run_throughput(
    team_counts: List[int], flows_per_team: int
) -> Tuple[List[List[str]], Dict[int, float]]:
    rows = []
    flows_per_sec: Dict[int, float] = {}
    for teams in team_counts:
        root = pathlib.Path(tempfile.mkdtemp()) / "env"
        hybrid, project, cells = build_environment(
            root, teams, flows_per_team
        )
        enqueue_flows(hybrid, project, cells)
        started = time.perf_counter()
        report = hybrid.flow_queue.drain(workers=4)
        elapsed = time.perf_counter() - started
        completed = len(report.completed)
        assert completed == teams * flows_per_team, (
            f"{completed}/{teams * flows_per_team} flows completed"
        )
        assert not report.dead_lettered and not report.still_queued
        flows_per_sec[teams] = completed / elapsed
        rows.append(
            [
                teams,
                completed,
                report.waves,
                report.activities_run,
                f"{elapsed * 1000:.0f}",
                f"{flows_per_sec[teams]:.1f}",
            ]
        )
        shutil.rmtree(root.parent, ignore_errors=True)
    return rows, flows_per_sec


def run_flow_latency(samples: int) -> Tuple[List[List[str]], Dict[str, float]]:
    """Wall latency of whole single flows, reported as a p50/p95/p99
    tail — the per-designer view of the queue-throughput numbers."""
    root = pathlib.Path(tempfile.mkdtemp()) / "env"
    hybrid, project, cells = build_environment(root, 1, samples)
    oids = enqueue_flows(hybrid, project, cells)
    latencies_ms: List[float] = []
    for oid in oids:
        started = time.perf_counter()
        state = hybrid.flows_orchestrator.run(
            hybrid.flows_orchestrator.instance(oid)
        )
        latencies_ms.append((time.perf_counter() - started) * 1000)
        assert state == FLOW_DONE
    shutil.rmtree(root.parent, ignore_errors=True)
    tail = percentiles(latencies_ms)
    rows = [[label, f"{value:.0f}"] for label, value in tail.items()]
    return rows, tail


# -- experiment 2: resume latency after a crash-kill ------------------------


def run_resume(flows_per_team: int) -> Tuple[List[List[str]], Dict[str, float]]:
    # control: an uncrashed flow, timed end to end
    root = pathlib.Path(tempfile.mkdtemp()) / "env"
    hybrid, project, cells = build_environment(root, 1, 1)
    cell, user, team = cells[0]
    oid = enqueue_flows(hybrid, project, [cells[0]])[0]
    started = time.perf_counter()
    state = hybrid.flows_orchestrator.run(hybrid.flows_orchestrator.instance(oid))
    fresh_ms = (time.perf_counter() - started) * 1000
    assert state == FLOW_DONE
    shutil.rmtree(root.parent, ignore_errors=True)

    # crash-kill mid-simulation, then reopen + recover + resume
    root = pathlib.Path(tempfile.mkdtemp()) / "env"
    hybrid, project, cells = build_environment(root, 1, 1)
    oid = enqueue_flows(hybrid, project, [cells[0]])[0]
    # hits 1+2 are the schematic+symbol checkins of activity one; hit 3
    # tears the flow in the middle of digital simulation
    plan = FaultPlan.crash("harvest.after_checkin", on_hit=3)
    try:
        with inject(plan):
            hybrid.flows_orchestrator.run(
                hybrid.flows_orchestrator.instance(oid)
            )
    except CrashFault:
        pass
    assert plan.crash_fired

    started = time.perf_counter()
    hybrid2 = HybridFramework.reopen(root)
    hybrid2.recover()
    reopen_ms = (time.perf_counter() - started) * 1000
    durable_attempts = len(
        hybrid2.flows_orchestrator.instance(oid).attempts()
    )
    started = time.perf_counter()
    results = hybrid2.flows_orchestrator.resume_pending()
    resume_ms = (time.perf_counter() - started) * 1000
    assert results and all(s == FLOW_DONE for _, s in results)
    instance = hybrid2.flows_orchestrator.instance(results[0][0])
    resumed_attempts = len(instance.attempts()) - durable_attempts
    shutil.rmtree(root.parent, ignore_errors=True)

    metrics = {
        "fresh_ms": fresh_ms,
        "reopen_ms": reopen_ms,
        "resume_ms": resume_ms,
        "resumed_attempts": resumed_attempts,
    }
    rows = [
        ["fresh run", f"{fresh_ms:.0f}", 3],
        ["reopen+recover", f"{reopen_ms:.0f}", "-"],
        ["resume (tail only)", f"{resume_ms:.0f}", resumed_attempts],
    ]
    return rows, metrics


# -- report -----------------------------------------------------------------


def run_bench(team_counts: List[int], flows_per_team: int):
    throughput_rows, flows_per_sec = run_throughput(
        team_counts, flows_per_team
    )
    latency_rows, flow_tail = run_flow_latency(max(flows_per_team, 3))
    resume_rows, resume = run_resume(flows_per_team)

    report = "\n".join(
        [
            "E35b: durable flow orchestration",
            "",
            f"queue throughput ({flows_per_team} flows/team, 4 workers):",
            format_table(
                ["teams", "flows", "waves", "activities", "ms", "flows/s"],
                throughput_rows,
            ),
            "",
            "single-flow wall latency tail:",
            format_table(["percentile", "ms"], latency_rows),
            "",
            "crash-kill mid-simulation, reopen, resume:",
            format_table(
                ["phase", "ms", "activities run"], resume_rows
            ),
        ]
    )

    # -- shape assertions ---------------------------------------------------
    # resume re-runs only the interrupted tail: the crashed schematic
    # attempt is already durable, so the resumed epoch records fewer
    # activity attempts than a fresh three-activity run
    assert resume["resumed_attempts"] < 3, (
        f"resume re-ran the whole flow: {resume['resumed_attempts']} attempts"
    )
    assert flow_tail["p50"] <= flow_tail["p95"] <= flow_tail["p99"]
    metrics = {"flows_per_sec": flows_per_sec, "flow_tail": flow_tail, **resume}
    return report, metrics


class TestFlowBench:
    def test_e35b_durable_flows(self, benchmark, report_writer):
        report, metrics = run_bench(TEAM_COUNTS, FLOWS_PER_TEAM)
        report_writer("e35b_durable_flows", report)
        # real wall time of the hot path: enqueueing one durable flow
        root = pathlib.Path(tempfile.mkdtemp()) / "env"
        hybrid, project, cells = build_environment(root, 1, 1)
        cell, user, team = cells[0]

        def enqueue():
            hybrid.flows_orchestrator.start(
                user=user,
                project=project,
                cell_name=cell,
                flow_name="jcf_fmcad_flow",
                script="inverter_flow",
                library_name="chiplib",
                team=team,
            )

        benchmark(enqueue)
        shutil.rmtree(root.parent, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes, no results file (CI)",
    )
    args = parser.parse_args(argv)
    team_counts = [1, 2] if args.smoke else TEAM_COUNTS
    flows_per_team = 2 if args.smoke else FLOWS_PER_TEAM
    report, metrics = run_bench(team_counts, flows_per_team)
    print(report)
    if not args.smoke:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(report + "\n", encoding="utf-8")
        print(f"\nwrote {RESULTS_PATH}")
    best = max(metrics["flows_per_sec"].values())
    print(
        f"OK: drained up to {best:.1f} flows/s; crash resume re-ran "
        f"{metrics['resumed_attempts']}/3 activities in "
        f"{metrics['resume_ms']:.0f}ms after a "
        f"{metrics['reopen_ms']:.0f}ms reopen+recover"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
