"""E32 — Section 3.2: design management and data consistency.

Two claims, two experiments:

1. **Consistency power.**  A battery of corruptions is injected into a
   coupled environment; the hybrid scan must detect every one, while
   bare FMCAD (which never cross-checks automatically) detects none.
2. **Two-level versioning expressiveness.**  A design history spread
   over cell versions and variants is enumerated; the one-level
   (FMCAD-style) addressing scheme must lose distinctions the two-level
   scheme keeps.
"""

from repro.core.consistency import ConsistencyGuard
from repro.workloads.metrics import format_table


def run_schematic(hybrid, project, library, cell):
    def edit(editor):
        editor.add_port("a", "in")
        editor.add_port("y", "out")
        editor.place_gate("g", "NOT", 1)
        editor.wire("a", "g", "in0")
        editor.wire("y", "g", "out")

    return hybrid.run_schematic_entry("alice", project, library, cell, edit)


def coupled_environment(hybrid):
    library = hybrid.fmcad.create_library("lib")
    library.create_cell("alu")
    project = hybrid.adopt_library("alice", library, "chip")
    hybrid.jcf.resources.assign_team_to_project("admin", "team",
                                                project.oid)
    hybrid.prepare_cell("alice", project, "alu", team_name="team")
    run_schematic(hybrid, project, library, "alu")
    return project, library


#: (name, injector) — each corrupts one aspect of the environment.
CORRUPTIONS = [
    (
        "version file edited on disk",
        lambda lib: lib.cellview("alu", "schematic")
        .version(1).path.write_bytes(b"bitrot"),
    ),
    (
        "version file deleted",
        lambda lib: lib.cellview("alu", "schematic")
        .version(1).path.unlink(),
    ),
    (
        "checkin outside the coupling",
        lambda lib: lib.write_version(
            lib.cellview("alu", "schematic"), b"rogue", "mallory"
        ),
    ),
]


class TestConsistencyPower:
    def test_e32_detection_asymmetry(self, benchmark, hybrid_env,
                                     report_writer):
        hybrid = hybrid_env
        rows = []
        for name, inject in CORRUPTIONS:
            # fresh sub-environment per corruption
            project, library = None, None
            import tempfile, pathlib

            from repro.core import HybridFramework

            env_root = pathlib.Path(tempfile.mkdtemp())
            env = HybridFramework(env_root)
            env.jcf.resources.define_user("admin", "alice")
            env.jcf.resources.define_team("admin", "team")
            env.jcf.resources.add_member("admin", "alice", "team")
            env.setup_standard_flow()
            project, library = coupled_environment(env)

            clean = env.guard.scan(project, library)
            assert clean == [], "environment must scan clean before injection"
            inject(library)
            hybrid_findings = env.guard.scan(project, library)
            fmcad_findings = ConsistencyGuard.fmcad_baseline_scan(library)
            assert hybrid_findings, f"hybrid must detect: {name}"
            assert fmcad_findings == [], "bare FMCAD detects nothing"
            rows.append([name, len(hybrid_findings), len(fmcad_findings)])

        # time the scan itself on a clean environment
        project, library = coupled_environment(hybrid)
        benchmark(lambda: hybrid.guard.scan(project, library))

        report = (
            "E32a (Section 3.2) — consistency-check power: injected "
            "corruptions detected\n\n"
        )
        report += format_table(
            ["injected corruption", "hybrid findings", "FMCAD findings"],
            rows,
        )
        report += (
            "\n\npaper claim reproduced: the hybrid framework provides a "
            "more powerful\ndata consistency check; standard FMCAD leaves "
            "it to the designer."
        )
        report_writer("e32a_consistency", report)


class TestTwoLevelVersioning:
    def test_e32_versioning_expressiveness(self, benchmark, hybrid_env,
                                           report_writer):
        hybrid = hybrid_env
        project = hybrid.jcf.desktop.create_project("alice", "hist")
        cell = project.create_cell("alu")
        # history: 3 cell versions x 2 variants x 2 object versions
        for _ in range(3):
            version = cell.create_version()
            for variant_name in ("fast", "lowpower"):
                variant = version.create_variant(variant_name)
                dobj = variant.create_design_object(
                    "alu/schematic", "schematic"
                )
                dobj.new_version(b"rev1")
                dobj.new_version(b"rev2")

        report_data = benchmark(
            lambda: hybrid.jcf.versioning.expressiveness_report(cell)
        )
        assert report_data["two_level_states"] == 12
        assert report_data["one_level_states"] == 2
        assert report_data["indistinguishable_states"] == 10

        rows = [[key, value] for key, value in report_data.items()]
        report = (
            "E32b (Section 3.2) — two-level versioning vs the one-level "
            "scheme\nhistory: 3 cell versions x 2 variants x 2 design-"
            "object versions\n\n"
        )
        report += format_table(["measure", "value"], rows)
        report += (
            "\n\npaper claim reproduced: a one-level (FMCAD-style) "
            "versioning key\ncollapses distinct design states; JCF's cell-"
            "version + variant levels keep\nthem addressable."
        )
        report_writer("e32b_versioning", report)
