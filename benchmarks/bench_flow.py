"""E35 — Section 3.5: flow management and derivation relations.

A team of scripted designers brings several cells through
schematic/simulate/layout.  Some of them are "impatient": they try the
layout tool before simulation.  The experiment runs twice:

* **FMCAD free invocation** (the ablation of the master framework):
  every attempt succeeds in whatever order; afterwards the framework can
  reconstruct *no* derivation relations, and some finished designs have
  a layout without a passing simulation (quality violations);
* **hybrid forced flow**: out-of-order invocations are rejected (and
  counted — the paper's "acceptance problems"), every design that
  reaches layout has a passing simulation, and the what-belongs-to-what
  record is complete.
"""

import pathlib
import random
import tempfile

from repro.core import HybridFramework
from repro.core.mapping import WORKING_VARIANT
from repro.errors import FlowOrderError
from repro.workloads.metrics import format_table

N_CELLS = 6
SEED = 21


def make_env():
    root = pathlib.Path(tempfile.mkdtemp())
    hybrid = HybridFramework(root)
    hybrid.jcf.resources.define_user("admin", "alice")
    hybrid.jcf.resources.define_team("admin", "team")
    hybrid.jcf.resources.add_member("admin", "alice", "team")
    hybrid.setup_standard_flow()
    library = hybrid.fmcad.create_library("lib")
    for i in range(N_CELLS):
        library.create_cell(f"cell{i}")
    project = hybrid.adopt_library("alice", library, "proj")
    hybrid.jcf.resources.assign_team_to_project("admin", "team",
                                                project.oid)
    for i in range(N_CELLS):
        hybrid.prepare_cell("alice", project, f"cell{i}",
                            team_name="team")
    return hybrid, project, library


def schematic_fn(editor):
    editor.add_port("a", "in")
    editor.add_port("y", "out")
    editor.place_gate("g", "NOT", 1)
    editor.wire("a", "g", "in0")
    editor.wire("y", "g", "out")


def passing_bench(testbench):
    testbench.drive(0, "a", "0")
    testbench.expect(30, "y", "1")


def layout_fn(editor):
    editor.draw_rect("metal1", 0, 0, 40, 4)
    editor.add_label("a", "metal1", 1, 1)
    editor.draw_rect("metal1", 0, 10, 40, 14)
    editor.add_label("y", "metal1", 1, 11)


def run_fmcad_free(rng):
    """Free invocation: tools run in random order; only a flat log remains."""
    root = pathlib.Path(tempfile.mkdtemp())
    from repro.fmcad.framework import FMCADFramework
    from repro.tools.schematic.model import Schematic

    fmcad = FMCADFramework(root)
    library = fmcad.create_library("lib")
    quality_violations = 0
    for i in range(N_CELLS):
        cell = f"cell{i}"
        library.create_cell(cell)
        order = ["schematic", "simulate", "layout"]
        rng.shuffle(order)
        simulated_ok = False
        for step in order:
            if step == "schematic":
                view = library.create_cellview(cell, "schematic")
                library.write_version(view, b"schematic data", "alice")
                fmcad.log_invocation("schematic_editor", "alice", cell,
                                     "schematic")
            elif step == "simulate":
                # without a schematic first, the designer simulates junk
                # and moves on; with one, it passes
                simulated_ok = library.cell(cell).has_cellview("schematic")
                fmcad.log_invocation("digital_simulator", "alice", cell,
                                     "simulation")
            else:
                view = library.create_cellview(cell, "layout")
                library.write_version(view, b"layout data", "alice")
                fmcad.log_invocation("layout_editor", "alice", cell,
                                     "layout")
                if not simulated_ok:
                    quality_violations += 1
    derivations = len(fmcad.derivation_relations())
    return {
        "derivations": derivations,
        "quality_violations": quality_violations,
        "rejected": 0,
        "invocations": len(fmcad.invocation_log),
    }


def run_hybrid_forced(rng):
    """The forced flow: impatient attempts are rejected; record complete."""
    hybrid, project, library = make_env()
    rejected = 0
    for i in range(N_CELLS):
        cell = f"cell{i}"
        impatient = rng.random() < 0.5
        if impatient:
            try:
                hybrid.run_layout_entry("alice", project, library, cell,
                                        layout_fn)
            except FlowOrderError:
                rejected += 1
        hybrid.run_schematic_entry("alice", project, library, cell,
                                   schematic_fn)
        hybrid.run_simulation("alice", project, library, cell,
                              passing_bench)
        hybrid.run_layout_entry("alice", project, library, cell,
                                layout_fn)

    derivations = 0
    quality_violations = 0
    complete_records = 0
    for i in range(N_CELLS):
        variant = (
            project.cell(f"cell{i}").latest_version()
            .variant(WORKING_VARIANT)
        )
        record = hybrid.jcf.engine.what_belongs_to_what(variant)
        state = hybrid.jcf.engine.state_of(variant)
        if state.complete:
            complete_records += 1
        sim_done_before_layout = (
            state.status_by_activity["digital_simulation"] == "done"
        )
        if (state.status_by_activity["layout_entry"] == "done"
                and not sim_done_before_layout):
            quality_violations += 1
        for entry in record.values():
            derivations += len(entry["creates"]) * max(
                1, len(entry["needs"])
            )
    return {
        "derivations": derivations,
        "quality_violations": quality_violations,
        "rejected": rejected,
        "invocations": len(hybrid.fmcad.invocation_log),
        "complete": complete_records,
    }


class TestFlowManagement:
    def test_e35_forced_flow_vs_free_invocation(self, benchmark,
                                                report_writer):
        free = run_fmcad_free(random.Random(SEED))
        forced = run_hybrid_forced(random.Random(SEED))

        # -- shape assertions ------------------------------------------------
        assert free["derivations"] == 0, (
            "standard FMCAD has no derivation relations (Section 3.5)"
        )
        assert forced["derivations"] >= 3 * N_CELLS
        assert free["quality_violations"] > 0, (
            "free invocation must produce unverified layouts"
        )
        assert forced["quality_violations"] == 0
        assert forced["rejected"] > 0, (
            "impatient designers must hit the fixed-flow rejection — "
            "the paper's acceptance problem"
        )
        assert forced["complete"] == N_CELLS

        def timed():
            return run_hybrid_forced(random.Random(SEED))

        benchmark.pedantic(timed, rounds=2, iterations=1)

        rows = [
            ["derivation relations recorded", free["derivations"],
             forced["derivations"]],
            ["layouts without verified simulation",
             free["quality_violations"], forced["quality_violations"]],
            ["out-of-order invocations rejected", free["rejected"],
             forced["rejected"]],
            ["tool invocations logged", free["invocations"],
             forced["invocations"]],
        ]
        report = (
            "E35 (Section 3.5) — flow management and derivation "
            f"relations ({N_CELLS} cells,\nhalf the designers impatient, "
            f"seed {SEED})\n\n"
        )
        report += format_table(
            ["measure", "FMCAD free invocation", "hybrid forced flow"],
            rows,
        )
        report += (
            "\n\npaper claims reproduced: free invocation leaves no "
            "derivation or\nwhat-belongs-to-what record and lets "
            "unverified layouts ship; forced flows\nguarantee the quality "
            "gate at the price of rejected out-of-order work\n(the "
            "acceptance problem the paper concedes)."
        )
        report_writer("e35_flow_management", report)
