"""E36f — killing the read-path tax: cache, views, clones, striped locks.

Section 3.6 charges the hybrid framework for moving design data "to and
from the database via the UNIX file system" even for read-only access.
Earlier PRs removed redundant *writes* (CoW staging, delta harvest);
this experiment measures what is left — the read path itself — and what
the zero-copy work buys back:

1. **cold vs warm materialization** — a verified read pays
   reconstruction plus a SHA-256; a warm read is served from the
   digest-keyed materialization cache.  Warm must be >= 5x cold;
2. **reader scaling under striped locks** — N threads reading N
   different payloads progress together under per-digest stripes where
   a store-wide mutex serialises them.  Wall-clock scaling is reported
   (and asserted only on machines with >= 4 cores — a 1-CPU runner
   cannot exhibit it); the deterministic lane-model makespan carries
   the claim everywhere: concurrent readers cost max(reader) instead
   of sum(readers);
3. **checkout cloning** — a working-file checkout clones the base
   version in-kernel (reflink where the filesystem supports it,
   ``copy_file_range`` otherwise) instead of read()/write() through
   Python.  Bytes are identical on every rung; on a reflinking
   filesystem the clone must be >= 2x faster and is charged
   metadata-only in simulated time;
4. **query-engine memo** — repeated traversals of an unchanged design
   hierarchy answer from the epoch-guarded memo.

Run standalone (``python benchmarks/bench_read_path.py [--smoke]``) or
via ``pytest benchmarks/bench_read_path.py --benchmark-only -s``; full
runs persist ``benchmarks/results/e36f_read_path.txt``.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import shutil
import sys
import tempfile
import threading
import time
from typing import Dict, List, Tuple

if __name__ == "__main__":  # standalone: make src/ importable without install
    _SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.clock import SimClock
from repro.fmcad.checkout import CheckoutManager
from repro.fmcad.library import Library
from repro.oms.blobs import BlobStore
from repro.oms.database import OMSDatabase
from repro.oms.query import QueryEngine
from repro.oms.readcache import MaterializationCache
from repro.oms.schema import AttributeDef, Schema
from repro.oms.zerocopy import probe_capabilities
from repro.workloads.metrics import format_table

PAYLOAD_BYTES = 1 << 20      # 1 MiB design files
N_PAYLOADS = 8
READS_PER_THREAD = 6
THREAD_COUNTS = [1, 4, 8]
CHECKOUT_ROUNDS = 30
TREE_FANOUT, TREE_DEPTH = 4, 4
if os.environ.get("REPRO_BENCH_SMOKE"):
    PAYLOAD_BYTES = 1 << 18
    N_PAYLOADS = 4
    READS_PER_THREAD = 3
    CHECKOUT_ROUNDS = 8
    TREE_FANOUT, TREE_DEPTH = 3, 3

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "e36f_read_path.txt"
)


def _payload(index: int) -> bytes:
    return index.to_bytes(4, "big") * (PAYLOAD_BYTES // 4)


def _filled_store(
    cache: bool, store: BlobStore = None
) -> Tuple[BlobStore, List[str]]:
    if store is None:
        store = BlobStore()
    if cache:
        store.attach_cache(MaterializationCache())
    digests = [store.intern(_payload(i)) for i in range(N_PAYLOADS)]
    return store, digests


# -- experiment 1: cold vs warm materialization -------------------------------


def run_cache_arm() -> Dict[str, float]:
    store, digests = _filled_store(cache=True)
    start = time.perf_counter()
    for digest in digests:
        store.materialize(digest)
    cold_ms = (time.perf_counter() - start) * 1000 / len(digests)
    start = time.perf_counter()
    for _ in range(5):
        for digest in digests:
            store.materialize(digest)
    warm_ms = (time.perf_counter() - start) * 1000 / (5 * len(digests))
    return {
        "cold_ms": cold_ms,
        "warm_ms": warm_ms,
        "speedup": cold_ms / max(warm_ms, 1e-9),
    }


# -- experiment 2: reader scaling under striped digest locks ------------------


class _GlobalLockStore(BlobStore):
    """The pre-PR behaviour: one exclusive lock around every read."""

    def __init__(self) -> None:
        super().__init__()
        self._global = threading.Lock()

    def materialize(self, digest, verify=None):
        with self._global:
            return super().materialize(digest, verify)


def _timed_readers(store, digests: List[str], threads: int) -> float:
    """Wall ms for *threads* readers each reading its own digest set."""
    barrier = threading.Barrier(threads + 1)

    def read(offset: int) -> None:
        barrier.wait()
        for round_index in range(READS_PER_THREAD):
            digest = digests[(offset + round_index) % len(digests)]
            store.materialize(digest)

    workers = [
        threading.Thread(target=read, args=(index,))
        for index in range(threads)
    ]
    for worker in workers:
        worker.start()
    barrier.wait()
    start = time.perf_counter()
    for worker in workers:
        worker.join()
    return (time.perf_counter() - start) * 1000


def run_scaling_arm() -> Tuple[List[List[str]], Dict[str, float]]:
    rows = []
    metrics: Dict[str, float] = {}
    for threads in THREAD_COUNTS:
        striped_store, digests = _filled_store(cache=False)
        striped_ms = _timed_readers(striped_store, digests, threads)
        global_store, digests = _filled_store(
            cache=False, store=_GlobalLockStore()
        )
        global_ms = _timed_readers(global_store, digests, threads)

        # deterministic lane model of the same workload: each reader is
        # a lane charging native I/O for its reads; striped locks let
        # lanes overlap (makespan = slowest lane) where a store-wide
        # lock serialises every reconstruction (makespan = sum)
        clock = SimClock()
        for reader in range(threads):
            lane = clock.open_lane(f"reader{reader}", start_ms=0.0)
            with clock.use_lane(lane):
                for _ in range(READS_PER_THREAD):
                    clock.charge_native_io(PAYLOAD_BYTES, files=1)
            clock.advance_to(lane.now_ms)
        lane_makespan = clock.now_ms
        serialized = SimClock()
        for reader in range(threads * READS_PER_THREAD):
            serialized.charge_native_io(PAYLOAD_BYTES, files=1)
        serial_makespan = serialized.now_ms

        metrics[f"wall_striped_{threads}"] = striped_ms
        metrics[f"wall_global_{threads}"] = global_ms
        metrics[f"lane_striped_{threads}"] = lane_makespan
        metrics[f"lane_serial_{threads}"] = serial_makespan
        rows.append([
            str(threads),
            f"{striped_ms:,.1f}",
            f"{global_ms:,.1f}",
            f"{lane_makespan:,.1f}",
            f"{serial_makespan:,.1f}",
        ])
    return rows, metrics


# -- experiment 3: checkout cloning -------------------------------------------


class _CopyOnlyCheckouts(CheckoutManager):
    """The pre-PR working-file path: read()/write() through Python."""

    def _clone_working_file(self, base, working_path):
        return None


def run_checkout_arm() -> Dict[str, float]:
    root = pathlib.Path(tempfile.mkdtemp())
    try:
        caps = probe_capabilities(root)
        results: Dict[str, float] = {
            "reflink_capable": 1.0 if caps.reflink else 0.0,
            "clone_capable": 1.0 if (caps.reflink or caps.copy_range) else 0.0,
        }
        for label, manager_cls in (
            ("clone", CheckoutManager),
            ("copy", _CopyOnlyCheckouts),
        ):
            clock = SimClock()
            library = Library(
                f"lib_{label}", root / label / "libs", clock=clock
            )
            library.create_cell("alu")
            cellview = library.create_cellview("alu", "schematic")
            library.write_version(cellview, _payload(1), "alice")
            manager = manager_cls(root / label / "work")
            start = time.perf_counter()
            for _ in range(CHECKOUT_ROUNDS):
                ticket = manager.checkout(
                    "alice", library, "alu", "schematic"
                )
                manager.cancel(ticket, library)
            results[f"{label}_wall_ms"] = (
                (time.perf_counter() - start) * 1000 / CHECKOUT_ROUNDS
            )
            results[f"{label}_sim_ms"] = clock.elapsed_by_category().get(
                "native_io", 0.0
            )
            # byte identity on whatever rung ran
            ticket = manager.checkout("alice", library, "alu", "schematic")
            assert ticket.working_path.read_bytes() == _payload(1)
            manager.cancel(ticket, library)
            results[f"{label}_cloned"] = float(
                manager.stats()["cloned_working_files"]
            )
        return results
    finally:
        shutil.rmtree(root, ignore_errors=True)


# -- experiment 4: query-engine traversal memo --------------------------------


def run_memo_arm() -> Dict[str, float]:
    schema = Schema("memobench")
    schema.define_entity("Cell", [AttributeDef("name", "str", required=True)])
    schema.define_relationship("instantiates", "Cell", "Cell", "1:N")
    db = OMSDatabase(schema)
    root = db.create("Cell", {"name": "top"})
    frontier = [root.oid]
    for depth in range(TREE_DEPTH):
        next_frontier = []
        for parent in frontier:
            for child_index in range(TREE_FANOUT):
                child = db.create(
                    "Cell", {"name": f"c{depth}_{child_index}"}
                )
                db.link("instantiates", parent, child.oid)
                next_frontier.append(child.oid)
        frontier = next_frontier
    engine = QueryEngine(db)
    start = time.perf_counter()
    cold = engine.reachable(root.oid, ["instantiates"])
    cold_ms = (time.perf_counter() - start) * 1000
    start = time.perf_counter()
    for _ in range(10):
        warm = engine.reachable(root.oid, ["instantiates"])
    warm_ms = (time.perf_counter() - start) * 1000 / 10
    assert [o.oid for o in warm] == [o.oid for o in cold]
    return {
        "nodes": float(len(cold)),
        "cold_ms": cold_ms,
        "warm_ms": warm_ms,
        "hits": float(engine.memo_stats()["hits"]),
    }


# -- report + assertions ------------------------------------------------------


def run_bench() -> Tuple[str, Dict[str, float]]:
    cache = run_cache_arm()
    scaling_rows, scaling = run_scaling_arm()
    checkout = run_checkout_arm()
    memo = run_memo_arm()

    report = (
        "E36f (Section 3.6) — the read path: cache, striped locks, "
        "zero-copy clones\n\n"
        f"1. cold vs warm verified materialization "
        f"({N_PAYLOADS} x {PAYLOAD_BYTES >> 10} KiB payloads)\n\n"
    )
    report += format_table(
        ["read", "ms/payload"],
        [
            ["cold (reconstruct + SHA-256)", f"{cache['cold_ms']:.3f}"],
            ["warm (materialization cache)", f"{cache['warm_ms']:.4f}"],
        ],
    )
    report += (
        f"\n\nwarm/cold speedup: {cache['speedup']:.0f}x\n\n"
        f"2. concurrent readers, {READS_PER_THREAD} reads each "
        f"(this machine: {os.cpu_count()} CPU core(s))\n\n"
    )
    report += format_table(
        [
            "threads",
            "striped wall ms",
            "global-lock wall ms",
            "lane makespan ms",
            "serialized ms",
        ],
        scaling_rows,
    )
    threads = THREAD_COUNTS[-1]
    lane_scaling = (
        scaling[f"lane_serial_{threads}"]
        / scaling[f"lane_striped_{threads}"]
    )
    report += (
        "\n\nthe lane model is the deterministic claim: per-digest "
        "stripes let N readers\ncost max(reader) instead of sum"
        f"(readers) — {lane_scaling:.0f}x at {threads} threads.  "
        "Wall-clock\nscaling needs real cores and is asserted only "
        "where cpu_count >= 4.\n\n"
        "3. working-file checkout: in-kernel clone vs read()/write() "
        f"copy ({CHECKOUT_ROUNDS} rounds,\n   "
        f"{PAYLOAD_BYTES >> 10} KiB base version; filesystem: "
        f"reflink={'yes' if checkout['reflink_capable'] else 'no'}, "
        f"clone={'yes' if checkout['clone_capable'] else 'no'})\n\n"
    )
    report += format_table(
        ["checkout path", "wall ms/checkout", "simulated native-io ms"],
        [
            [
                "clone (reflink/copy_range)",
                f"{checkout['clone_wall_ms']:.3f}",
                f"{checkout['clone_sim_ms']:,.1f}",
            ],
            [
                "copy (pre-PR)",
                f"{checkout['copy_wall_ms']:.3f}",
                f"{checkout['copy_sim_ms']:,.1f}",
            ],
        ],
    )
    report += (
        "\n\nbytes are identical on every rung; only the cost differs.  "
        "True reflink is\ncharged metadata-only in simulated time; a "
        "copy_file_range clone still moves\nbytes in-kernel and is "
        "charged like the copy it is.\n\n"
        f"4. query-engine memo over an unchanged {TREE_FANOUT}-ary "
        f"hierarchy ({memo['nodes']:.0f} cells)\n\n"
    )
    report += format_table(
        ["traversal", "ms"],
        [
            ["cold (breadth-first walk)", f"{memo['cold_ms']:.3f}"],
            ["warm (epoch-guarded memo)", f"{memo['warm_ms']:.4f}"],
        ],
    )
    report += (
        "\n\nreading: the read tax now scales with what is actually "
        "read once — a warm\nread-dominated workload pays dictionary "
        "lookups, not reconstructions, hashes\nor payload copies."
    )

    metrics = {
        "cache_speedup": cache["speedup"],
        "lane_scaling": lane_scaling,
        "clone_wall_ms": checkout["clone_wall_ms"],
        "copy_wall_ms": checkout["copy_wall_ms"],
        "reflink_capable": checkout["reflink_capable"],
        "memo_speedup": memo["cold_ms"] / max(memo["warm_ms"], 1e-9),
    }

    # -- shape assertions ---------------------------------------------------
    # (1) warm reads must be at least 5x cold reads
    assert cache["speedup"] >= 5.0, (
        f"cache speedup only {cache['speedup']:.1f}x"
    )
    # (2) striped readers: the deterministic lane-model claim holds
    # everywhere; the wall-clock claim needs actual cores
    assert lane_scaling >= 3.0, (
        f"lane-model scaling only {lane_scaling:.1f}x at {threads} threads"
    )
    cores = os.cpu_count() or 1
    if cores >= 4:
        wall_throughput_1 = 1000.0 / scaling["wall_striped_1"]
        wall_throughput_n = (
            threads * 1000.0 / scaling[f"wall_striped_{threads}"]
        )
        assert wall_throughput_n >= 3.0 * wall_throughput_1, (
            f"{threads}-thread wall throughput only "
            f"{wall_throughput_n / wall_throughput_1:.1f}x of single-thread"
        )
    # (3) reflink checkouts must beat the copy path 2x where supported
    if checkout["reflink_capable"]:
        assert (
            checkout["clone_wall_ms"] * 2.0 <= checkout["copy_wall_ms"]
        ), (
            f"reflink checkout {checkout['clone_wall_ms']:.3f} ms not 2x "
            f"faster than copy {checkout['copy_wall_ms']:.3f} ms"
        )
        assert checkout["clone_sim_ms"] < checkout["copy_sim_ms"]
    # (4) the memo answers repeated traversals faster than walking
    assert memo["hits"] >= 10.0
    assert metrics["memo_speedup"] > 1.0

    return report, metrics


class TestReadPathBench:
    def test_e36f_read_path(self, benchmark, report_writer):
        report, metrics = run_bench()
        report_writer("e36f_read_path", report)
        assert metrics["cache_speedup"] >= 5.0
        assert metrics["lane_scaling"] >= 3.0
        # real wall time of the hot path: one warm verified read
        store, digests = _filled_store(cache=True)
        for digest in digests:
            store.materialize(digest)
        cursor = [0]

        def warm_read():
            cursor[0] = (cursor[0] + 1) % len(digests)
            store.materialize(digests[cursor[0]])

        benchmark(warm_read)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes, no results file (CI)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        global PAYLOAD_BYTES, N_PAYLOADS, READS_PER_THREAD
        global CHECKOUT_ROUNDS, TREE_FANOUT, TREE_DEPTH
        PAYLOAD_BYTES = 1 << 18
        N_PAYLOADS = 4
        READS_PER_THREAD = 3
        CHECKOUT_ROUNDS = 8
        TREE_FANOUT, TREE_DEPTH = 3, 3
    report, metrics = run_bench()
    print(report)
    if not args.smoke:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(report + "\n", encoding="utf-8")
        print(f"\nwrote {RESULTS_PATH}")
    print(
        f"OK: warm reads {metrics['cache_speedup']:.0f}x cold, lane-model "
        f"reader scaling {metrics['lane_scaling']:.0f}x, memo "
        f"{metrics['memo_speedup']:.0f}x, checkout clone "
        f"{metrics['clone_wall_ms']:.3f} ms vs copy "
        f"{metrics['copy_wall_ms']:.3f} ms"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
