"""E31 — Section 3.1: multi-user design and concurrency control.

The same scripted team replays an access pattern against the two
concurrency models.  Expected shape (asserted):

* FMCAD-alone blocking grows with team size; designers read stale
  ``.meta`` snapshots; ``.meta`` writer contention appears;
* the hybrid framework never leaves a designer idle — conflicts become
  parallel cell versions (work FMCAD forbids) — and completes at least
  as much work at every team size, with the gap widening.
"""

import pytest

from repro.workloads.metrics import format_table
from repro.workloads.sessions import MultiUserSimulation

TEAM_SIZES = (2, 4, 8, 16)
CELLS = 3
ROUNDS = 40
SEED = 11


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    """Run both arms for every team size once; benchmarks reuse this."""
    root = tmp_path_factory.mktemp("e31")
    results = {}
    for designers in TEAM_SIZES:
        simulation = MultiUserSimulation(
            designers=designers, cells=CELLS, rounds=ROUNDS, seed=SEED
        )
        results[designers] = (
            simulation.run_fmcad_only(root / f"f{designers}"),
            simulation.run_hybrid(root / f"h{designers}"),
        )
    return results


class TestMultiUser:
    def test_e31_concurrency_shape(self, benchmark, sweep, report_writer,
                                   tmp_path):
        # time one mid-size hybrid arm as the representative operation
        simulation = MultiUserSimulation(
            designers=8, cells=CELLS, rounds=ROUNDS, seed=SEED
        )
        state = {"n": 0}

        def run_hybrid_arm():
            state["n"] += 1
            return simulation.run_hybrid(tmp_path / f"bench{state['n']}")

        benchmark.pedantic(run_hybrid_arm, rounds=3, iterations=1)

        rows = []
        previous_block_rate = -1.0
        for designers in TEAM_SIZES:
            fmcad, hybrid = sweep[designers]
            rows.append([
                designers,
                f"{fmcad.block_rate:.0%}",
                fmcad.completed,
                fmcad.stale_reads,
                fmcad.meta_contention,
                f"{hybrid.block_rate:.0%}",
                hybrid.completed,
                hybrid.parallel_versions,
            ])
            # -- shape assertions (the paper's qualitative claims) ----------
            assert hybrid.blocked == 0, "hybrid designers never idle"
            assert hybrid.completed >= fmcad.completed
            if designers >= 4:
                assert fmcad.block_rate > 0.3, (
                    "FMCAD must show severe locking problems"
                )
                assert fmcad.stale_reads > 0, (
                    "manual .meta refresh must leave stale snapshots"
                )
                assert hybrid.parallel_versions > 0, (
                    "conflicts must become parallel versions"
                )
            assert fmcad.block_rate >= previous_block_rate - 0.1, (
                "blocking should broadly grow with team size"
            )
            previous_block_rate = fmcad.block_rate

        # the gap widens: compare smallest and largest team
        small_gap = sweep[2][1].completed - sweep[2][0].completed
        large_gap = sweep[16][1].completed - sweep[16][0].completed
        assert large_gap > small_gap

        report = (
            "E31 (Section 3.1) — multi-user design and concurrency "
            f"control\nworkload: {CELLS} shared cells, {ROUNDS} rounds, "
            f"seed {SEED}\n\n"
        )
        report += format_table(
            [
                "designers",
                "fmcad blocked",
                "fmcad done",
                "stale reads",
                ".meta contention",
                "hybrid blocked",
                "hybrid done",
                "parallel versions",
            ],
            rows,
        )
        report += (
            "\n\npaper claim reproduced: FMCAD-alone serialises work on a "
            "cellview and\nsuffers .meta coordination problems; the hybrid "
            "framework sustains parallel\nwork on different versions of "
            "the same cell (impossible in FMCAD)."
        )
        report_writer("e31_multiuser", report)


class TestContentionVsCells:
    def test_e31_contention_vs_cell_count(self, benchmark, report_writer,
                                          tmp_path):
        """Fixing the team at 8, more cells dilute FMCAD's contention —
        but realistic teams share hot cells, which is where the hybrid
        capability matters."""
        designers = 8
        rows = []
        block_rates = []
        for cells in (1, 2, 4, 8, 16):
            simulation = MultiUserSimulation(
                designers=designers, cells=cells, rounds=ROUNDS, seed=SEED
            )
            fmcad = simulation.run_fmcad_only(tmp_path / f"fc{cells}")
            hybrid = simulation.run_hybrid(tmp_path / f"hc{cells}")
            rows.append([
                cells,
                f"{fmcad.block_rate:.0%}",
                fmcad.completed,
                f"{hybrid.block_rate:.0%}",
                hybrid.completed,
            ])
            block_rates.append(fmcad.block_rate)
            assert hybrid.blocked == 0

        # contention falls monotonically (within noise) as cells spread out
        assert block_rates[0] > block_rates[-1]
        assert block_rates[0] > 0.5, "one hot cell must serialise the team"

        def timed():
            sim = MultiUserSimulation(designers=8, cells=4, rounds=20,
                                      seed=SEED)
            return sim.run_fmcad_only(tmp_path / "bench_extra")

        benchmark.pedantic(timed, rounds=1, iterations=1)

        report = (
            "E31b (Section 3.1) — contention vs design granularity "
            f"({designers} designers, {ROUNDS} rounds)\n\n"
        )
        report += format_table(
            ["cells", "fmcad blocked", "fmcad done", "hybrid blocked",
             "hybrid done"],
            rows,
        )
        report += (
            "\n\nreading: FMCAD contention is a function of how many "
            "designers share a cell;\nthe hybrid framework is insensitive "
            "to it — exactly why the paper calls the\nworkspace concept "
            "the kernel of JCF's multi-user capability."
        )
        report_writer("e31b_contention_vs_cells", report)
