"""Fault harness overhead and two-phase recovery latency.

The fault-injection points are woven permanently through the coupling's
hot paths (staging writes, payload interning, the checkout protocol), so
the harness is only acceptable if the *disabled* points cost nothing
measurable.  This benchmark

1. **disabled overhead** — microbenchmarks a disabled ``fault_point``
   call, counts how many times a full three-activity coupled run
   traverses fault points, and bounds the harness's share of the run's
   real wall time (**must stay under 2%**);
2. **recovery latency** — crashes a coupled run at each representative
   fault point, then measures the wall time of
   ``CouplingRecovery.recover()`` and reports what it repaired, with the
   cross-framework audit asserting the repair was complete.

Run standalone (``python benchmarks/bench_faults.py [--smoke]``) or via
``pytest benchmarks/bench_faults.py --benchmark-only -s``; full runs
persist ``benchmarks/results/fault_recovery.txt``.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import tempfile
import time
from typing import Dict, List, Tuple

if __name__ == "__main__":  # standalone: make src/ importable without install
    _SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.core.coupling import HybridFramework
from repro.faults import CrashFault, FaultPlan, fault_point, inject
from repro.workloads.metrics import format_table

#: microbench loop for the disabled fault_point call
MICRO_CALLS = 2_000_000
#: repetitions of the coupled run when timing it
RUN_REPEATS = 3
#: crash points measured in the recovery-latency experiment
RECOVERY_POINTS = [
    "harvest.after_checkout",
    "checkout.after_checkin",
    "harvest.after_checkin",
    "harvest.before_tag",
    "run.before_finish",
]
#: the acceptance bound on the harness's share of a coupled run
OVERHEAD_BUDGET_PCT = 2.0

if os.environ.get("REPRO_BENCH_SMOKE"):
    MICRO_CALLS = 200_000
    RECOVERY_POINTS = ["checkout.after_checkin", "harvest.before_tag"]

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "fault_recovery.txt"
)


def build_environment():
    root = pathlib.Path(tempfile.mkdtemp(prefix="bench_faults_"))
    hybrid = HybridFramework(root)
    resources = hybrid.jcf.resources
    resources.define_user("admin", "alice")
    resources.define_team("admin", "team1")
    resources.add_member("admin", "alice", "team1")
    hybrid.setup_standard_flow()
    library = hybrid.fmcad.create_library("chiplib")
    library.create_cell("inv2")
    project = hybrid.adopt_library("alice", library, "chipA")
    resources.assign_team_to_project("admin", "team1", project.oid)
    hybrid.prepare_cell("alice", project, "inv2", team_name="team1")
    return hybrid, project, library


def schematic_edit(editor):
    if editor.schematic.ports():
        return
    editor.add_port("a", "in")
    editor.add_port("y", "out")
    previous = "a"
    for i in range(2):
        editor.place_gate(f"i{i}", "NOT", 1)
        editor.wire(previous, f"i{i}", "in0")
        out_net = "y" if i == 1 else f"n{i}"
        editor.wire(out_net, f"i{i}", "out")
        previous = out_net


def sim_testbench(tb):
    tb.drive(0, "a", "0")
    tb.expect(30, "y", "0")
    tb.drive(50, "a", "1")
    tb.expect(80, "y", "1")


def layout_edit(editor):
    editor.draw_rect("metal1", 0, 0, 40, 4)
    editor.add_label("a", "metal1", 1, 1)
    editor.draw_rect("metal1", 0, 10, 40, 14)
    editor.add_label("y", "metal1", 1, 11)


def run_workload(hybrid, project, library) -> None:
    hybrid.run_schematic_entry(
        "alice", project, library, "inv2", schematic_edit
    )
    hybrid.run_simulation("alice", project, library, "inv2", sim_testbench)
    hybrid.run_layout_entry(
        "alice", project, library, "inv2", layout_edit
    )


# -- experiment 1: disabled fault points cost nothing measurable -------------


def micro_disabled_ns(calls: int = MICRO_CALLS) -> float:
    """Real nanoseconds per disabled fault_point call (best of 3)."""
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(calls):
            fault_point("blobs.intern")
        best = min(best, (time.perf_counter() - start) / calls)
    return best * 1e9


def count_run_traversals() -> int:
    """Fault-point hits of one full coupled run (counted, none fired)."""
    hybrid, project, library = build_environment()
    with inject(FaultPlan()) as plan:  # no rules: pure hit counting
        run_workload(hybrid, project, library)
    return sum(plan.hits.values())


def timed_run_seconds() -> float:
    """Real wall seconds of one full coupled run (best of RUN_REPEATS)."""
    best = float("inf")
    for _ in range(RUN_REPEATS):
        hybrid, project, library = build_environment()
        start = time.perf_counter()
        run_workload(hybrid, project, library)
        best = min(best, time.perf_counter() - start)
    return best


def run_overhead() -> Dict[str, float]:
    per_call_ns = micro_disabled_ns()
    hits = count_run_traversals()
    run_s = timed_run_seconds()
    harness_s = hits * per_call_ns * 1e-9
    return {
        "per_call_ns": per_call_ns,
        "hits_per_run": float(hits),
        "run_ms": run_s * 1e3,
        "harness_us": harness_s * 1e6,
        "overhead_pct": 100.0 * harness_s / run_s,
    }


# -- experiment 2: recovery latency ------------------------------------------


def run_recovery_latency() -> Tuple[List[List[str]], Dict[str, float]]:
    rows: List[List[str]] = []
    worst_ms = 0.0
    for point in RECOVERY_POINTS:
        hybrid, project, library = build_environment()
        try:
            with inject(FaultPlan.crash(point)):
                run_workload(hybrid, project, library)
        except CrashFault:
            pass
        start = time.perf_counter()
        report = hybrid.recovery.recover()
        recover_ms = (time.perf_counter() - start) * 1e3
        worst_ms = max(worst_ms, recover_ms)
        audit = hybrid.guard.audit()
        assert audit.clean, (
            f"recovery after crash at {point} left a dirty audit:\n"
            f"{audit.render()}"
        )
        repaired = sum(
            len(items)
            for items in (
                report.cancelled_tickets,
                report.deleted_fmcad_versions,
                report.repaired_tags,
                report.closed_sessions,
                report.failed_executions,
                report.reclaimed_staging_files,
            )
        )
        rows.append([
            point,
            f"{len(report.cancelled_tickets)}",
            f"{len(report.deleted_fmcad_versions)}",
            f"{len(report.repaired_tags)}",
            f"{repaired}",
            f"{recover_ms:.2f}",
            "clean",
        ])
    return rows, {"worst_recover_ms": worst_ms}


# -- report + assertions ------------------------------------------------------


def run_bench() -> Tuple[str, Dict[str, float]]:
    overhead = run_overhead()
    recovery_rows, recovery = run_recovery_latency()

    report = (
        "Fault harness overhead and two-phase recovery latency\n\n"
        "1. disabled fault points — harness share of one coupled run\n"
        "   (schematic entry + simulation + layout entry, real time)\n\n"
    )
    report += format_table(
        ["per call", "hits/run", "run wall", "harness share", "overhead"],
        [[
            f"{overhead['per_call_ns']:.1f} ns",
            f"{overhead['hits_per_run']:.0f}",
            f"{overhead['run_ms']:.1f} ms",
            f"{overhead['harness_us']:.1f} us",
            f"{overhead['overhead_pct']:.4f}%",
        ]],
    )
    report += (
        "\n\n2. recovery latency — crash a coupled run at each point,\n"
        "   then time CouplingRecovery.recover() (audit must end clean)\n\n"
    )
    report += format_table(
        ["crash point", "tickets", "dropped", "retagged", "total repairs",
         "recover ms", "audit"],
        recovery_rows,
    )
    report += (
        f"\n\nreading: a disabled fault point costs "
        f"{overhead['per_call_ns']:.0f} ns, so the woven harness consumes "
        f"{overhead['overhead_pct']:.4f}% of a coupled run — far inside "
        f"the {OVERHEAD_BUDGET_PCT}% budget — while recovery repairs any "
        "crash's wreckage in milliseconds and always restores a clean "
        "audit."
    )

    metrics = dict(overhead)
    metrics.update(recovery)

    # -- shape assertions ---------------------------------------------------
    assert overhead["overhead_pct"] < OVERHEAD_BUDGET_PCT, (
        f"disabled harness overhead {overhead['overhead_pct']:.3f}% "
        f"exceeds the {OVERHEAD_BUDGET_PCT}% budget"
    )
    assert overhead["hits_per_run"] > 0  # the run really crosses the points
    # recovery is interactive-grade, not a batch job
    assert recovery["worst_recover_ms"] < 5_000.0

    return report, metrics


class TestFaultBench:
    def test_fault_overhead_and_recovery(self, benchmark, report_writer):
        report, metrics = run_bench()
        report_writer("fault_recovery", report)
        assert metrics["overhead_pct"] < OVERHEAD_BUDGET_PCT
        # real wall time of the hot-path check itself
        benchmark(lambda: fault_point("blobs.intern"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer crash points and microbench calls, no results file (CI)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        global MICRO_CALLS, RECOVERY_POINTS
        MICRO_CALLS = 200_000
        RECOVERY_POINTS = ["checkout.after_checkin", "harvest.before_tag"]
    report, metrics = run_bench()
    print(report)
    if not args.smoke:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(report + "\n", encoding="utf-8")
        print(f"\nwrote {RESULTS_PATH}")
    print(
        f"OK: disabled overhead {metrics['overhead_pct']:.4f}% "
        f"(< {OVERHEAD_BUDGET_PCT}%), worst recovery "
        f"{metrics['worst_recover_ms']:.1f} ms"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
