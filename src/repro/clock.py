"""Simulated wall clock and cost model.

The 1995 evaluation ran on Sun workstations against a remote OMS database;
absolute timings are irreproducible.  What *is* reproducible is the cost
structure the paper describes in Section 3.6:

* metadata operations go through the JCF desktop and are cheap and
  size-independent;
* design-data operations copy files to and from the OMS database via the
  UNIX file system — **even for read-only access** — so their cost grows
  with design size and dominates for large designs.

``SimClock`` makes that structure explicit and deterministic.  Every
subsystem charges abstract cost units (milliseconds of simulated time)
through a shared clock, and the benchmarks report simulated latencies that
depend only on the workload, never on the host machine.  pytest-benchmark
separately measures real wall time of the in-memory code paths.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Dict, List, Optional, Tuple


@dataclasses.dataclass(frozen=True)
class CostModel:
    """Charging rates (simulated milliseconds) for framework operations.

    The default rates are scaled from the qualitative statements of the
    paper: metadata operations are "sufficiently high" performance (fast,
    flat); copies charge per byte; UI interactions charge per dialog.
    """

    metadata_op_ms: float = 5.0
    #: per-byte cost of copying design data between OMS and the UNIX file
    #: system (the Section 2.1 staging path).
    copy_byte_ms: float = 0.0005
    #: fixed overhead per staged file (open/close, directory update).
    copy_file_ms: float = 20.0
    #: a native FMCAD library access does not cross the OMS boundary; it
    #: still touches the file system, but far more cheaply.
    native_byte_ms: float = 0.0001
    native_file_ms: float = 5.0
    #: one user-interface interaction (menu pick, dialog, form submit).
    ui_interaction_ms: float = 1500.0
    #: switching between distinct user interfaces (JCF desktop <-> FMCAD
    #: tool windows) — the Section 3.4 drawback.
    ui_context_switch_ms: float = 4000.0
    tool_startup_ms: float = 2500.0
    lock_wait_poll_ms: float = 1000.0
    #: base backoff before retrying a transient fault; doubles per attempt.
    retry_backoff_ms: float = 250.0


class SimClock:
    """Deterministic simulated clock with itemised cost accounting.

    Charges accumulate into a running simulated time.  Each charge is also
    tallied by category so experiments can break latency down into
    metadata / copy / UI / tool components, which is exactly the split
    Section 3.6 discusses.
    """

    def __init__(self, cost_model: Optional[CostModel] = None) -> None:
        self.cost_model = cost_model or CostModel()
        self._now_ms: float = 0.0
        self._by_category: Counter = Counter()
        self._events: List[Tuple[float, str, float]] = []

    # -- reading the clock -------------------------------------------------

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now_ms

    def elapsed_by_category(self) -> Dict[str, float]:
        """Total charged milliseconds per category."""
        return dict(self._by_category)

    @property
    def events(self) -> List[Tuple[float, str, float]]:
        """Chronological ``(timestamp_ms, category, charged_ms)`` records."""
        return list(self._events)

    # -- charging ----------------------------------------------------------

    def charge(self, category: str, milliseconds: float) -> float:
        """Advance the clock by *milliseconds*, tagged with *category*.

        Returns the new simulated time.  Negative charges are rejected so a
        buggy cost computation can never run time backwards.
        """
        if milliseconds < 0:
            raise ValueError(f"negative charge: {milliseconds!r} ms for {category!r}")
        self._now_ms += milliseconds
        self._by_category[category] += milliseconds
        self._events.append((self._now_ms, category, milliseconds))
        return self._now_ms

    def charge_metadata_op(self, count: int = 1) -> float:
        """Charge *count* JCF-desktop metadata operations."""
        return self.charge("metadata", self.cost_model.metadata_op_ms * count)

    def charge_copy(self, num_bytes: int, files: int = 1) -> float:
        """Charge an OMS <-> file-system staging copy of *num_bytes*."""
        cost = (
            self.cost_model.copy_byte_ms * num_bytes
            + self.cost_model.copy_file_ms * files
        )
        return self.charge("copy", cost)

    def charge_native_io(self, num_bytes: int, files: int = 1) -> float:
        """Charge a native FMCAD library access (no OMS boundary)."""
        cost = (
            self.cost_model.native_byte_ms * num_bytes
            + self.cost_model.native_file_ms * files
        )
        return self.charge("native_io", cost)

    def charge_ui(self, interactions: int = 1) -> float:
        """Charge designer interactions with one user interface."""
        return self.charge("ui", self.cost_model.ui_interaction_ms * interactions)

    def charge_ui_context_switch(self, switches: int = 1) -> float:
        """Charge switches between the JCF and FMCAD user interfaces."""
        return self.charge(
            "ui_switch", self.cost_model.ui_context_switch_ms * switches
        )

    def charge_tool_startup(self) -> float:
        """Charge one FMCAD tool start."""
        return self.charge("tool", self.cost_model.tool_startup_ms)

    def charge_lock_wait(self, polls: int = 1) -> float:
        """Charge waiting on a lock (checkout or reservation)."""
        return self.charge("lock_wait", self.cost_model.lock_wait_poll_ms * polls)

    def charge_retry_backoff(self, attempt: int = 0) -> float:
        """Charge the bounded-exponential backoff before retry *attempt*+1."""
        return self.charge(
            "retry_backoff", self.cost_model.retry_backoff_ms * (2 ** attempt)
        )

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Zero the clock and all accounting."""
        self._now_ms = 0.0
        self._by_category.clear()
        self._events.clear()
