"""Simulated wall clock and cost model.

The 1995 evaluation ran on Sun workstations against a remote OMS database;
absolute timings are irreproducible.  What *is* reproducible is the cost
structure the paper describes in Section 3.6:

* metadata operations go through the JCF desktop and are cheap and
  size-independent;
* design-data operations copy files to and from the OMS database via the
  UNIX file system — **even for read-only access** — so their cost grows
  with design size and dominates for large designs.

``SimClock`` makes that structure explicit and deterministic.  Every
subsystem charges abstract cost units (milliseconds of simulated time)
through a shared clock, and the benchmarks report simulated latencies that
depend only on the workload, never on the host machine.  pytest-benchmark
separately measures real wall time of the in-memory code paths.

Concurrency (the parallel coupled-run scheduler) adds *lanes*: a lane is
a private simulated timeline for one concurrent run.  While a thread has
a lane bound (:meth:`SimClock.use_lane`), its charges advance the lane
instead of the master clock; category totals still accumulate globally,
so ``elapsed_by_category`` reports **summed resource time** while
``now_ms`` — after the scheduler folds lane ends back with
:meth:`SimClock.advance_to` — reports **critical-path makespan**.  Lane
starts are pinned by the scheduler to the wave start, so lane-relative
timestamps depend only on the workload, never on thread interleaving.
"""

from __future__ import annotations

import dataclasses
import heapq
import threading
from collections import Counter, deque
from typing import Deque, Dict, List, Optional, Tuple


@dataclasses.dataclass(frozen=True)
class CostModel:
    """Charging rates (simulated milliseconds) for framework operations.

    The default rates are scaled from the qualitative statements of the
    paper: metadata operations are "sufficiently high" performance (fast,
    flat); copies charge per byte; UI interactions charge per dialog.
    """

    metadata_op_ms: float = 5.0
    #: per-byte cost of copying design data between OMS and the UNIX file
    #: system (the Section 2.1 staging path).
    copy_byte_ms: float = 0.0005
    #: fixed overhead per staged file (open/close, directory update).
    copy_file_ms: float = 20.0
    #: a native FMCAD library access does not cross the OMS boundary; it
    #: still touches the file system, but far more cheaply.
    native_byte_ms: float = 0.0001
    native_file_ms: float = 5.0
    #: one user-interface interaction (menu pick, dialog, form submit).
    ui_interaction_ms: float = 1500.0
    #: switching between distinct user interfaces (JCF desktop <-> FMCAD
    #: tool windows) — the Section 3.4 drawback.
    ui_context_switch_ms: float = 4000.0
    tool_startup_ms: float = 2500.0
    lock_wait_poll_ms: float = 1000.0
    #: base backoff before retrying a transient fault; doubles per attempt.
    retry_backoff_ms: float = 250.0
    #: durable flush of one OMS commit.  Zero by default so single-run
    #: workloads keep their historical cost profile; the scheduler's
    #: group-commit benchmark sets it non-zero to show that a wave of N
    #: runs pays this once, not N times.
    commit_flush_ms: float = 0.0


#: default ring-buffer capacity for per-charge event records.  Category
#: totals and the running clock are exact regardless; only the itemised
#: event trail is bounded.
DEFAULT_MAX_EVENTS = 65536


class Lane:
    """A private simulated timeline for one concurrent run.

    Created via :meth:`SimClock.open_lane`; bound to a thread with
    :meth:`SimClock.use_lane`.  All charges made while bound advance the
    lane's ``now_ms`` instead of the master clock.
    """

    __slots__ = ("name", "start_ms", "_now_ms")

    def __init__(self, name: str, start_ms: float) -> None:
        self.name = name
        self.start_ms = start_ms
        self._now_ms = start_ms

    @property
    def now_ms(self) -> float:
        return self._now_ms

    @property
    def elapsed_ms(self) -> float:
        """Simulated time this lane has consumed since it opened."""
        return self._now_ms - self.start_ms


class _LaneBinding(threading.local):
    def __init__(self) -> None:
        self.stack: List[Lane] = []


class DeadlineTimers:
    """Deterministic expiry timers on caller-supplied timestamps.

    A min-heap of ``(due_ms, key)`` entries driven entirely by the
    caller's clock — simulated time in the deterministic engine and the
    lease unit tests, wall time in the asyncio server — so a timer lane
    never needs a wall-clock sleep to fire.  Re-scheduling a key
    replaces its deadline (stale heap entries are dropped lazily), and
    :meth:`pop_due` returns every key whose deadline has passed, in
    deadline order.  Thread-safe: the serving engine schedules from
    shard executor threads and pops from the pump.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._heap: List[Tuple[float, int, str]] = []
        self._due: Dict[str, float] = {}
        self._seq = 0

    def __len__(self) -> int:
        with self._mutex:
            return len(self._due)

    def schedule(self, key: str, due_ms: float) -> None:
        """Arm (or re-arm) *key* to fire at *due_ms*."""
        with self._mutex:
            self._seq += 1
            self._due[key] = due_ms
            heapq.heappush(self._heap, (due_ms, self._seq, key))

    def cancel(self, key: str) -> bool:
        """Disarm *key*; returns whether it was armed."""
        with self._mutex:
            return self._due.pop(key, None) is not None

    def next_due_ms(self) -> Optional[float]:
        """Earliest armed deadline, or ``None`` when nothing is armed."""
        with self._mutex:
            self._drop_stale()
            return self._heap[0][0] if self._heap else None

    def pop_due(self, now_ms: float) -> List[str]:
        """Fire every timer with ``due_ms <= now_ms``, in deadline order."""
        fired: List[str] = []
        with self._mutex:
            while self._heap:
                due_ms, _, key = self._heap[0]
                if self._due.get(key) != due_ms:
                    heapq.heappop(self._heap)  # cancelled or re-armed
                    continue
                if due_ms > now_ms:
                    break
                heapq.heappop(self._heap)
                del self._due[key]
                fired.append(key)
        return fired

    def _drop_stale(self) -> None:
        while self._heap and self._due.get(self._heap[0][2]) != self._heap[0][0]:
            heapq.heappop(self._heap)


class SimClock:
    """Deterministic simulated clock with itemised cost accounting.

    Charges accumulate into a running simulated time.  Each charge is also
    tallied by category so experiments can break latency down into
    metadata / copy / UI / tool components, which is exactly the split
    Section 3.6 discusses.

    Thread-safe: charging is serialised by an internal lock, and a thread
    that has a :class:`Lane` bound charges its lane rather than the master
    clock (see the module docstring for the makespan accounting model).
    """

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        record_events: bool = True,
        max_events: Optional[int] = DEFAULT_MAX_EVENTS,
    ) -> None:
        self.cost_model = cost_model or CostModel()
        #: set False to skip per-charge event records entirely (accounting
        #: totals are always kept)
        self.record_events = record_events
        self._now_ms: float = 0.0
        self._by_category: Counter = Counter()
        self._events: Deque[Tuple[float, str, float]] = deque(maxlen=max_events)
        self._events_seen = 0
        self._lock = threading.RLock()
        self._binding = _LaneBinding()

    # -- reading the clock -------------------------------------------------

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds.

        When the calling thread has a lane bound this is the *lane* time —
        so timestamps taken inside a scheduled run are deterministic
        per-run values, independent of what other workers are doing.
        """
        lane = self.current_lane()
        if lane is not None:
            return lane.now_ms
        return self._now_ms

    def elapsed_by_category(self) -> Dict[str, float]:
        """Total charged milliseconds per category (summed across lanes)."""
        with self._lock:
            return dict(self._by_category)

    @property
    def events(self) -> List[Tuple[float, str, float]]:
        """Chronological ``(timestamp_ms, category, charged_ms)`` records.

        Bounded: only the most recent ``max_events`` are retained.  Use
        :meth:`events_dropped` to see how many older records were evicted;
        accounting totals are unaffected by eviction.
        """
        with self._lock:
            return list(self._events)

    @property
    def events_recorded(self) -> int:
        """Total number of events ever recorded (including evicted ones)."""
        return self._events_seen

    @property
    def events_dropped(self) -> int:
        """Events evicted from the bounded ring buffer."""
        with self._lock:
            return self._events_seen - len(self._events)

    # -- lanes -------------------------------------------------------------

    def open_lane(self, name: str, start_ms: Optional[float] = None) -> Lane:
        """Create a lane starting at *start_ms* (default: current now).

        The scheduler passes an explicit wave-start time so every lane of
        a wave starts at the same deterministic instant.  The default is
        lane-aware: a lane opened while the calling thread is itself bound
        to a lane (nested scheduling — e.g. a shard lane driving a batch)
        starts at the *enclosing lane's* current time, not the master's.
        """
        if start_ms is None:
            start = self.now_ms
        else:
            start = start_ms
        return Lane(name, start)

    def use_lane(self, lane: Lane) -> "_LaneContext":
        """Context manager binding *lane* to the calling thread."""
        return _LaneContext(self, lane)

    def current_lane(self) -> Optional[Lane]:
        """The lane bound to the calling thread, if any."""
        stack = self._binding.stack
        return stack[-1] if stack else None

    def advance_to(self, timestamp_ms: float) -> float:
        """Fold a lane end back into the current timeline (makespan merge).

        Moves the calling thread's timeline forward to *timestamp_ms* if
        it is ahead; never moves it backwards.  "Current timeline" is the
        lane bound to the calling thread when there is one, the master
        clock otherwise — so a batch driven from inside a lane (a shard
        executor, a flow step) folds its makespan into *its own* lane and
        leaves the master clock alone until that lane is itself folded.
        Without this, consecutive ``run_many`` batches driven from a lane
        would leak their wave accounting into the master clock while the
        caller's lane never advanced, reporting a zero makespan.

        No category is charged — the resource time was already accounted
        when the lane charged it.
        """
        lane = self.current_lane()
        with self._lock:
            if lane is not None:
                if timestamp_ms > lane._now_ms:
                    lane._now_ms = timestamp_ms
                return lane._now_ms
            if timestamp_ms > self._now_ms:
                self._now_ms = timestamp_ms
            return self._now_ms

    # -- charging ----------------------------------------------------------

    def charge(self, category: str, milliseconds: float) -> float:
        """Advance the clock by *milliseconds*, tagged with *category*.

        Returns the new simulated time (lane time when a lane is bound).
        Negative charges are rejected so a buggy cost computation can
        never run time backwards.
        """
        if milliseconds < 0:
            raise ValueError(f"negative charge: {milliseconds!r} ms for {category!r}")
        lane = self.current_lane()
        with self._lock:
            if lane is not None:
                lane._now_ms += milliseconds
                timestamp = lane._now_ms
            else:
                self._now_ms += milliseconds
                timestamp = self._now_ms
            self._by_category[category] += milliseconds
            if self.record_events:
                self._events.append((timestamp, category, milliseconds))
                self._events_seen += 1
            return timestamp

    def charge_metadata_op(self, count: int = 1) -> float:
        """Charge *count* JCF-desktop metadata operations."""
        return self.charge("metadata", self.cost_model.metadata_op_ms * count)

    def charge_copy(self, num_bytes: int, files: int = 1) -> float:
        """Charge an OMS <-> file-system staging copy of *num_bytes*."""
        cost = (
            self.cost_model.copy_byte_ms * num_bytes
            + self.cost_model.copy_file_ms * files
        )
        return self.charge("copy", cost)

    def charge_native_io(self, num_bytes: int, files: int = 1) -> float:
        """Charge a native FMCAD library access (no OMS boundary)."""
        cost = (
            self.cost_model.native_byte_ms * num_bytes
            + self.cost_model.native_file_ms * files
        )
        return self.charge("native_io", cost)

    def charge_ui(self, interactions: int = 1) -> float:
        """Charge designer interactions with one user interface."""
        return self.charge("ui", self.cost_model.ui_interaction_ms * interactions)

    def charge_ui_context_switch(self, switches: int = 1) -> float:
        """Charge switches between the JCF and FMCAD user interfaces."""
        return self.charge(
            "ui_switch", self.cost_model.ui_context_switch_ms * switches
        )

    def charge_tool_startup(self) -> float:
        """Charge one FMCAD tool start."""
        return self.charge("tool", self.cost_model.tool_startup_ms)

    def charge_lock_wait(self, polls: int = 1) -> float:
        """Charge waiting on a lock (checkout or reservation)."""
        return self.charge("lock_wait", self.cost_model.lock_wait_poll_ms * polls)

    def charge_retry_backoff(self, attempt: int = 0) -> float:
        """Charge the bounded-exponential backoff before retry *attempt*+1."""
        return self.charge(
            "retry_backoff", self.cost_model.retry_backoff_ms * (2 ** attempt)
        )

    def charge_commit_flush(self, commits: int = 1) -> float:
        """Charge the durable flush of *commits* OMS commits.

        Group-commit coalesces a wave's worth of commits into one flush;
        with the default cost model this is free (``commit_flush_ms=0``).
        """
        return self.charge(
            "commit_flush", self.cost_model.commit_flush_ms * commits
        )

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Zero the clock and all accounting."""
        with self._lock:
            self._now_ms = 0.0
            self._by_category.clear()
            self._events.clear()
            self._events_seen = 0


class _LaneContext:
    """Binds a lane to the current thread for the duration of a block."""

    def __init__(self, clock: SimClock, lane: Lane) -> None:
        self._clock = clock
        self._lane = lane

    def __enter__(self) -> Lane:
        self._clock._binding.stack.append(self._lane)
        return self._lane

    def __exit__(self, *exc_info: object) -> None:
        stack = self._clock._binding.stack
        if not stack or stack[-1] is not self._lane:
            raise RuntimeError("lane binding stack corrupted")
        stack.pop()
