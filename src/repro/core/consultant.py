"""A design consultant for the hybrid framework.

The paper's survey names "Design Consultants like CADEC [KC92]" — a
system co-authored by this paper's first author — as the designer-
assistance species of framework service.  ``DesignConsultant`` is that
service for the hybrid environment: it inspects the coupled state and
produces prioritised, actionable advice:

* which flow activities are runnable next, per cell;
* failed activities that block progress;
* schematics with ERC violations;
* layouts saved with DRC waivers or missing entirely;
* stale ``.meta`` / hierarchy drift / payload divergence (via the
  consistency guard);
* uninitialised simulation results (testbenches that prove too little);
* timing: the critical path of each netlistable schematic.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.core.consistency import ConsistencyGuard
from repro.errors import IntegrityError, ReproError, ToolError
from repro.fmcad.library import Library
from repro.jcf.framework import JCFFramework
from repro.jcf.model import EXEC_FAILED
from repro.jcf.project import JCFProject
from repro.tools.schematic.erc import run_erc
from repro.tools.schematic.model import Schematic
from repro.tools.schematic.netlist import netlist_schematic
from repro.tools.simulator.timing import analyze_timing

#: advice severities, most urgent first
SEVERITIES = ("blocker", "warning", "hint")


@dataclasses.dataclass(frozen=True)
class Advice:
    """One piece of consultant advice."""

    severity: str      # blocker | warning | hint
    cell: str
    topic: str         # flow | erc | drc | consistency | simulation | timing
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.cell} ({self.topic}): " \
               f"{self.message}"


class DesignConsultant:
    """Inspects a coupled project/library pair and advises the designer."""

    def __init__(
        self,
        jcf: JCFFramework,
        guard: Optional[ConsistencyGuard] = None,
    ) -> None:
        self.jcf = jcf
        self.guard = guard

    # -- the main entry point ---------------------------------------------------

    def advise(
        self, project: JCFProject, library: Library
    ) -> List[Advice]:
        """All current advice, ordered blockers first."""
        advice: List[Advice] = []
        for cell in project.cells():
            advice.extend(self._advise_flow(cell))
            advice.extend(self._advise_schematic(library, cell.name))
            advice.extend(self._advise_simulation(library, cell.name))
        if self.guard is not None:
            for finding in self.guard.scan(project, library):
                advice.append(
                    Advice(
                        severity="warning",
                        cell="-",
                        topic="consistency",
                        message=str(finding),
                    )
                )
        order = {severity: i for i, severity in enumerate(SEVERITIES)}
        advice.sort(key=lambda a: (order[a.severity], a.cell, a.topic))
        return advice

    # -- flow advice ---------------------------------------------------------------

    def _advise_flow(self, cell) -> List[Advice]:
        advice: List[Advice] = []
        cell_version = cell.latest_version()
        if cell_version is None:
            advice.append(
                Advice(
                    severity="hint",
                    cell=cell.name,
                    topic="flow",
                    message="no cell version yet; instantiate the cell "
                            "to begin work",
                )
            )
            return advice
        if cell_version.attached_flow() is None:
            advice.append(
                Advice(
                    severity="hint",
                    cell=cell.name,
                    topic="flow",
                    message="no flow attached; attach one before running "
                            "tools",
                )
            )
            return advice
        for variant in cell_version.variants():
            state = self.jcf.engine.state_of(variant)
            failed = [
                name
                for name, status in state.status_by_activity.items()
                if status == EXEC_FAILED
            ]
            for name in failed:
                advice.append(
                    Advice(
                        severity="blocker",
                        cell=cell.name,
                        topic="flow",
                        message=f"activity {name!r} failed on variant "
                                f"{variant.name!r}; fix and re-run",
                    )
                )
            if not state.complete:
                runnable = state.runnable(self.jcf.flows)
                if runnable and not failed:
                    advice.append(
                        Advice(
                            severity="hint",
                            cell=cell.name,
                            topic="flow",
                            message=f"next runnable on variant "
                                    f"{variant.name!r}: "
                                    f"{', '.join(runnable)}",
                        )
                    )
        return advice

    # -- schematic-quality advice ------------------------------------------------------

    def _advise_schematic(
        self, library: Library, cell_name: str
    ) -> List[Advice]:
        advice: List[Advice] = []
        if not library.has_cell(cell_name):
            return advice
        cell = library.cell(cell_name)
        if not cell.has_cellview("schematic"):
            return advice
        cellview = cell.cellview("schematic")
        if cellview.default_version is None:
            return advice
        try:
            schematic = Schematic.from_bytes(
                library.read_version(cellview)
            )
        except (ToolError, IntegrityError):
            advice.append(
                Advice(
                    severity="blocker",
                    cell=cell_name,
                    topic="erc",
                    message="schematic design file is unreadable",
                )
            )
            return advice
        for violation in run_erc(schematic):
            advice.append(
                Advice(
                    severity="warning",
                    cell=cell_name,
                    topic="erc",
                    message=str(violation),
                )
            )
        advice.extend(self._advise_timing(library, schematic))
        return advice

    #: simulations below this stuck-at coverage draw a warning
    COVERAGE_THRESHOLD = 0.9

    def _advise_simulation(
        self, library: Library, cell_name: str
    ) -> List[Advice]:
        """Grade stored simulation reports: low or absent fault coverage."""
        if not library.has_cell(cell_name):
            return []
        cell = library.cell(cell_name)
        if not cell.has_cellview("simulation"):
            return []
        cellview = cell.cellview("simulation")
        if cellview.default_version is None:
            return []
        from repro.tools.simulator.testbench import TestbenchReport

        try:
            report = TestbenchReport.from_bytes(
                library.read_version(cellview)
            )
        except ToolError:
            return []  # not a testbench report (black-box flows)
        except IntegrityError:
            return []  # corrupt on disk; the consistency scan reports it
        if report.fault_coverage is None:
            return [
                Advice(
                    severity="hint",
                    cell=cell_name,
                    topic="simulation",
                    message="simulation passed but was not graded for "
                            "fault coverage; re-run with "
                            "grade_coverage=True",
                )
            ]
        if report.fault_coverage < self.COVERAGE_THRESHOLD:
            return [
                Advice(
                    severity="warning",
                    cell=cell_name,
                    topic="simulation",
                    message=(
                        f"stuck-at fault coverage only "
                        f"{report.fault_coverage:.0%} (threshold "
                        f"{self.COVERAGE_THRESHOLD:.0%}); add patterns"
                    ),
                )
            ]
        return []

    def _advise_timing(
        self, library: Library, schematic: Schematic
    ) -> List[Advice]:
        def resolver(cellref: str) -> Schematic:
            cellview = library.cellview(cellref, "schematic")
            return Schematic.from_bytes(library.read_version(cellview))

        try:
            netlist = netlist_schematic(schematic, resolver)
            report = analyze_timing(netlist)
        except ReproError:
            return []  # incomplete designs have no timing yet
        if not report.critical_path:
            return []
        return [
            Advice(
                severity="hint",
                cell=schematic.cell_name,
                topic="timing",
                message=(
                    f"critical delay {report.critical_delay} via "
                    f"{' -> '.join(report.critical_path)}"
                ),
            )
        ]

    # -- rendering ---------------------------------------------------------------------

    @staticmethod
    def render(advice: List[Advice]) -> str:
        """Human-readable consultant report."""
        if not advice:
            return "design consultant: nothing to report — carry on."
        lines = ["design consultant report:"]
        lines.extend(f"  {item}" for item in advice)
        return "\n".join(lines)
