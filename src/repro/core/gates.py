"""Deterministic phase ordering for concurrently scheduled runs.

The parallel scheduler promises a snapshot **bit-identical** to the
sequential execution of the same batch.  Everything snapshot-visible
that a coupled run produces — oid allocation order, link insertion,
attribute timestamps — happens in two narrow windows of the run
protocol: the *open* section (start activity, journal the intent, open
the tool session) and the *commit* section (harvest transaction,
cross-tags, finish activity).  The long middle — staging file I/O and
the tool step itself — allocates nothing snapshot-visible.

A :class:`Turnstile` is a condition-variable counter that admits run 0,
then run 1, ... of one wave.  Each scheduled run gets a :class:`RunGate`
holding the wave's two turnstiles (open, commit) and the run's fixed
turn index.  The tool wrapper brackets its open and commit sections in
``with gate.ordered():`` — the first call consumes the open turnstile,
the second the commit turnstile.  Since every wave executes those
sections in the same turn order no matter how many workers race the
middles, the snapshot cannot observe the parallelism.

Outside the scheduler nothing is installed and :func:`current_gate`
returns the shared :class:`NullGate`, whose ``ordered()`` is a no-op —
single runs behave exactly as they always did.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator, List, Optional, Sequence


class Turnstile:
    """Admits turn 0, then 1, ... — one holder inside at a time."""

    def __init__(self, name: str, size: int) -> None:
        self.name = name
        self.size = size
        self._cond = threading.Condition()
        self._next = 0

    @contextlib.contextmanager
    def turn(self, index: int) -> Iterator[None]:
        """Hold the turnstile for turn *index*; blocks until it comes up.

        The turn is passed on (the counter advances) even when the body
        raises — a crashed run must never wedge the runs behind it.
        """
        if not 0 <= index < self.size:
            raise ValueError(
                f"turnstile {self.name}: turn {index} out of range "
                f"[0, {self.size})"
            )
        with self._cond:
            self._cond.wait_for(lambda: self._next == index)
        try:
            yield
        finally:
            with self._cond:
                self._next += 1
                self._cond.notify_all()

    @property
    def position(self) -> int:
        with self._cond:
            return self._next


class NullGate:
    """The no-scheduler gate: ordering sections run immediately."""

    @contextlib.contextmanager
    def ordered(self) -> Iterator[None]:
        yield

    def abandon(self) -> None:
        pass


class RunGate:
    """One scheduled run's pass through its wave's ordered sections.

    Consumes the wave turnstiles in sequence: the first
    ``with gate.ordered():`` block takes this run's turn on the first
    turnstile, the second block on the second, and so on.  Extra calls
    beyond the configured turnstiles degrade to no-ops, so a code path
    with more ordering sections than the scheduler anticipated still
    runs (it just isn't cross-run ordered there).
    """

    def __init__(self, turnstiles: Sequence[Turnstile], index: int) -> None:
        self._turnstiles: List[Turnstile] = list(turnstiles)
        self.index = index
        self._consumed = 0

    @contextlib.contextmanager
    def ordered(self) -> Iterator[None]:
        if self._consumed >= len(self._turnstiles):
            yield
            return
        turnstile = self._turnstiles[self._consumed]
        self._consumed += 1
        with turnstile.turn(self.index):
            yield

    def abandon(self) -> None:
        """Take and immediately pass every remaining turn.

        Called by the scheduler when a run ends (normally or by fault):
        any turnstile the run never reached must still see its turn go
        by, or every later run in the wave would wait forever.
        """
        while self._consumed < len(self._turnstiles):
            turnstile = self._turnstiles[self._consumed]
            self._consumed += 1
            with turnstile.turn(self.index):
                pass


_NULL_GATE = NullGate()
_current = threading.local()


def current_gate():
    """The gate bound to the calling thread (NullGate when unscheduled)."""
    return getattr(_current, "gate", None) or _NULL_GATE


@contextlib.contextmanager
def install(gate: RunGate) -> Iterator[RunGate]:
    """Bind *gate* to the calling thread for the duration of the block."""
    previous: Optional[RunGate] = getattr(_current, "gate", None)
    _current.gate = gate
    try:
        yield gate
    finally:
        _current.gate = previous
