"""The coupling's consistency guard.

Section 2.4: "The customization of the encapsulation was extended by
several extension language procedures to trigger functions and lock menu
points in order to prevent data inconsistency."  The guard here is
written *in* the FMCAD extension language (menu locking), installs an ITC
interceptor (wrapper mediation), and provides the cross-checks that make
the hybrid framework's "more powerful data consistency check" (Section
3.2) measurable.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.core.hierarchy import HierarchyManager
from repro.errors import IntegrityError
from repro.integrity.scrub import Scrubber
from repro.core.mapping import DataModelMapper
from repro.core.recovery import IntentJournal
from repro.fmcad.framework import FMCADFramework
from repro.fmcad.itc import ITCMessage
from repro.fmcad.library import Library
from repro.fmcad.session import ToolSession
from repro.jcf.framework import JCFFramework
from repro.jcf.model import (
    EXEC_RUNNING,
    FLOW_DEAD_LETTER,
    FLOW_RUNNING,
    FLOW_TERMINAL_STATES,
)
from repro.jcf.project import JCFCellVersion, JCFProject

#: Menu points the guard locks in every coupled tool session: versioning
#: and hierarchy manipulation belong to the master framework now.
GUARDED_MENUS = ("checkin", "checkout", "edit_hierarchy", "purge_versions")

#: The guard program, in the FMCAD extension language.  ``guard-session``
#: locks every guarded menu point of one session.
GUARD_PROGRAM = """
(define (guard-menu sid menu)
  (when (not (menu-locked sid menu))
    (lock-menu sid menu "version and hierarchy control owned by JCF")))

(define (guard-session sid)
  (guard-menu sid "checkin")
  (guard-menu sid "checkout")
  (guard-menu sid "edit_hierarchy")
  (guard-menu sid "purge_versions")
  t)
"""


@dataclasses.dataclass(frozen=True)
class AuditFinding:
    """One cross-framework invariant violation found by :meth:`audit`."""

    category: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.category}] {self.detail}"


@dataclasses.dataclass
class AuditReport:
    """Outcome of one cross-framework audit pass."""

    findings: List[AuditFinding] = dataclasses.field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_category(self) -> Dict[str, List[AuditFinding]]:
        grouped: Dict[str, List[AuditFinding]] = {}
        for finding in self.findings:
            grouped.setdefault(finding.category, []).append(finding)
        return grouped

    def render(self) -> str:
        if self.clean:
            return "audit: clean"
        lines = [f"audit: {len(self.findings)} finding(s)"]
        for category, findings in sorted(self.by_category().items()):
            lines.append(f"  {category}: {len(findings)}")
            for finding in findings:
                lines.append(f"    - {finding.detail}")
        return "\n".join(lines)


@dataclasses.dataclass(frozen=True)
class Inconsistency:
    """One detected consistency problem."""

    kind: str        # "meta", "hierarchy", "payload", "configuration"
    detail: str
    detected_by: str  # "hybrid" or "fmcad"

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail}"


class ConsistencyGuard:
    """Locks menus, mediates ITC and cross-checks master vs slave state."""

    def __init__(
        self,
        jcf: JCFFramework,
        fmcad: FMCADFramework,
        mapper: DataModelMapper,
        hierarchy: HierarchyManager,
    ) -> None:
        self.jcf = jcf
        self.fmcad = fmcad
        self.mapper = mapper
        self.hierarchy = hierarchy
        self.intents = IntentJournal(jcf.db)
        self._interceptor_installed = False
        fmcad.interpreter.run(GUARD_PROGRAM)

    # -- menu locking (extension language) ----------------------------------

    def guard_session(self, session: ToolSession) -> None:
        """Lock the guarded menu points of *session* via the interpreter.

        Menu points the tool did not register are registered as inert
        entries first, so locking is uniform across tools.
        """
        for name in GUARDED_MENUS:
            if name not in session.menu_names():
                session.register_menu(name, lambda: None)
        self.fmcad.interpreter.call("guard-session", [session.session_id])

    # -- ITC mediation (Section 2.4 wrappers) -----------------------------------

    def install_itc_interceptor(self) -> None:
        """Veto cross-probes into cells another user has reserved.

        FMCAD's ITC "could not be used normally" under the coupling; the
        wrapper inspects each message and suppresses those that would leak
        unpublished state across workspaces.
        """
        if self._interceptor_installed:
            return

        def interceptor(message: ITCMessage) -> Optional[ITCMessage]:
            target = message.payload.get("cell")
            if not target:
                return message
            holder = self._reservation_holder(str(target))
            sender_user = message.payload.get("user", message.sender)
            if holder is not None and holder != sender_user:
                return None  # veto: reserved by someone else
            return message

        self.fmcad.bus.add_interceptor(interceptor)
        self._interceptor_installed = True

    def _reservation_holder(self, cell_name: str) -> Optional[str]:
        for project_obj in self.jcf.db.select("Project"):
            project = JCFProject(self.jcf.db, project_obj)
            cell = project.find_cell(cell_name)
            if cell is None:
                continue
            latest = cell.latest_version()
            if latest is None:
                continue
            return self.jcf.workspaces.reserved_by(latest)
        return None

    # -- cross checks (Section 3.2) ------------------------------------------------

    def scan(self, project: JCFProject, library: Library) -> List[Inconsistency]:
        """Full hybrid consistency scan: meta, hierarchy, payload, configs."""
        findings: List[Inconsistency] = []
        for problem in library.verify_meta():
            findings.append(Inconsistency("meta", problem, "hybrid"))
        try:
            for problem in self.hierarchy.verify_against_library(
                project, library
            ):
                findings.append(Inconsistency("hierarchy", problem, "hybrid"))
        except IntegrityError as exc:
            # a verified read tripped over damaged bytes mid-extraction;
            # that is itself the strongest possible finding
            findings.append(
                Inconsistency(
                    "integrity",
                    f"{exc.location or 'library data'}: "
                    f"{exc.classification or 'corrupt'} detected during "
                    "hierarchy extraction",
                    "hybrid",
                )
            )
        findings.extend(self._scan_payloads(library))
        findings.extend(self._scan_configurations(project))
        return findings

    def _scan_payloads(self, library: Library) -> List[Inconsistency]:
        """Compare OMS blobs with the FMCAD version files they mirror."""
        findings: List[Inconsistency] = []
        for cellview in library.cellviews():
            for version in cellview.versions:
                oid = version.properties.get("jcf_oid")
                if oid is None:
                    findings.append(
                        Inconsistency(
                            "payload",
                            f"{cellview.name} v{version.number} has no JCF "
                            "counterpart (created outside the coupling?)",
                            "hybrid",
                        )
                    )
                    continue
                if not self.jcf.db.exists(oid):
                    findings.append(
                        Inconsistency(
                            "payload",
                            f"{cellview.name} v{version.number}: JCF object "
                            f"{oid} vanished",
                            "hybrid",
                        )
                    )
                    continue
                blob = self.jcf.db.get(oid).payload or b""
                if not version.path.exists():
                    findings.append(
                        Inconsistency(
                            "payload",
                            f"{cellview.name} v{version.number}: FMCAD file "
                            "deleted on disk",
                            "hybrid",
                        )
                    )
                elif blob != version.read_data():
                    findings.append(
                        Inconsistency(
                            "payload",
                            f"{cellview.name} v{version.number}: OMS blob "
                            "and FMCAD file differ",
                            "hybrid",
                        )
                    )
        return findings

    def _scan_configurations(
        self, project: JCFProject
    ) -> List[Inconsistency]:
        findings: List[Inconsistency] = []
        for cell in project.cells():
            for cell_version in cell.versions():
                for config in self.jcf.configurations.configurations_of(
                    cell_version
                ):
                    for problem in self.jcf.configurations.validate(config):
                        findings.append(
                            Inconsistency(
                                "configuration",
                                f"{config.name}: {problem}",
                                "hybrid",
                            )
                        )
        return findings

    # -- crash-consistency audit (recovery's acceptance check) ----------------------

    def audit(self) -> AuditReport:
        """Audit the whole coupling for crash leavings.

        Unlike :meth:`scan`, which compares one project against one
        library, the audit sweeps every invariant a crashed coupled run
        can break: untagged or mistagged FMCAD versions, dangling
        checkout tickets, leaked tool sessions, executions stuck
        ``running``, intents never settled, reservations that outlived
        their legitimacy, unrecorded staging files, and payload
        refcounts that disagree with the live object graph.  A clean
        report is the definition of "recovered".
        """
        report = AuditReport()
        self._audit_versions(report)
        self._audit_tickets(report)
        self._audit_sessions(report)
        self._audit_executions(report)
        self._audit_intents(report)
        self._audit_reservations(report)
        self._audit_staging(report)
        self._audit_blobs(report)
        self._audit_wal(report)
        self._audit_leases(report)
        self._audit_integrity(report)
        self._audit_flow_instances(report)
        return report

    def _audit_wal(self, report: AuditReport) -> None:
        """Verify the write-ahead log and its checkpoints, when attached.

        A healthy (or freshly recovered) WAL is silent; a torn tail the
        recovery sweep has not yet dropped, a checkpoint that fails its
        embedded checksum, or a payload sidecar that no longer proves
        its digest all surface here as ``wal-integrity`` findings.
        """
        wal = getattr(self.jcf.db, "wal", None)
        if wal is None:
            return
        for location, classification in wal.verify():
            report.findings.append(AuditFinding(
                "wal-integrity", f"{location}: {classification}"
            ))

    def _audit_leases(self, report: AuditReport) -> None:
        """Flag expired checkout leases nobody reclaimed, when attached.

        A lease table (published by a serving engine, probed like the
        WAL) should never hold an expired lease on a quiesced system —
        recovery's lease sweep or the engine pump reclaims them.  One
        still live here means a dead session's write claim is blocking
        successors: a ``stale-lease`` finding.
        """
        table = getattr(self.jcf.db, "lease_table", None)
        if table is None:
            return
        now = table.now()
        for lease in table.live_leases():
            if lease.expired(now):
                report.findings.append(AuditFinding(
                    "stale-lease",
                    f"{lease.key}: expired at {lease.expires_ms:.0f}ms "
                    f"(session {lease.session_id}, token {lease.token}) "
                    f"but never reclaimed",
                ))

    def _each_library(self) -> List[Library]:
        """Every library: the open ones plus any still closed on disk."""
        libraries = list(self.fmcad.libraries())
        open_names = {library.name for library in libraries}
        for name in self.fmcad.known_library_names():
            if name not in open_names:
                libraries.append(self.fmcad.open_library(name))
        return libraries

    def _audit_flow_instances(self, report: AuditReport) -> None:
        """Tenth sweep: orphaned or stranded durable flow state.

        A ``running`` instance on a quiesced system means a crash
        interrupted its driver (recovery adopts it back to ``queued``);
        an instance whose variant no longer resolves is an orphan
        (recovery compensates it to ``aborted``); a ``dead_letter``
        instance is parked work an operator must look at — surfaced
        here so ``audit()`` is the one place that lists everything
        unfinished.
        """
        db = self.jcf.db
        for obj in db.select("FlowInstance"):
            status = obj.get("status")
            ident = (
                f"flow instance {obj.oid} ({obj.get('flow_name')} on "
                f"{obj.get('cell')!r})"
            )
            if status == FLOW_DEAD_LETTER:
                report.findings.append(AuditFinding(
                    "dead-letter-flow",
                    f"{ident} dead-lettered: {obj.get('note') or '?'}",
                ))
                continue
            if status in FLOW_TERMINAL_STATES:
                continue
            try:
                db.get(obj.get("variant_oid") or "")
            except Exception:
                report.findings.append(AuditFinding(
                    "flow-orphan",
                    f"{ident} references a variant that no longer exists",
                ))
                continue
            if status == FLOW_RUNNING:
                report.findings.append(AuditFinding(
                    "flow-orphan",
                    f"{ident} still marked running on a quiesced system",
                ))

    def _audit_versions(self, report: AuditReport) -> None:
        for library in self._each_library():
            for cellview in library.cellviews():
                for version in cellview.versions:
                    oid = version.properties.get("jcf_oid")
                    where = (
                        f"{library.name}:{cellview.name} v{version.number}"
                    )
                    if oid is None:
                        report.findings.append(AuditFinding(
                            "orphan-version",
                            f"{where} carries no jcf_oid cross-tag",
                        ))
                    elif not self.jcf.db.exists(oid):
                        report.findings.append(AuditFinding(
                            "unpaired-tag",
                            f"{where} tags dead OMS object {oid}",
                        ))

    def _audit_tickets(self, report: AuditReport) -> None:
        for ticket in self.fmcad.checkouts.active_tickets():
            report.findings.append(AuditFinding(
                "dangling-ticket",
                f"open checkout of {ticket.cellview_key} by {ticket.user}",
            ))

    def _audit_sessions(self, report: AuditReport) -> None:
        for session in self.fmcad.sessions():
            report.findings.append(AuditFinding(
                "leaked-session",
                f"tool session {session.session_id} ({session.tool_name}, "
                f"user {session.user}) still open",
            ))

    def _audit_executions(self, report: AuditReport) -> None:
        for obj in self.jcf.db.select(
            "ActiveExecVersion", lambda o: o.get("status") == EXEC_RUNNING
        ):
            report.findings.append(AuditFinding(
                "stale-execution",
                f"execution {obj.oid} still running",
            ))

    def _audit_intents(self, report: AuditReport) -> None:
        for intent in self.intents.pending():
            report.findings.append(AuditFinding(
                "pending-intent",
                f"intent {intent.oid} ({intent.get('kind')} on "
                f"{intent.get('cell')!r} by {intent.get('user')}) never "
                "settled",
            ))

    def _audit_reservations(self, report: AuditReport) -> None:
        db = self.jcf.db
        for workspace in db.select("Workspace"):
            owner = workspace.get("owner")
            try:
                self.jcf.resources.user(owner)
                owner_known = True
            except Exception:
                owner_known = False
            for cv_oid in db.target_oids("reserves", workspace.oid):
                cell_version = JCFCellVersion(db, db.get(cv_oid))
                if owner_known and not cell_version.published:
                    continue
                reason = (
                    "already published" if cell_version.published
                    else "unknown owner"
                )
                report.findings.append(AuditFinding(
                    "orphan-reservation",
                    f"{owner} reserves cell version {cell_version.number} "
                    f"of {cell_version.cell.name!r} ({reason})",
                ))

    def _audit_staging(self, report: AuditReport) -> None:
        for path in self.jcf.staging.orphan_files():
            report.findings.append(AuditFinding(
                "staging-orphan",
                f"unrecorded staging file {path.name}",
            ))
        # per-run scheduler sandboxes live in subdirectories of the
        # staging root; a clean run removes its own, so any file found
        # down there is a crashed run's leaving
        root = self.jcf.staging.root
        for subdir in sorted(p for p in root.iterdir() if p.is_dir()):
            for path in sorted(subdir.rglob("*")):
                if path.is_file():
                    report.findings.append(AuditFinding(
                        "staging-orphan",
                        "unrecorded staging file "
                        f"{subdir.name}/{path.name}",
                    ))

    def _audit_blobs(self, report: AuditReport) -> None:
        for problem in self.jcf.db.verify_payload_refcounts():
            report.findings.append(AuditFinding("blob-refcount", problem))

    def _audit_integrity(self, report: AuditReport) -> None:
        """Report-only integrity scrub over every storage area.

        Only *actionable* damage counts: informational orphans are
        covered by the dedicated sweeps above, and known-quarantined
        losses were already surfaced by the recovery pass that
        quarantined them — re-reporting forever would make a recovered
        store permanently un-auditable.
        """
        for finding in Scrubber(self.jcf, self.fmcad).scrub().findings:
            if finding.actionable:
                report.findings.append(
                    AuditFinding("integrity", str(finding))
                )

    # -- the FMCAD baseline (what the slave notices by itself) ----------------------

    @staticmethod
    def fmcad_baseline_scan(library: Library) -> List[Inconsistency]:
        """What standard FMCAD detects automatically: nothing.

        Section 2.2: metadata refresh "is not performed automatically, and
        therefore, it is the responsibility of the designer".  FMCAD will
        happily work from a stale ``.meta``; the E32 experiment uses this
        empty baseline against the hybrid scan.
        """
        return []
