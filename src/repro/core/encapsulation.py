"""Encapsulation of the three FMCAD tools as JCF activities.

Section 2.4: "each tool is modelled by one JCF activity, [so] JCF records
all derivation relationships between schematic and layout versions."  A
wrapper run performs the full coupled protocol:

1. verify the user holds the cell version in their workspace (master
   concurrency control);
2. start the JCF activity — in flow order, or *forced early* with the
   extra consistency window the 1995 wrappers popped up;
3. stage the needed design-object versions out of OMS through the UNIX
   file system (the Section 2.1 copy path — charged even read-only);
4. open an FMCAD tool session, lock its guarded menu points via the
   extension-language guard, check the target cellview out;
5. run the actual tool;
6. check the result into FMCAD *and* import it into OMS as a new
   design-object version, cross-tagging both sides;
7. finish the activity, recording needs/creates — the derivation record.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Tuple

from repro.core.consistency import ConsistencyGuard
from repro.core.mapping import WORKING_VARIANT, DataModelMapper
from repro.errors import (
    EncapsulationError,
    FlowOrderError,
    SchematicError,
)
from repro.fmcad.framework import FMCADFramework
from repro.fmcad.library import Library
from repro.jcf.framework import JCFFramework
from repro.jcf.project import (
    JCFCellVersion,
    JCFDesignObject,
    JCFDesignObjectVersion,
    JCFProject,
    JCFVariant,
)
from repro.tools.layout.drc import run_drc
from repro.tools.layout.editor import Layout, LayoutEditor
from repro.tools.schematic.editor import SchematicEditor
from repro.tools.schematic.model import Schematic
from repro.tools.schematic.netlist import netlist_schematic
from repro.tools.simulator.testbench import Testbench


@dataclasses.dataclass
class ToolRunResult:
    """Outcome of one encapsulated tool run."""

    activity_name: str
    cell_name: str
    success: bool
    fmcad_version: Optional[int]
    jcf_version_oid: Optional[str]
    forced_early: bool
    details: str = ""


class _ToolWrapper:
    """Shared coupled-run machinery; subclasses implement the tool step."""

    ACTIVITY: str = ""
    TOOL: str = ""
    VIEWTYPE: str = ""
    #: white/grey-box wrappers lock the tool's menu points through the
    #: extension-language guard; a black box exposes no menus to lock.
    GUARD_MENUS: bool = True

    def __init__(
        self,
        jcf: JCFFramework,
        fmcad: FMCADFramework,
        mapper: DataModelMapper,
        guard: ConsistencyGuard,
    ) -> None:
        self.jcf = jcf
        self.fmcad = fmcad
        self.mapper = mapper
        self.guard = guard

    # -- context helpers ------------------------------------------------------

    def working_variant(
        self, project: JCFProject, cell_name: str
    ) -> JCFVariant:
        cell = project.cell(cell_name)
        cell_version = cell.latest_version()
        if cell_version is None:
            raise EncapsulationError(
                f"cell {cell_name!r} has no cell version; map the library "
                "into JCF first"
            )
        return cell_version.variant(WORKING_VARIANT)

    def _require_workspace(
        self, user: str, cell_version: JCFCellVersion
    ) -> None:
        if not self.jcf.workspaces.can_write(user, cell_version):
            raise EncapsulationError(
                f"user {user!r} must reserve cell version "
                f"{cell_version.number} of {cell_version.cell.name!r} in "
                "their workspace before running tools"
            )

    def _stage_needs(
        self, variant: JCFVariant, viewtypes: Tuple[str, ...]
    ) -> List[Tuple[JCFDesignObjectVersion, bytes]]:
        """Export the needed design objects' latest versions via staging.

        One batched staging request covers all needs: unchanged files
        already in the staging area are revalidated by digest instead of
        re-copied, so a rerun of the same activity pays metadata cost
        only.
        """
        versions: List[JCFDesignObjectVersion] = []
        for viewtype in viewtypes:
            dobj = variant.find_design_object(viewtype)
            if dobj is None or dobj.latest_version() is None:
                raise EncapsulationError(
                    f"variant {variant.name!r} has no {viewtype!r} design "
                    "data; run the producing activity first"
                )
            versions.append(dobj.latest_version())
        staged_files = self.jcf.staging.export_objects(
            [version.oid for version in versions]
        )
        return [
            (version, staged_file.path.read_bytes())
            for version, staged_file in zip(versions, staged_files)
        ]

    def _ensure_design_object(
        self, variant: JCFVariant, name: str, viewtype: str
    ) -> JCFDesignObject:
        for dobj in variant.design_objects():
            if dobj.name == name:
                return dobj
        return variant.create_design_object(name, viewtype)

    def _harvest(
        self,
        user: str,
        library: Library,
        variant: JCFVariant,
        cell_name: str,
        data: bytes,
        viewtype: Optional[str] = None,
    ) -> Tuple[int, JCFDesignObjectVersion]:
        """Check *data* into FMCAD and import it into OMS; cross-tag both."""
        viewtype = viewtype or self.VIEWTYPE
        cell = library.cell(cell_name)
        if not cell.has_cellview(viewtype):
            library.create_cellview(cell_name, viewtype)
        ticket = self.fmcad.checkouts.checkout(
            user, library, cell_name, viewtype
        )
        fmcad_version = self.fmcad.checkouts.checkin(ticket, library, data)
        library.flush_meta(user)

        dobj = self._ensure_design_object(
            variant, f"{cell_name}/{viewtype}", viewtype
        )
        jcf_version = dobj.new_version(
            data, directory_path=str(fmcad_version.path)
        )
        # the result crosses the OMS boundary: charge the staging copy
        self.jcf.db.clock.charge_copy(len(data), files=1)
        fmcad_version.properties.set("jcf_oid", jcf_version.oid)
        return fmcad_version.number, jcf_version

    # -- the coupled run ----------------------------------------------------------

    def run(
        self,
        user: str,
        project: JCFProject,
        library: Library,
        cell_name: str,
        force_early: bool = False,
        **tool_kwargs,
    ) -> ToolRunResult:
        """Execute this wrapper's activity on *cell_name* for *user*."""
        variant = self.working_variant(project, cell_name)
        cell_version = variant.cell_version
        self._require_workspace(user, cell_version)

        flow_name = cell_version.attached_flow()
        if flow_name is None:
            raise EncapsulationError(
                f"cell version {cell_version.number} of {cell_name!r} has "
                "no attached flow"
            )
        activity_def = self.jcf.flows.definition(
            flow_name.get("name")
        ).activity(self.ACTIVITY)

        try:
            execution = self.jcf.engine.start_activity(
                variant, self.ACTIVITY, force_early=force_early
            )
        except FlowOrderError:
            raise  # out-of-order without supervision: rejected outright

        session = self.fmcad.open_session(self.TOOL, user)
        if self.GUARD_MENUS:
            self.guard.guard_session(session)
        if execution.forced_early:
            session.show_consistency_window(
                f"activity {self.ACTIVITY!r} started before its "
                "predecessor finished — results are provisional"
            )
        try:
            needs = self._stage_needs(variant, activity_def.needs)
            success, data, details = self._tool_step(
                session, library, cell_name, needs, **tool_kwargs
            )
            fmcad_number: Optional[int] = None
            jcf_version: Optional[JCFDesignObjectVersion] = None
            creates: List[JCFDesignObjectVersion] = []
            if data is not None:
                # a tool may emit several views at once (e.g. schematic
                # plus the auto-generated symbol); bytes means one view
                # of the wrapper's primary viewtype
                outputs = (
                    data
                    if isinstance(data, dict)
                    else {self.VIEWTYPE: data}
                )
                for viewtype, view_data in outputs.items():
                    number, version = self._harvest(
                        user, library, variant, cell_name, view_data,
                        viewtype=viewtype,
                    )
                    creates.append(version)
                    if viewtype == self.VIEWTYPE:
                        fmcad_number, jcf_version = number, version
                primary = outputs.get(self.VIEWTYPE)
                if primary is not None:
                    self._pass_hierarchy_to_jcf(
                        project, cell_name, primary
                    )
            self.jcf.engine.finish_activity(
                execution,
                needs=[version for version, _ in needs],
                creates=creates,
                success=success,
            )
            self.fmcad.log_invocation(
                self.TOOL, user, cell_name, self.VIEWTYPE
            )
            return ToolRunResult(
                activity_name=self.ACTIVITY,
                cell_name=cell_name,
                success=success,
                fmcad_version=fmcad_number,
                jcf_version_oid=jcf_version.oid if jcf_version else None,
                forced_early=execution.forced_early,
                details=details,
            )
        except Exception:
            self.jcf.engine.finish_activity(execution, success=False)
            raise
        finally:
            self.fmcad.close_session(session.session_id)

    def _pass_hierarchy_to_jcf(
        self, project: JCFProject, cell_name: str, data: bytes
    ) -> None:
        """Pass saved hierarchy info to JCF via the procedural interface.

        Only active when the Section 3.3 future-work interface is
        enabled; under JCF 3.0 hierarchy stays a manual desktop affair.
        """
        if not self.guard.hierarchy.procedural_interface:
            return
        if self.VIEWTYPE == "schematic":
            refs = Schematic.from_bytes(data).subcell_refs()
        elif self.VIEWTYPE == "layout":
            refs = Layout.from_bytes(data).subcell_refs()
        else:
            return
        if refs:
            self.guard.hierarchy.submit_procedurally(
                project, [(cell_name, ref) for ref in refs]
            )

    # -- subclass hook ---------------------------------------------------------------

    def _tool_step(
        self,
        session,
        library: Library,
        cell_name: str,
        needs: List[Tuple[JCFDesignObjectVersion, bytes]],
        **tool_kwargs,
    ) -> Tuple[bool, Optional[bytes], str]:
        """Run the tool; return (success, result bytes or None, details)."""
        raise NotImplementedError


class SchematicEntryWrapper(_ToolWrapper):
    """Encapsulated schematic entry (activity ``schematic_entry``)."""

    ACTIVITY = "schematic_entry"
    TOOL = "schematic_editor"
    VIEWTYPE = "schematic"

    def _tool_step(
        self,
        session,
        library: Library,
        cell_name: str,
        needs,
        edit_fn: Callable[[SchematicEditor], None] = None,
        emit_symbol: bool = True,
        **_ignored,
    ) -> Tuple[bool, Optional[bytes], str]:
        if edit_fn is None:
            raise EncapsulationError("schematic entry needs an edit_fn")
        cell = library.cell(cell_name)
        if (
            cell.has_cellview(self.VIEWTYPE)
            and cell.cellview(self.VIEWTYPE).default_version is not None
        ):
            previous = library.read_version(cell.cellview(self.VIEWTYPE))
            editor = SchematicEditor.open_bytes(previous)
        else:
            editor = SchematicEditor()
            editor.new_design(cell_name)
        session.register_menu("edit", lambda: edit_fn(editor))
        session.invoke_menu("edit")
        try:
            editor.require_clean()
        except SchematicError as exc:
            return False, None, f"schematic check failed: {exc}"
        outputs = {self.VIEWTYPE: editor.save_bytes()}
        details = "schematic saved"
        if emit_symbol and editor.schematic.ports():
            # the tool auto-generates the symbol view, as DFII-family
            # editors do; parents place it via the Figure 2
            # 'Symbol in Sch.V' relation
            from repro.tools.schematic.symbols import symbol_for

            outputs["symbol"] = symbol_for(editor.schematic).to_bytes()
            details = "schematic and symbol saved"
        return True, outputs, details


class DigitalSimulatorWrapper(_ToolWrapper):
    """Encapsulated digital simulation (activity ``digital_simulation``)."""

    ACTIVITY = "digital_simulation"
    TOOL = "digital_simulator"
    VIEWTYPE = "simulation"

    def _tool_step(
        self,
        session,
        library: Library,
        cell_name: str,
        needs,
        testbench_fn: Callable[[Testbench], None] = None,
        grade_coverage: bool = False,
        **_ignored,
    ) -> Tuple[bool, Optional[bytes], str]:
        if testbench_fn is None:
            raise EncapsulationError("simulation needs a testbench_fn")
        schematic_bytes = self._schematic_bytes(needs)
        schematic = Schematic.from_bytes(schematic_bytes)

        def resolver(cellref: str) -> Schematic:
            # FMCAD dynamic binding: the subcell's *default* schematic
            # version, whatever that currently is (Section 2.2).
            cellview = library.cellview(cellref, "schematic")
            return Schematic.from_bytes(library.read_version(cellview))

        netlist = netlist_schematic(schematic, resolver)
        testbench = Testbench(netlist)
        session.register_menu(
            "configure", lambda: testbench_fn(testbench)
        )
        session.invoke_menu("configure")
        report = testbench.run()
        details = (
            f"{report.checks_run} checks, "
            f"{len(report.failures)} failures"
        )
        if grade_coverage and testbench.stimulus.events:
            from repro.tools.simulator.faults import coverage_of_testbench

            report.fault_coverage = coverage_of_testbench(
                testbench
            ).coverage
            details += f", fault coverage {report.fault_coverage:.0%}"
        return report.passed, report.to_bytes(), details

    @staticmethod
    def _schematic_bytes(needs) -> bytes:
        for version, data in needs:
            if version.design_object.viewtype_name == "schematic":
                return data
        raise EncapsulationError("no schematic among staged inputs")


class LayoutEntryWrapper(_ToolWrapper):
    """Encapsulated layout entry (activity ``layout_entry``)."""

    ACTIVITY = "layout_entry"
    TOOL = "layout_editor"
    VIEWTYPE = "layout"

    def _tool_step(
        self,
        session,
        library: Library,
        cell_name: str,
        needs,
        edit_fn: Callable[[LayoutEditor], None] = None,
        drc_gate: bool = True,
        **_ignored,
    ) -> Tuple[bool, Optional[bytes], str]:
        if edit_fn is None:
            raise EncapsulationError("layout entry needs an edit_fn")
        cell = library.cell(cell_name)
        if (
            cell.has_cellview(self.VIEWTYPE)
            and cell.cellview(self.VIEWTYPE).default_version is not None
        ):
            previous = library.read_version(cell.cellview(self.VIEWTYPE))
            editor = LayoutEditor.open_bytes(previous)
        else:
            editor = LayoutEditor()
            editor.new_design(cell_name)
        session.register_menu("edit", lambda: edit_fn(editor))
        session.invoke_menu("edit")

        def resolver(cellref: str) -> Layout:
            cellview = library.cellview(cellref, "layout")
            return Layout.from_bytes(library.read_version(cellview))

        violations = run_drc(
            editor.layout,
            resolver=resolver if editor.layout.instances() else None,
        )
        if violations and drc_gate:
            return (
                False,
                None,
                f"DRC failed: {len(violations)} violations, first: "
                f"{violations[0]}",
            )
        details = (
            "layout saved"
            if not violations
            else f"layout saved with {len(violations)} waived violations"
        )
        return True, editor.save_bytes(), details
