"""Encapsulation of the three FMCAD tools as JCF activities.

Section 2.4: "each tool is modelled by one JCF activity, [so] JCF records
all derivation relationships between schematic and layout versions."  A
wrapper run performs the full coupled protocol:

1. verify the user holds the cell version in their workspace (master
   concurrency control);
2. start the JCF activity — in flow order, or *forced early* with the
   extra consistency window the 1995 wrappers popped up;
3. stage the needed design-object versions out of OMS through the UNIX
   file system (the Section 2.1 copy path — charged even read-only);
4. open an FMCAD tool session, lock its guarded menu points via the
   extension-language guard, check the target cellview out;
5. run the actual tool;
6. check the result into FMCAD *and* import it into OMS as a new
   design-object version, cross-tagging both sides;
7. finish the activity, recording needs/creates — the derivation record.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Tuple

from repro.core import gates
from repro.core.consistency import ConsistencyGuard
from repro.core.mapping import WORKING_VARIANT, DataModelMapper
from repro.core.recovery import IntentJournal
from repro.errors import (
    EncapsulationError,
    FlowOrderError,
    SchematicError,
)
from repro.faults import CrashFault, fault_point, with_retries
from repro.fmcad.framework import FMCADFramework
from repro.fmcad.library import Library
from repro.jcf.model import EXEC_RUNNING, INTENT_ABORTED, INTENT_DONE
from repro.jcf.framework import JCFFramework
from repro.oms.blobs import digest_bytes
from repro.jcf.project import (
    JCFCellVersion,
    JCFDesignObject,
    JCFDesignObjectVersion,
    JCFProject,
    JCFVariant,
)
from repro.tools.layout.drc import run_drc
from repro.tools.layout.editor import Layout, LayoutEditor
from repro.tools.schematic.editor import SchematicEditor
from repro.tools.schematic.model import Schematic
from repro.tools.schematic.netlist import netlist_schematic
from repro.tools.simulator.testbench import Testbench


@dataclasses.dataclass
class ToolRunResult:
    """Outcome of one encapsulated tool run."""

    activity_name: str
    cell_name: str
    success: bool
    fmcad_version: Optional[int]
    jcf_version_oid: Optional[str]
    forced_early: bool
    details: str = ""


class _ToolWrapper:
    """Shared coupled-run machinery; subclasses implement the tool step."""

    ACTIVITY: str = ""
    TOOL: str = ""
    VIEWTYPE: str = ""
    #: white/grey-box wrappers lock the tool's menu points through the
    #: extension-language guard; a black box exposes no menus to lock.
    GUARD_MENUS: bool = True

    def __init__(
        self,
        jcf: JCFFramework,
        fmcad: FMCADFramework,
        mapper: DataModelMapper,
        guard: ConsistencyGuard,
    ) -> None:
        self.jcf = jcf
        self.fmcad = fmcad
        self.mapper = mapper
        self.guard = guard
        self.intents = IntentJournal(jcf.db)
        #: diff harvested outputs against the parent version's digest and
        #: re-intern only changed views; False forces the seed's
        #: paper-faithful full harvest (the ablation the equivalence
        #: tests compare against)
        self.delta_harvest = True
        #: harvested outputs whose bytes matched the parent (metadata cost)
        self.harvest_delta_hits = 0
        #: harvested outputs that actually changed (full copy charged)
        self.harvest_full_imports = 0
        #: optional TriggerRegistry; when set, every successful harvest
        #: records a durable checkin event for event-driven flows
        self.triggers = None

    # -- context helpers ------------------------------------------------------

    def working_variant(
        self, project: JCFProject, cell_name: str
    ) -> JCFVariant:
        cell = project.cell(cell_name)
        cell_version = cell.latest_version()
        if cell_version is None:
            raise EncapsulationError(
                f"cell {cell_name!r} has no cell version; map the library "
                "into JCF first"
            )
        return cell_version.variant(WORKING_VARIANT)

    def _require_workspace(
        self, user: str, cell_version: JCFCellVersion
    ) -> None:
        if not self.jcf.workspaces.can_write(user, cell_version):
            raise EncapsulationError(
                f"user {user!r} must reserve cell version "
                f"{cell_version.number} of {cell_version.cell.name!r} in "
                "their workspace before running tools"
            )

    def _stage_needs(
        self, variant: JCFVariant, viewtypes: Tuple[str, ...]
    ) -> List[Tuple[JCFDesignObjectVersion, bytes]]:
        """Export the needed design objects' latest versions via staging.

        One batched staging request covers all needs: unchanged files
        already in the staging area are revalidated by digest instead of
        re-copied, so a rerun of the same activity pays metadata cost
        only.
        """
        versions: List[JCFDesignObjectVersion] = []
        for viewtype in viewtypes:
            dobj = variant.find_design_object(viewtype)
            if dobj is None or dobj.latest_version() is None:
                raise EncapsulationError(
                    f"variant {variant.name!r} has no {viewtype!r} design "
                    "data; run the producing activity first"
                )
            versions.append(dobj.latest_version())
        # needs are tool *inputs* — declared read-only, so identical
        # payloads stage as hard links with zero bytes copied
        staged_files = self.jcf.staging.export_objects(
            [version.oid for version in versions], writable=False
        )
        return [
            # verified read: a staged file that rotted since its export
            # raises IntegrityError here instead of feeding the tool
            # garbage it would dutifully parse into a broken design
            (version, self.jcf.staging.read_staged(staged_file.oid))
            for version, staged_file in zip(versions, staged_files)
        ]

    def _ensure_design_object(
        self, variant: JCFVariant, name: str, viewtype: str
    ) -> JCFDesignObject:
        for dobj in variant.design_objects():
            if dobj.name == name:
                return dobj
        return variant.create_design_object(name, viewtype)

    def _harvest(
        self,
        user: str,
        library: Library,
        variant: JCFVariant,
        cell_name: str,
        data: bytes,
        viewtype: Optional[str] = None,
        completed: Optional[list] = None,
    ) -> Tuple["object", JCFDesignObjectVersion, bool]:
        """Check *data* into FMCAD and import it into OMS.

        Returns ``(fmcad cellview version, jcf version, unchanged)`` —
        *unchanged* is True when the delta harvest found the output
        byte-identical to its parent version.  The caller
        owns the surrounding OMS transaction and places the ``jcf_oid``
        cross-tags after it commits; each FMCAD version checked in is
        appended to *completed* so the caller can compensate them if the
        transaction aborts.  A failed checkin or import cancels the
        checkout ticket (and undoes a half-landed version) instead of
        leaking it — unless the failure is a simulated crash, which
        cleans up nothing by definition.
        """
        viewtype = viewtype or self.VIEWTYPE
        cell = library.cell(cell_name)
        if not cell.has_cellview(viewtype):
            library.create_cellview(cell_name, viewtype)
        ticket = self.fmcad.checkouts.checkout(
            user, library, cell_name, viewtype
        )
        fault_point("harvest.after_checkout")
        try:
            fmcad_version = self.fmcad.checkouts.checkin(
                ticket, library, data
            )
            if completed is not None:
                completed.append((viewtype, fmcad_version))
            fault_point("harvest.after_checkin")
        except CrashFault:
            raise
        except Exception:
            if ticket.open:
                cellview = library.cellview(cell_name, viewtype)
                latest = cellview.default_version
                if latest is not None and latest.number != ticket.base_version:
                    # checkin died after writing the version file
                    library.drop_version(cellview, latest.number)
                self.fmcad.checkouts.cancel(ticket, library)
            raise
        library.flush_meta(user)
        fault_point("harvest.before_import")
        dobj = self._ensure_design_object(
            variant, f"{cell_name}/{viewtype}", viewtype
        )
        previous = dobj.latest_version()
        unchanged = (
            self.delta_harvest
            and previous is not None
            and previous.payload_digest == digest_bytes(data)
        )
        jcf_version = dobj.new_version(
            data, directory_path=str(fmcad_version.path)
        )
        if unchanged:
            # delta harvest: the tool reproduced the parent version
            # byte-identically, so nothing new crosses the OMS boundary —
            # the blob store dedups the intern, the WAL logs digest-only,
            # and the crossing costs one metadata operation, not a copy
            self.jcf.db.clock.charge_metadata_op()
            self.harvest_delta_hits += 1
        else:
            # the result crosses the OMS boundary: charge the staging copy
            self.jcf.db.clock.charge_copy(len(data), files=1)
            self.harvest_full_imports += 1
        fault_point("harvest.after_import")
        return fmcad_version, jcf_version, unchanged

    def _compensate_checkins(
        self, user: str, library: Library, cell_name: str, completed: list
    ) -> None:
        """Undo FMCAD checkins whose OMS transaction rolled back."""
        for viewtype, fmcad_version in reversed(completed):
            cellview = library.cellview(cell_name, viewtype)
            library.drop_version(cellview, fmcad_version.number)
        if completed:
            library.flush_meta(user)

    def _cancel_dangling_tickets(
        self, library: Library, cell_name: str
    ) -> None:
        """Cancel any open checkout this run left on its target cell."""
        for ticket in self.fmcad.checkouts.active_tickets():
            if (
                ticket.library_name == library.name
                and ticket.cell_name == cell_name
            ):
                self.fmcad.checkouts.cancel(ticket, library)

    # -- the coupled run ----------------------------------------------------------

    def run(
        self,
        user: str,
        project: JCFProject,
        library: Library,
        cell_name: str,
        force_early: bool = False,
        **tool_kwargs,
    ) -> ToolRunResult:
        """Execute this wrapper's activity on *cell_name* for *user*."""
        variant = self.working_variant(project, cell_name)
        cell_version = variant.cell_version
        self._require_workspace(user, cell_version)

        flow_name = cell_version.attached_flow()
        if flow_name is None:
            raise EncapsulationError(
                f"cell version {cell_version.number} of {cell_name!r} has "
                "no attached flow"
            )
        activity_def = self.jcf.flows.definition(
            flow_name.get("name")
        ).activity(self.ACTIVITY)

        # everything snapshot-visible this run allocates happens in two
        # gate.ordered() sections (open / commit); under the scheduler the
        # wave executes them in fixed turn order, which is what makes a
        # parallel batch bit-identical to its sequential execution.  With
        # no scheduler the gate is a NullGate and nothing changes.
        gate = gates.current_gate()

        with gate.ordered():
            try:
                execution = self.jcf.engine.start_activity(
                    variant, self.ACTIVITY, force_early=force_early
                )
            except FlowOrderError:
                raise  # out-of-order without supervision: rejected outright

            # the window between starting the activity and journalling the
            # intent: a crash here leaves a running execution no intent
            # describes — recovery's generic execution sweep covers it
            fault_point("run.after_start")

            # phase one: journal the intent — durable before any FMCAD side
            # effect, carrying the per-view version baseline recovery needs
            # to tell this run's half-work from pre-existing state
            try:
                intent_oid = self.intents.begin(
                    kind=self.ACTIVITY,
                    user=user,
                    library=library.name,
                    cell=cell_name,
                    activity=self.ACTIVITY,
                    execution_oid=execution.oid,
                    variant_oid=variant.oid,
                    fmcad_base=[
                        [
                            cv.view.name,
                            cv.default_version.number
                            if cv.default_version
                            else 0,
                        ]
                        for cv in library.cell(cell_name).cellviews()
                    ],
                )

                session = self.fmcad.open_session(self.TOOL, user)
                if self.GUARD_MENUS:
                    self.guard.guard_session(session)
                if execution.forced_early:
                    session.show_consistency_window(
                        f"activity {self.ACTIVITY!r} started before its "
                        "predecessor finished — results are provisional"
                    )
            except CrashFault:
                raise  # dead process: the generic execution sweep repairs
            except Exception:
                # the process is alive but the run never got going (e.g.
                # the cell vanished between workspace check and intent):
                # don't leak a running execution nothing will ever finish
                if execution.status == EXEC_RUNNING:
                    self.jcf.engine.finish_activity(execution, success=False)
                raise
        crashed = False
        #: views that reached durability — non-empty only after the
        #: harvest transaction commits (cleared when it aborts)
        harvested: List[Tuple[object, JCFDesignObjectVersion]] = []
        #: did any harvested view carry new bytes?  Delta-hit re-runs
        #: (idempotent crash resume) must not re-raise checkin events
        changed_views = False
        try:
            needs = with_retries(
                lambda: self._stage_needs(variant, activity_def.needs),
                clock=self.jcf.clock,
            )
            success, data, details = with_retries(
                lambda: self._tool_step(
                    session, library, cell_name, needs, **tool_kwargs
                ),
                clock=self.jcf.clock,
            )
            # the commit section — everything from the harvest
            # transaction to the derivation record runs in wave turn
            # order under the scheduler
            with gate.ordered():
                fmcad_number: Optional[int] = None
                jcf_version: Optional[JCFDesignObjectVersion] = None
                creates: List[JCFDesignObjectVersion] = []
                if data is not None:
                    # a tool may emit several views at once (e.g. schematic
                    # plus the auto-generated symbol); bytes means one view
                    # of the wrapper's primary viewtype
                    outputs = (
                        data
                        if isinstance(data, dict)
                        else {self.VIEWTYPE: data}
                    )
                    # phase two: harvest every view inside ONE OMS
                    # transaction, compensating completed FMCAD checkins if
                    # it aborts — no more half-harvested multi-view runs
                    completed: List[Tuple[str, object]] = []
                    try:
                        with self.jcf.db.transaction():
                            for viewtype, view_data in outputs.items():
                                fmcad_version, version, unchanged = (
                                    self._harvest(
                                        user, library, variant, cell_name,
                                        view_data, viewtype=viewtype,
                                        completed=completed,
                                    )
                                )
                                if not unchanged:
                                    changed_views = True
                                harvested.append((fmcad_version, version))
                                creates.append(version)
                                if viewtype == self.VIEWTYPE:
                                    fmcad_number = fmcad_version.number
                                    jcf_version = version
                            primary = outputs.get(self.VIEWTYPE)
                            if primary is not None:
                                self._pass_hierarchy_to_jcf(
                                    project, cell_name, primary
                                )
                    except CrashFault:
                        raise  # a dead process compensates nothing
                    except Exception:
                        # the OMS side already rolled itself back; undo the
                        # FMCAD checkins that went with it
                        self._compensate_checkins(
                            user, library, cell_name, completed
                        )
                        harvested.clear()  # nothing survived the abort
                        creates.clear()
                        changed_views = False
                        raise
                    # the OMS transaction committed: both sides are durable.
                    # Cross-tag the FMCAD versions now — a crash in this
                    # window is the roll-forward case (recovery repairs the
                    # tag from the matching payload digest).  Tag placement
                    # is idempotent, so glitches are simply retried.
                    for fmcad_version, version in harvested:
                        with_retries(
                            lambda fv=fmcad_version, v=version: (
                                fault_point("harvest.before_tag"),
                                fv.properties.set("jcf_oid", v.oid),
                            ),
                            clock=self.jcf.clock,
                        )
                # outputs durable and cross-tagged; derivation record pending
                fault_point("run.before_finish")
                self.jcf.engine.finish_activity(
                    execution,
                    needs=[version for version, _ in needs],
                    creates=creates,
                    success=success,
                )
                self.fmcad.log_invocation(
                    self.TOOL, user, cell_name, self.VIEWTYPE
                )
                self.intents.finish(intent_oid, INTENT_DONE)
                if (
                    self.triggers is not None
                    and success
                    and changed_views
                ):
                    # the checkin is durable; note the event so trigger
                    # dispatch can enqueue downstream flows exactly once
                    self.triggers.record_event(
                        "checkin", library.name, cell_name, self.VIEWTYPE
                    )
            return ToolRunResult(
                activity_name=self.ACTIVITY,
                cell_name=cell_name,
                success=success,
                fmcad_version=fmcad_number,
                jcf_version_oid=jcf_version.oid if jcf_version else None,
                forced_early=execution.forced_early,
                details=details,
            )
        except CrashFault:
            # simulated process death: no application-level cleanup may
            # run — recovery repairs the wreckage from the intent record
            crashed = True
            raise
        except Exception:
            # an ordinary failure (tool error, exhausted retries): the
            # process is alive, so it cleans up after itself.  Anything
            # the committed transaction made durable keeps its cross-tag
            # — only a dead process leaves tagging to recovery.
            for fmcad_version, version in harvested:
                if fmcad_version.properties.get("jcf_oid") is None:
                    fmcad_version.properties.set("jcf_oid", version.oid)
            if execution.status == EXEC_RUNNING:
                self.jcf.engine.finish_activity(execution, success=False)
            self._cancel_dangling_tickets(library, cell_name)
            self.intents.finish(
                intent_oid,
                INTENT_DONE if harvested else INTENT_ABORTED,
                note="failed after outputs committed" if harvested else "",
            )
            raise
        finally:
            if not crashed:
                self.fmcad.close_session(session.session_id)

    def _pass_hierarchy_to_jcf(
        self, project: JCFProject, cell_name: str, data: bytes
    ) -> None:
        """Pass saved hierarchy info to JCF via the procedural interface.

        Only active when the Section 3.3 future-work interface is
        enabled; under JCF 3.0 hierarchy stays a manual desktop affair.
        """
        if not self.guard.hierarchy.procedural_interface:
            return
        if self.VIEWTYPE == "schematic":
            refs = Schematic.from_bytes(data).subcell_refs()
        elif self.VIEWTYPE == "layout":
            refs = Layout.from_bytes(data).subcell_refs()
        else:
            return
        if refs:
            self.guard.hierarchy.submit_procedurally(
                project, [(cell_name, ref) for ref in refs]
            )

    # -- subclass hook ---------------------------------------------------------------

    def _tool_step(
        self,
        session,
        library: Library,
        cell_name: str,
        needs: List[Tuple[JCFDesignObjectVersion, bytes]],
        **tool_kwargs,
    ) -> Tuple[bool, Optional[bytes], str]:
        """Run the tool; return (success, result bytes or None, details)."""
        raise NotImplementedError


class SchematicEntryWrapper(_ToolWrapper):
    """Encapsulated schematic entry (activity ``schematic_entry``)."""

    ACTIVITY = "schematic_entry"
    TOOL = "schematic_editor"
    VIEWTYPE = "schematic"

    def _tool_step(
        self,
        session,
        library: Library,
        cell_name: str,
        needs,
        edit_fn: Callable[[SchematicEditor], None] = None,
        emit_symbol: bool = True,
        **_ignored,
    ) -> Tuple[bool, Optional[bytes], str]:
        if edit_fn is None:
            raise EncapsulationError("schematic entry needs an edit_fn")
        cell = library.cell(cell_name)
        if (
            cell.has_cellview(self.VIEWTYPE)
            and cell.cellview(self.VIEWTYPE).default_version is not None
        ):
            previous = library.read_version(cell.cellview(self.VIEWTYPE))
            editor = SchematicEditor.open_bytes(previous)
        else:
            editor = SchematicEditor()
            editor.new_design(cell_name)
        session.register_menu("edit", lambda: edit_fn(editor), replace=True)
        session.invoke_menu("edit")
        try:
            editor.require_clean()
        except SchematicError as exc:
            return False, None, f"schematic check failed: {exc}"
        outputs = {self.VIEWTYPE: editor.save_bytes()}
        details = "schematic saved"
        if emit_symbol and editor.schematic.ports():
            # the tool auto-generates the symbol view, as DFII-family
            # editors do; parents place it via the Figure 2
            # 'Symbol in Sch.V' relation
            from repro.tools.schematic.symbols import symbol_for

            outputs["symbol"] = symbol_for(editor.schematic).to_bytes()
            details = "schematic and symbol saved"
        return True, outputs, details


class DigitalSimulatorWrapper(_ToolWrapper):
    """Encapsulated digital simulation (activity ``digital_simulation``)."""

    ACTIVITY = "digital_simulation"
    TOOL = "digital_simulator"
    VIEWTYPE = "simulation"

    def _tool_step(
        self,
        session,
        library: Library,
        cell_name: str,
        needs,
        testbench_fn: Callable[[Testbench], None] = None,
        grade_coverage: bool = False,
        **_ignored,
    ) -> Tuple[bool, Optional[bytes], str]:
        if testbench_fn is None:
            raise EncapsulationError("simulation needs a testbench_fn")
        schematic_bytes = self._schematic_bytes(needs)
        schematic = Schematic.from_bytes(schematic_bytes)

        def resolver(cellref: str) -> Schematic:
            # FMCAD dynamic binding: the subcell's *default* schematic
            # version, whatever that currently is (Section 2.2).
            cellview = library.cellview(cellref, "schematic")
            return Schematic.from_bytes(library.read_version(cellview))

        netlist = netlist_schematic(schematic, resolver)
        testbench = Testbench(netlist)
        session.register_menu(
            "configure", lambda: testbench_fn(testbench), replace=True
        )
        session.invoke_menu("configure")
        report = testbench.run()
        details = (
            f"{report.checks_run} checks, "
            f"{len(report.failures)} failures"
        )
        if grade_coverage and testbench.stimulus.events:
            from repro.tools.simulator.faults import coverage_of_testbench

            report.fault_coverage = coverage_of_testbench(
                testbench
            ).coverage
            details += f", fault coverage {report.fault_coverage:.0%}"
        return report.passed, report.to_bytes(), details

    @staticmethod
    def _schematic_bytes(needs) -> bytes:
        for version, data in needs:
            if version.design_object.viewtype_name == "schematic":
                return data
        raise EncapsulationError("no schematic among staged inputs")


class LayoutEntryWrapper(_ToolWrapper):
    """Encapsulated layout entry (activity ``layout_entry``)."""

    ACTIVITY = "layout_entry"
    TOOL = "layout_editor"
    VIEWTYPE = "layout"

    def _tool_step(
        self,
        session,
        library: Library,
        cell_name: str,
        needs,
        edit_fn: Callable[[LayoutEditor], None] = None,
        drc_gate: bool = True,
        **_ignored,
    ) -> Tuple[bool, Optional[bytes], str]:
        if edit_fn is None:
            raise EncapsulationError("layout entry needs an edit_fn")
        cell = library.cell(cell_name)
        if (
            cell.has_cellview(self.VIEWTYPE)
            and cell.cellview(self.VIEWTYPE).default_version is not None
        ):
            previous = library.read_version(cell.cellview(self.VIEWTYPE))
            editor = LayoutEditor.open_bytes(previous)
        else:
            editor = LayoutEditor()
            editor.new_design(cell_name)
        session.register_menu("edit", lambda: edit_fn(editor), replace=True)
        session.invoke_menu("edit")

        def resolver(cellref: str) -> Layout:
            cellview = library.cellview(cellref, "layout")
            return Layout.from_bytes(library.read_version(cellview))

        violations = run_drc(
            editor.layout,
            resolver=resolver if editor.layout.instances() else None,
        )
        if violations and drc_gate:
            return (
                False,
                None,
                f"DRC failed: {len(violations)} violations, first: "
                f"{violations[0]}",
            )
        details = (
            "layout saved"
            if not violations
            else f"layout saved with {len(violations)} waived violations"
        )
        return True, editor.save_bytes(), details
