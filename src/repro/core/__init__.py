"""The paper's contribution: the hybrid JCF-FMCAD coupling.

JCF is the **master**, FMCAD the **slave** (Section 2.3).  The coupling
consists of:

* :mod:`repro.core.mapping` — the Table 1 data-model mapping between the
  two information architectures;
* :mod:`repro.core.hierarchy` — extraction of design hierarchies from
  FMCAD design files and their manual-style submission to JCF metadata,
  with the JCF 3.0 isomorphism restriction;
* :mod:`repro.core.encapsulation` — one JCF activity wrapper per FMCAD
  tool (schematic entry, layout entry, digital simulator);
* :mod:`repro.core.consistency` — the extension-language consistency
  guard (menu locking, metadata cross-checks, ITC mediation);
* :mod:`repro.core.desktop` — the combined user-interface surface;
* :mod:`repro.core.coupling` — :class:`HybridFramework`, the wired-up
  hybrid environment and the library's main entry point.
"""

from repro.core.mapping import TABLE1_MAPPING, DataModelMapper, MappingRecord
from repro.core.hierarchy import (
    HierarchyManager,
    extract_children_map,
    extract_functional_hierarchy,
    extract_physical_hierarchy,
    hierarchies_isomorphic,
)
from repro.core.consistency import ConsistencyGuard, Inconsistency
from repro.core.encapsulation import (
    DigitalSimulatorWrapper,
    LayoutEntryWrapper,
    SchematicEntryWrapper,
    ToolRunResult,
)
from repro.core.desktop import CombinedDesktop
from repro.core.crossprobe import CrossProbeService, ProbeResult
from repro.core.integration import BlackBoxToolWrapper, IntegrationLevel
from repro.core.exchange import (
    ExchangeError,
    export_archive,
    import_archive,
    read_manifest,
)
from repro.core.consultant import Advice, DesignConsultant
from repro.core.coupling import HybridFramework

__all__ = [
    "TABLE1_MAPPING",
    "DataModelMapper",
    "MappingRecord",
    "HierarchyManager",
    "extract_children_map",
    "extract_functional_hierarchy",
    "extract_physical_hierarchy",
    "hierarchies_isomorphic",
    "ConsistencyGuard",
    "Inconsistency",
    "SchematicEntryWrapper",
    "LayoutEntryWrapper",
    "DigitalSimulatorWrapper",
    "ToolRunResult",
    "CombinedDesktop",
    "CrossProbeService",
    "ProbeResult",
    "BlackBoxToolWrapper",
    "IntegrationLevel",
    "ExchangeError",
    "export_archive",
    "import_archive",
    "read_manifest",
    "Advice",
    "DesignConsultant",
    "HybridFramework",
]
