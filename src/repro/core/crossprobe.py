"""Cross-probing between the schematic and layout tools, coupled-style.

Section 2.2 names cross-probing as the flagship ITC feature; Section 2.4
notes the coupling had to mediate ITC with wrappers.  This service wires
the real tools together: selecting a net in the schematic session
highlights the matching *extracted* geometry in the layout session (and
back), with every message passing through the consistency guard's
interceptor — probes into cells reserved by another user are vetoed.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.errors import ITCError
from repro.fmcad.framework import FMCADFramework
from repro.fmcad.itc import ITCMessage
from repro.fmcad.library import Library
from repro.fmcad.session import ToolSession
from repro.tools.layout.editor import Layout
from repro.tools.layout.extract import extract_connectivity
from repro.tools.schematic.model import Schematic


@dataclasses.dataclass
class ProbeResult:
    """Outcome of one cross-probe."""

    net: str
    delivered: bool
    #: number of geometry rectangles highlighted in the layout view
    highlighted_shapes: int
    #: True when the probed name exists on the peer side
    resolved: bool


class CrossProbeService:
    """A coupled schematic/layout session pair with live cross-probing."""

    TOPIC = "crossprobe"

    def __init__(
        self,
        fmcad: FMCADFramework,
        library: Library,
        cell_name: str,
        user: str,
    ) -> None:
        self.fmcad = fmcad
        self.library = library
        self.cell_name = cell_name
        self.user = user
        self.schematic_session: ToolSession = fmcad.open_session(
            "schematic_editor", user
        )
        self.layout_session: ToolSession = fmcad.open_session(
            "layout_editor", user
        )
        self._highlights: Dict[str, List[str]] = {
            self.schematic_session.session_id: [],
            self.layout_session.session_id: [],
        }
        for session in (self.schematic_session, self.layout_session):
            fmcad.bus.subscribe(
                session.session_id, self.TOPIC, self._on_probe
            )
        self.results: List[ProbeResult] = []

    # -- message handling -------------------------------------------------------

    def _on_probe(self, message: ITCMessage) -> None:
        net = str(message.payload.get("object", ""))
        for session_id, highlights in self._highlights.items():
            if session_id != message.sender:
                highlights.append(net)

    def highlights_in_layout(self) -> List[str]:
        return list(self._highlights[self.layout_session.session_id])

    def highlights_in_schematic(self) -> List[str]:
        return list(self._highlights[self.schematic_session.session_id])

    # -- current design data ------------------------------------------------------

    def _current_schematic(self) -> Optional[Schematic]:
        cell = self.library.cell(self.cell_name)
        if not cell.has_cellview("schematic"):
            return None
        cellview = cell.cellview("schematic")
        if cellview.default_version is None:
            return None
        return Schematic.from_bytes(self.library.read_version(cellview))

    def _current_layout(self) -> Optional[Layout]:
        cell = self.library.cell(self.cell_name)
        if not cell.has_cellview("layout"):
            return None
        cellview = cell.cellview("layout")
        if cellview.default_version is None:
            return None
        return Layout.from_bytes(self.library.read_version(cellview))

    # -- probing -----------------------------------------------------------------

    def probe_from_schematic(self, net_name: str) -> ProbeResult:
        """Select *net_name* in the schematic; highlight it in the layout.

        The message carries the cell and user so the consistency guard's
        interceptor can apply its workspace rules; a vetoed probe reports
        ``delivered=False`` and highlights nothing.
        """
        schematic = self._current_schematic()
        if schematic is None:
            raise ITCError(
                f"cell {self.cell_name!r} has no schematic to probe from"
            )
        known = {net.name for net in schematic.nets()}
        if net_name not in known:
            raise ITCError(
                f"schematic of {self.cell_name!r} has no net {net_name!r}"
            )
        message = self.fmcad.bus.publish(
            self.schematic_session.session_id,
            self.TOPIC,
            {"object": net_name, "cell": self.cell_name, "user": self.user},
        )
        delivered = message is not None
        shapes = 0
        resolved = False
        layout = self._current_layout()
        if delivered and layout is not None:
            for extracted in extract_connectivity(
                layout, resolver=self._layout_resolver
            ):
                if extracted.name == net_name:
                    shapes = len(extracted.rects)
                    resolved = True
                    break
        result = ProbeResult(
            net=net_name,
            delivered=delivered,
            highlighted_shapes=shapes,
            resolved=resolved,
        )
        self.results.append(result)
        return result

    def probe_from_layout(self, net_name: str) -> ProbeResult:
        """Select an extracted net in the layout; highlight the schematic."""
        layout = self._current_layout()
        if layout is None:
            raise ITCError(
                f"cell {self.cell_name!r} has no layout to probe from"
            )
        extracted_names = {
            net.name
            for net in extract_connectivity(
                layout, resolver=self._layout_resolver
            )
            if net.name
        }
        if net_name not in extracted_names:
            raise ITCError(
                f"layout of {self.cell_name!r} extracts no net {net_name!r}"
            )
        message = self.fmcad.bus.publish(
            self.layout_session.session_id,
            self.TOPIC,
            {"object": net_name, "cell": self.cell_name, "user": self.user},
        )
        delivered = message is not None
        schematic = self._current_schematic()
        resolved = bool(
            delivered
            and schematic is not None
            and any(net.name == net_name for net in schematic.nets())
        )
        result = ProbeResult(
            net=net_name,
            delivered=delivered,
            highlighted_shapes=0,
            resolved=resolved,
        )
        self.results.append(result)
        return result

    def _layout_resolver(self, cellref: str) -> Layout:
        cellview = self.library.cellview(cellref, "layout")
        return Layout.from_bytes(self.library.read_version(cellview))

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        for session in (self.schematic_session, self.layout_session):
            if not session.closed:
                self.fmcad.bus.unsubscribe(session.session_id, self.TOPIC)
                self.fmcad.close_session(session.session_id)
