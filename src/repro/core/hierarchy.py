"""Design-hierarchy handling — "one of the most difficult tasks" (§3.3).

FMCAD hides hierarchy inside design files, per viewtype; JCF keeps it as
separate CompOf metadata.  The coupling therefore has to

1. **extract** hierarchies from the FMCAD design files (schematic
   instances give the functional hierarchy, layout placements the
   physical one);
2. check the two for **isomorphism** — JCF 3.0 cannot represent
   viewtype-dependent hierarchies, so non-isomorphic designs are rejected
   unless the paper's future-release mode is enabled;
3. **submit** the hierarchy manually through the JCF desktop *before*
   design work starts, paying one desktop interaction per edge.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Set, Tuple

from repro.errors import (
    FMCADError,
    HierarchyError,
    NonIsomorphicHierarchyError,
    ToolError,
)
from repro.fmcad.library import Library
from repro.jcf.desktop import JCFDesktop
from repro.jcf.project import JCFProject
from repro.tools.layout.editor import Layout
from repro.tools.schematic.model import Schematic

Edge = Tuple[str, str]


def extract_children_map(
    library: Library, view_name: str
) -> Dict[str, Set[str]]:
    """parent -> child-set from every cell's default version of a view.

    A cell that *has* the view (with data) appears as a key even when it
    places no children — an empty child set is a statement, not an
    absence; only cells without the view are unconstrained.
    """
    children: Dict[str, Set[str]] = {}
    for cell in library.cells():
        if not cell.has_cellview(view_name):
            continue
        cellview = cell.cellview(view_name)
        if cellview.default_version is None:
            continue
        try:
            data = library.read_version(cellview)
            if view_name == "schematic":
                refs = Schematic.from_bytes(data).subcell_refs()
            elif view_name == "layout":
                refs = Layout.from_bytes(data).subcell_refs()
            else:
                raise HierarchyError(
                    f"view {view_name!r} carries no hierarchy information"
                )
        except (ToolError, FMCADError):
            # unparsable or missing design file: contributes no hierarchy
            # facts; the consistency guard's payload scan reports it
            continue
        children[cell.name] = set(refs)
    return children


def _edges_of(children: Dict[str, Set[str]]) -> List[Edge]:
    return sorted(
        (parent, child)
        for parent, kids in children.items()
        for child in kids
    )


def extract_functional_hierarchy(library: Library) -> List[Edge]:
    """(parent, child) edges from every cell's default schematic version."""
    return _edges_of(extract_children_map(library, "schematic"))


def extract_physical_hierarchy(library: Library) -> List[Edge]:
    """(parent, child) edges from every cell's default layout version."""
    return _edges_of(extract_children_map(library, "layout"))


def hierarchies_isomorphic(
    functional: Dict[str, Set[str]], physical: Dict[str, Set[str]]
) -> bool:
    """True when the hierarchies agree wherever both are defined.

    Arguments are parent -> child-set maps (see
    :func:`extract_children_map`); plain edge lists are also accepted for
    convenience.  A cell present in only one map constrains nothing; for
    cells present in both, the child sets must be equal — including a
    layout that flattens its schematic children away (empty set).
    """
    return not _isomorphism_conflicts(functional, physical)


def _as_children_map(
    hierarchy: "Dict[str, Set[str]] | List[Edge]",
) -> Dict[str, Set[str]]:
    if isinstance(hierarchy, dict):
        return hierarchy
    children: Dict[str, Set[str]] = {}
    for parent, child in hierarchy:
        children.setdefault(parent, set()).add(child)
    return children


def _isomorphism_conflicts(
    functional: "Dict[str, Set[str]] | List[Edge]",
    physical: "Dict[str, Set[str]] | List[Edge]",
) -> List[str]:
    func = _as_children_map(functional)
    phys = _as_children_map(physical)
    conflicts: List[str] = []
    for parent in sorted(set(func) & set(phys)):
        if func[parent] != phys[parent]:
            only_func = sorted(func[parent] - phys[parent])
            only_phys = sorted(phys[parent] - func[parent])
            conflicts.append(
                f"cell {parent!r}: schematic children {only_func} vs "
                f"layout children {only_phys}"
            )
    return conflicts


@dataclasses.dataclass(frozen=True)
class HierarchySubmission:
    """Result of one manual hierarchy submission."""

    edges: Tuple[Edge, ...]
    desktop_interactions: int
    conflicts: Tuple[str, ...]
    accepted: bool


class HierarchyManager:
    """Extracts, checks and submits hierarchies for the hybrid framework.

    ``jcf3_strict`` (default True) reproduces JCF 3.0: non-isomorphic
    hierarchies raise :class:`NonIsomorphicHierarchyError`.  Setting it
    False simulates the future release the paper announces in Section 3.3
    ("This feature will be supported in future releases of JCF"): the
    union of both hierarchies is accepted.
    """

    def __init__(
        self,
        desktop: JCFDesktop,
        jcf3_strict: bool = True,
        procedural_interface: bool = False,
    ) -> None:
        self._desktop = desktop
        self.jcf3_strict = jcf3_strict
        #: Section 3.3 future work: "a JCF procedural interface which
        #: might be used by the design tools to pass the hierarchy
        #: information to JCF.  However, JCF release 3.0 does not support
        #: this feature."  Off by default, faithfully.
        self.procedural_interface = procedural_interface
        #: rejected submissions, for the E33 experiment
        self.rejections = 0
        #: edges declared through the procedural interface (E33 ablation)
        self.procedural_edges = 0
        self.submissions: List[HierarchySubmission] = []

    def submit_from_library(
        self,
        user: str,
        project: JCFProject,
        library: Library,
    ) -> HierarchySubmission:
        """Extract both hierarchies and submit them manually via the desktop.

        This must happen *before* design work starts — "first the complete
        design hierarchy information has to be defined and passed to JCF"
        (Section 2.3).
        """
        functional_map = extract_children_map(library, "schematic")
        physical_map = extract_children_map(library, "layout")
        functional = _edges_of(functional_map)
        physical = _edges_of(physical_map)
        conflicts = _isomorphism_conflicts(functional_map, physical_map)
        if conflicts and self.jcf3_strict:
            self.rejections += 1
            submission = HierarchySubmission(
                edges=(),
                desktop_interactions=0,
                conflicts=tuple(conflicts),
                accepted=False,
            )
            self.submissions.append(submission)
            raise NonIsomorphicHierarchyError(
                "JCF 3.0 does not support non-isomorphic hierarchies; "
                + "; ".join(conflicts)
            )
        edges = sorted(set(functional) | set(physical))
        self._require_cells_exist(project, edges)
        interactions = self._desktop.submit_hierarchy(user, project, edges)
        submission = HierarchySubmission(
            edges=tuple(edges),
            desktop_interactions=interactions,
            conflicts=tuple(conflicts),
            accepted=True,
        )
        self.submissions.append(submission)
        return submission

    def submit_procedurally(
        self, project: JCFProject, edges: List[Edge]
    ) -> int:
        """Design tools pass hierarchy information directly to JCF.

        This is the paper's Section 3.3 future work, enabled via
        ``procedural_interface=True``: no desktop dialogs, no designer
        interactions — the metadata updates are the only cost.  Edges
        whose child cell is not (yet) mapped into the project are skipped;
        the next bulk submission will pick them up.  Raises
        :class:`~repro.errors.HierarchyError` under JCF 3.0, which has no
        such interface.
        """
        if not self.procedural_interface:
            raise HierarchyError(
                "JCF release 3.0 does not support a procedural interface "
                "for hierarchy submission (Section 3.3); enable "
                "procedural_interface=True to simulate the future release"
            )
        declared = 0
        for parent_name, child_name in edges:
            parent = project.find_cell(parent_name)
            child = project.find_cell(child_name)
            if parent is None or child is None:
                continue
            if parent.has_component(child):
                continue
            parent.add_component(child)
            declared += 1
        self.procedural_edges += declared
        return declared

    def verify_against_library(
        self, project: JCFProject, library: Library
    ) -> List[str]:
        """Compare JCF CompOf metadata with the library's current files.

        Any drift (a designer added an instance without re-submitting)
        is a consistency finding — JCF can only "completely control the
        data consistency of versioned hierarchical designs" (Section 2.3)
        while its metadata matches the design files.
        """
        declared = set(self._desktop.declared_hierarchy(project))
        functional = set(extract_functional_hierarchy(library))
        physical = set(extract_physical_hierarchy(library))
        current = functional | physical
        problems = []
        for edge in sorted(current - declared):
            problems.append(
                f"edge {edge[0]}->{edge[1]} present in design files but "
                "not submitted to JCF"
            )
        for edge in sorted(declared - current):
            problems.append(
                f"edge {edge[0]}->{edge[1]} declared in JCF but absent "
                "from design files"
            )
        return problems

    def _require_cells_exist(
        self, project: JCFProject, edges: List[Edge]
    ) -> None:
        known = {cell.name for cell in project.cells()}
        missing = sorted(
            {name for edge in edges for name in edge} - known
        )
        if missing:
            raise HierarchyError(
                f"hierarchy references cells not yet mapped into project "
                f"{project.name!r}: {missing}"
            )
