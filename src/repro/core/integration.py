"""Integration levels.

The paper's introduction: JCF "supports three integration levels,
ranging from simple black-box integration up to very tight white-box
integration."  The three schematic/simulator/layout wrappers in
:mod:`repro.core.encapsulation` are the *white-box* end — they drive the
tool's own data model, lock its menus and pop consistency windows.  This
module supplies the other end: :class:`BlackBoxToolWrapper` runs an
opaque tool function on staged files.  The coupled bookkeeping (staging,
FMCAD checkin, OMS import, derivation recording) is identical; what a
black box *cannot* give you is menu guarding and in-tool consistency
windows — measurably weaker consistency, same management.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Optional, Tuple

from repro.core.consistency import ConsistencyGuard
from repro.core.encapsulation import _ToolWrapper
from repro.core.mapping import DataModelMapper
from repro.errors import EncapsulationError
from repro.fmcad.framework import FMCADFramework
from repro.fmcad.library import Library
from repro.jcf.framework import JCFFramework


class IntegrationLevel(enum.Enum):
    """How deeply a tool is integrated into the hybrid framework."""

    BLACK_BOX = "black_box"    # opaque executable on staged files
    GREY_BOX = "grey_box"      # session visible, menus guardable
    WHITE_BOX = "white_box"    # full data-model and UI integration


#: A black-box tool: inputs by viewtype -> (success, output bytes, details).
BlackBoxTool = Callable[
    [Dict[str, bytes]], Tuple[bool, Optional[bytes], str]
]


class BlackBoxToolWrapper(_ToolWrapper):
    """Encapsulate an arbitrary opaque tool as one JCF activity.

    The wrapper stages the activity's declared input viewtypes out of
    OMS, hands the bytes to *tool_fn*, and checks the result into both
    frameworks with full derivation recording — black-box integration
    with white-box design management.
    """

    INTEGRATION = IntegrationLevel.BLACK_BOX
    GUARD_MENUS = False

    def __init__(
        self,
        jcf: JCFFramework,
        fmcad: FMCADFramework,
        mapper: DataModelMapper,
        guard: ConsistencyGuard,
        activity_name: str,
        tool_name: str,
        output_viewtype: str,
        tool_fn: BlackBoxTool,
    ) -> None:
        super().__init__(jcf, fmcad, mapper, guard)
        self.ACTIVITY = activity_name
        self.TOOL = tool_name
        self.VIEWTYPE = output_viewtype
        self._tool_fn = tool_fn

    def _tool_step(
        self,
        session,
        library: Library,
        cell_name: str,
        needs,
        **_ignored,
    ) -> Tuple[bool, Optional[bytes], str]:
        inputs: Dict[str, bytes] = {}
        for version, data in needs:
            inputs[version.design_object.viewtype_name] = data
        try:
            success, output, details = self._tool_fn(inputs)
        except Exception as exc:
            raise EncapsulationError(
                f"black-box tool {self.TOOL!r} crashed: {exc}"
            ) from exc
        return success, output, details


def guarded_menu_count(session) -> int:
    """How many menu points the guard holds locked in *session*.

    Black-box tools expose no menus, so the count is zero — the
    integration-level ablation's measurable consistency gap.
    """
    return sum(
        1 for name in session.menu_names() if session.menu(name).locked
    )
