"""The Table 1 data-model mapping.

Section 2.3 fixes the correspondence between the two information models:

    ===============  ==================
    JCF object       FMCAD object
    ===============  ==================
    Project          Library
    CellVersion      Cell
    ViewType         View
    DesignObject     Cellview
    DesignObjectVersion  Cellview Version
    ===============  ==================

``DataModelMapper`` applies the mapping in both directions: importing an
FMCAD library populates a JCF project (cells, one cell version per FMCAD
cell, a working variant, design objects per cellview, design-object
versions per cellview version, payloads copied into OMS), and exporting
regenerates an FMCAD library from a project.  Identities are recorded as
FMCAD properties (``jcf_oid``) so the coupling can correlate both sides.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.errors import MappingError
from repro.fmcad.framework import FMCADFramework
from repro.fmcad.library import Library
from repro.jcf.framework import JCFFramework
from repro.jcf.project import (
    JCFCellVersion,
    JCFDesignObject,
    JCFProject,
    JCFVariant,
)

#: The verbatim Table 1 rows.
TABLE1_MAPPING: Tuple[Tuple[str, str], ...] = (
    ("Project", "Library"),
    ("CellVersion", "Cell"),
    ("ViewType", "View"),
    ("DesignObject", "Cellview"),
    ("DesignObjectVersion", "Cellview Version"),
)

#: Name of the variant that carries imported FMCAD data.
WORKING_VARIANT = "fmcad_main"


@dataclasses.dataclass(frozen=True)
class MappingRecord:
    """One established correspondence between a JCF and an FMCAD object."""

    jcf_kind: str
    jcf_oid: str
    fmcad_kind: str
    fmcad_name: str


class DataModelMapper:
    """Applies the Table 1 mapping between one JCF and one FMCAD instance."""

    def __init__(self, jcf: JCFFramework, fmcad: FMCADFramework) -> None:
        self.jcf = jcf
        self.fmcad = fmcad
        self.records: List[MappingRecord] = []

    # -- the static table ---------------------------------------------------

    @staticmethod
    def mapping_table() -> List[Tuple[str, str]]:
        """Table 1 as (JCF object, FMCAD object) rows."""
        return list(TABLE1_MAPPING)

    # -- import: FMCAD library -> JCF project (slave feeds master) -------------

    def import_library(
        self,
        library: Library,
        user: str,
        project_name: Optional[str] = None,
    ) -> JCFProject:
        """Populate a JCF project from an FMCAD library per Table 1.

        Every FMCAD cell becomes a JCF cell with one cell version, every
        cellview a design object inside the working variant, and every
        cellview version a design-object version whose payload is the
        version file's contents (copied into OMS through staging costs).
        """
        name = project_name or library.name
        if self.jcf.desktop.find_project(name) is not None:
            raise MappingError(
                f"project {name!r} already exists; re-import is not "
                "supported — use synchronisation instead"
            )
        project = self.jcf.desktop.create_project(user, name)
        self._record("Project", project.oid, "Library", library.name)
        for cell in library.cells():
            self._import_cell(project, library, cell.name, user)
        return project

    def _import_cell(
        self, project: JCFProject, library: Library, cell_name: str, user: str
    ) -> JCFCellVersion:
        jcf_cell = self.jcf.desktop.create_cell(user, project, cell_name)
        cell_version = jcf_cell.create_version()
        self._record(
            "CellVersion", cell_version.oid, "Cell", cell_name
        )
        variant = cell_version.create_variant(WORKING_VARIANT)
        fmcad_cell = library.cell(cell_name)
        for cellview in fmcad_cell.cellviews():
            self._import_cellview(variant, library, cellview)
        return cell_version

    def _import_cellview(self, variant: JCFVariant, library: Library, cellview) -> JCFDesignObject:
        viewtype_name = cellview.viewtype.name
        self._record(
            "ViewType",
            self._viewtype_oid(viewtype_name),
            "View",
            cellview.view.name,
        )
        dobj = variant.create_design_object(cellview.name, viewtype_name)
        self._record("DesignObject", dobj.oid, "Cellview", cellview.name)
        for version in cellview.versions:
            data = version.read_data()
            dov = dobj.new_version(
                data, directory_path=str(version.path)
            )
            # payload crossed the OMS boundary: charge the staging copy
            self.jcf.db.clock.charge_copy(len(data), files=1)
            self._record(
                "DesignObjectVersion",
                dov.oid,
                "Cellview Version",
                f"{cellview.name}@v{version.number}",
            )
            version.properties.set("jcf_oid", dov.oid)
        cellview.properties.set("jcf_oid", dobj.oid)
        return dobj

    def _viewtype_oid(self, name: str) -> str:
        from repro.jcf.project import find_or_create_viewtype

        return find_or_create_viewtype(self.jcf.db, name).oid

    # -- export: JCF project -> FMCAD library (master materialises slave) ----------

    def export_project(
        self, project: JCFProject, library_name: Optional[str] = None
    ) -> Library:
        """Regenerate an FMCAD library from a JCF project per Table 1.

        Only the working variant of each cell's **latest** cell version is
        exported — FMCAD's one-level model cannot hold more (Section 3.2).
        """
        name = library_name or f"{project.name}_export"
        library = self.fmcad.create_library(name)
        for jcf_cell in project.cells():
            cell_version = jcf_cell.latest_version()
            if cell_version is None:
                continue
            library.create_cell(jcf_cell.name)
            for variant in cell_version.variants():
                if variant.name != WORKING_VARIANT:
                    continue  # one-level model: other variants are dropped
                for dobj in variant.design_objects():
                    cellview = library.create_cellview(
                        jcf_cell.name, dobj.viewtype_name
                    )
                    for dov in dobj.versions():
                        payload = self.jcf.db.get(dov.oid).payload or b""
                        self.jcf.db.clock.charge_copy(len(payload), files=1)
                        library.write_version(
                            cellview, payload, author="jcf-export"
                        )
        return library

    def export_configuration(
        self,
        configuration,
        library: Library,
        name: Optional[str] = None,
    ):
        """Mirror a JCF configuration as an FMCAD configuration.

        Figures 1 and 2 both carry configuration objects; the mapping
        between them follows from Table 1's version row: each pinned
        DesignObjectVersion resolves — via its ``jcf_oid`` cross-tag — to
        the cellview version that mirrors it, which is then pinned in a
        new :class:`~repro.fmcad.configurations.FMCADConfiguration`.
        """
        from repro.fmcad.configurations import FMCADConfiguration

        fmcad_config = FMCADConfiguration(
            name or configuration.name, library
        )
        for version in configuration.pinned_versions():
            located = self._locate_fmcad_version(library, version.oid)
            if located is None:
                raise MappingError(
                    f"pinned version {version.oid} has no FMCAD mirror in "
                    f"library {library.name!r} (created outside the "
                    "coupling?)"
                )
            cellview, fmcad_version = located
            fmcad_config.add(
                cellview.cell_name, cellview.view.name,
                fmcad_version.number,
            )
        return fmcad_config

    @staticmethod
    def _locate_fmcad_version(library: Library, jcf_oid: str):
        for cellview in library.cellviews():
            for version in cellview.versions:
                if version.properties.get("jcf_oid") == jcf_oid:
                    return cellview, version
        return None

    # -- correlation ---------------------------------------------------------------

    def _record(
        self, jcf_kind: str, jcf_oid: str, fmcad_kind: str, fmcad_name: str
    ) -> None:
        record = MappingRecord(jcf_kind, jcf_oid, fmcad_kind, fmcad_name)
        if record not in self.records:
            self.records.append(record)

    def records_of_kind(self, jcf_kind: str) -> List[MappingRecord]:
        return [r for r in self.records if r.jcf_kind == jcf_kind]

    def jcf_oid_for(
        self, fmcad_kind: str, fmcad_name: str
    ) -> Optional[str]:
        for record in self.records:
            if record.fmcad_kind == fmcad_kind and record.fmcad_name == fmcad_name:
                return record.jcf_oid
        return None

    def coverage(self) -> Dict[str, int]:
        """How many correspondences exist per Table 1 row (TAB1 bench)."""
        return {
            jcf_kind: len(self.records_of_kind(jcf_kind))
            for jcf_kind, _ in TABLE1_MAPPING
        }
