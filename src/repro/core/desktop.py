"""The combined user-interface surface of the hybrid framework.

Section 3.4: "the designer has to work with both the FMCAD and JCF user
interface ... the user has to cope with an extra user interface."  The
combined desktop makes that burden measurable: every entered UI context
and every switch between contexts is counted and charged simulated time,
and per-task reports feed the E34 benchmark.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set

from repro.clock import SimClock

#: Canonical context names.
JCF_DESKTOP = "jcf_desktop"
FMCAD_SCHEMATIC = "fmcad:schematic_editor"
FMCAD_LAYOUT = "fmcad:layout_editor"
FMCAD_SIMULATOR = "fmcad:digital_simulator"


@dataclasses.dataclass
class TaskUIReport:
    """UI accounting for one scripted designer task."""

    task_name: str
    contexts_used: Set[str] = dataclasses.field(default_factory=set)
    context_switches: int = 0
    interactions: int = 0

    @property
    def distinct_contexts(self) -> int:
        return len(self.contexts_used)


class CombinedDesktop:
    """Tracks which user interface the designer currently faces."""

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self._current: Optional[str] = None
        self._active_task: Optional[TaskUIReport] = None
        self.reports: List[TaskUIReport] = []

    # -- task scoping -----------------------------------------------------------

    def begin_task(self, task_name: str) -> TaskUIReport:
        """Start accounting a designer task; nested tasks are not allowed."""
        if self._active_task is not None:
            raise RuntimeError(
                f"task {self._active_task.task_name!r} is still active"
            )
        self._active_task = TaskUIReport(task_name=task_name)
        self._current = None  # the designer sits down fresh
        return self._active_task

    def end_task(self) -> TaskUIReport:
        if self._active_task is None:
            raise RuntimeError("no active task")
        report = self._active_task
        self._active_task = None
        self.reports.append(report)
        return report

    # -- context tracking -----------------------------------------------------------

    def enter(self, context: str) -> None:
        """The designer turns to the user interface named *context*."""
        if self._active_task is None:
            raise RuntimeError("enter() outside a task")
        self._active_task.contexts_used.add(context)
        if self._current is not None and self._current != context:
            self._active_task.context_switches += 1
            self.clock.charge_ui_context_switch()
        self._current = context

    def interact(self, count: int = 1) -> None:
        """The designer performs *count* interactions in the current UI."""
        if self._active_task is None:
            raise RuntimeError("interact() outside a task")
        if self._current is None:
            raise RuntimeError("interact() before entering a context")
        self._active_task.interactions += count
        self.clock.charge_ui(count)

    @property
    def current_context(self) -> Optional[str]:
        return self._current

    # -- summary -----------------------------------------------------------------------

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-task UI numbers, keyed by task name."""
        return {
            report.task_name: {
                "contexts": report.distinct_contexts,
                "switches": report.context_switches,
                "interactions": report.interactions,
            }
            for report in self.reports
        }
