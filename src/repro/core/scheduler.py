"""Dependency-aware parallel execution of coupled tool runs.

The 1995 coupling ran one tool at a time; a design team does not.  This
module schedules a *batch* of pending coupled runs — across variants,
cells and designers — onto a worker pool:

1. **Conflict/dependency graph.**  Two runs conflict when they target
   the same ``(library, cell)`` — the flow chain: schematic entry, then
   simulation, then layout of one cell must execute in batch order — or
   when one run's declared reads intersect another's writes (a
   simulation reading a subcell another run is editing).  Earlier batch
   index wins: the edge always points forward.
2. **Waves.**  Longest-path levelling of that DAG yields waves of
   mutually independent runs.  Each wave executes concurrently on a
   :class:`~concurrent.futures.ThreadPoolExecutor`; conflicting runs
   simply sit in later waves.
3. **Determinism.**  Every run's snapshot-visible work happens inside
   its two :mod:`repro.core.gates` ordered sections, executed in fixed
   turn order per wave (turn order == pool submission order, which a
   FIFO executor dequeues in order — that equality is what makes the
   turnstiles deadlock-free when workers < wave size).  Given the same
   batch and ``seed``, ``workers=1`` and ``workers=8`` produce
   byte-identical OMS snapshots; the speedup comes from overlapping the
   unordered middles (staging I/O and the tool step itself).
4. **Isolation.**  Each run gets a private staging sandbox (no file-name
   collisions, schedule-independent copy-on-write behaviour) and takes
   its declared read/write keys on the database's
   :class:`~repro.oms.locks.LockManager` — non-blocking, because the
   wave construction already serialised every declared conflict; a
   contended lock means an undeclared one, and the run is *deferred*
   rather than racing it.
5. **Group-commit.**  Each wave's metadata transactions coalesce into
   one OMS flush (:meth:`~repro.oms.database.OMSDatabase.group_commit`).
6. **Accounting.**  Each run charges its simulated cost to a private
   clock lane starting at the wave's start time; after the wave the
   master clock advances to the latest lane end.  The batch therefore
   reports *critical-path makespan*, while per-category totals still sum
   every run's resource use.

A run that raises :class:`~repro.faults.CrashFault` poisons its cell:
later runs on the same ``(library, cell)`` are *blocked* (skipped), the
sandbox is left on disk for :meth:`CouplingRecovery.recover`, and the
rest of the batch proceeds.
"""

from __future__ import annotations

import dataclasses
import random
import time
from concurrent.futures import ThreadPoolExecutor, wait
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core import gates
from repro.core.encapsulation import ToolRunResult
from repro.errors import EncapsulationError, LockContentionError
from repro.faults import CrashFault

#: wrapper attribute on HybridFramework per schedulable activity
ACTIVITIES = ("schematic_entry", "digital_simulation", "layout_entry")

#: outcome states of one scheduled run
RUN_OK = "ok"                # wrapper returned a ToolRunResult
RUN_FAILED = "failed"        # wrapper raised an ordinary exception
RUN_CRASHED = "crashed"      # wrapper raised CrashFault (needs recovery)
RUN_DEFERRED = "deferred"    # undeclared lock conflict; never executed
RUN_BLOCKED = "blocked"      # an earlier run on the same cell crashed/deferred


@dataclasses.dataclass
class RunRequest:
    """One pending coupled run in a batch.

    ``reads`` declares extra cells this run reads beyond its own target
    — e.g. the subcells a simulation netlists through dynamic binding —
    as ``(library_name, cell_name)`` pairs.  The run's own target cell
    is always its write set.
    """

    user: str
    project: Any           # JCFProject
    library: Any           # fmcad Library
    cell_name: str
    activity: str          # one of ACTIVITIES
    kwargs: Dict[str, Any] = dataclasses.field(default_factory=dict)
    reads: Tuple[Tuple[str, str], ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        if self.activity not in ACTIVITIES:
            raise EncapsulationError(
                f"cannot schedule activity {self.activity!r}; "
                f"schedulable activities are {ACTIVITIES}"
            )
        if not self.label:
            self.label = (
                f"{self.activity}:{self.library.name}/{self.cell_name}"
            )

    @property
    def write_key(self) -> str:
        return f"cell/{self.library.name}/{self.cell_name}"

    @property
    def read_keys(self) -> Tuple[str, ...]:
        return tuple(
            f"cell/{lib}/{cell}" for lib, cell in self.reads
        )


@dataclasses.dataclass
class RunOutcome:
    """What happened to one request of a scheduled batch."""

    index: int
    request: RunRequest
    status: str = RUN_BLOCKED
    wave: Optional[int] = None
    result: Optional[ToolRunResult] = None
    error: Optional[BaseException] = None
    lane_ms: float = 0.0    # this run's simulated duration

    @property
    def ok(self) -> bool:
        return self.status == RUN_OK


@dataclasses.dataclass
class BatchResult:
    """Outcome of one scheduled batch."""

    outcomes: List[RunOutcome]
    waves: List[List[int]]            # executed turn order per wave
    workers: int
    seed: int
    makespan_ms: float = 0.0          # simulated critical-path time
    summed_ms: float = 0.0            # sum of every run's lane time
    wall_s: float = 0.0               # real elapsed time
    lock_stats: Dict[str, int] = dataclasses.field(default_factory=dict)
    commit_stats: Dict[str, int] = dataclasses.field(default_factory=dict)

    def by_status(self, status: str) -> List[RunOutcome]:
        return [o for o in self.outcomes if o.status == status]

    @property
    def succeeded(self) -> List[RunOutcome]:
        return self.by_status(RUN_OK)

    def raise_first_error(self) -> None:
        """Re-raise the first failure (for callers that want fail-fast)."""
        for outcome in self.outcomes:
            if outcome.error is not None:
                raise outcome.error


class BatchScheduler:
    """Runs batches of coupled runs for one :class:`HybridFramework`."""

    def __init__(
        self,
        hybrid,
        workers: int = 4,
        seed: int = 0,
        commit_scope: str = "",
        sandbox_prefix: str = "",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.hybrid = hybrid
        self.workers = workers
        self.seed = seed
        #: commit-group scope this batch's waves open; the design server
        #: gives each shard its own scope so shard batches may run
        #: concurrently, each coalescing its own wave of commits
        self.commit_scope = commit_scope
        #: prepended to per-run staging sandbox names so concurrent
        #: batches never collide on ``run_NNN`` directories
        self.sandbox_prefix = sandbox_prefix
        self.clock = hybrid.clock
        self.db = hybrid.jcf.db

    # -- graph construction ----------------------------------------------------

    @staticmethod
    def dependency_edges(
        requests: Sequence[RunRequest],
    ) -> List[Tuple[int, int]]:
        """Forward edges (i -> j, i < j) between conflicting requests."""
        edges: List[Tuple[int, int]] = []
        for j, later in enumerate(requests):
            later_rw = {later.write_key, *later.read_keys}
            for i in range(j):
                earlier = requests[i]
                if (
                    earlier.write_key == later.write_key
                    or earlier.write_key in later_rw
                    or later.write_key in earlier.read_keys
                ):
                    edges.append((i, j))
        return edges

    @staticmethod
    def build_waves(
        requests: Sequence[RunRequest],
    ) -> List[List[int]]:
        """Longest-path levelling: wave k holds runs whose deepest
        dependency chain has length k.  Within a wave, batch order."""
        edges = BatchScheduler.dependency_edges(requests)
        level = [0] * len(requests)
        for i, j in edges:  # edges go strictly forward: one pass suffices
            level[j] = max(level[j], level[i] + 1)
        waves: List[List[int]] = [[] for _ in range(max(level, default=-1) + 1)]
        for index, lvl in enumerate(level):
            waves[lvl].append(index)
        return waves

    # -- execution -------------------------------------------------------------

    def run(self, requests: Sequence[RunRequest]) -> BatchResult:
        requests = list(requests)
        outcomes = [
            RunOutcome(index=i, request=r) for i, r in enumerate(requests)
        ]
        result = BatchResult(
            outcomes=outcomes, waves=[], workers=self.workers, seed=self.seed
        )
        if not requests:
            return result

        rng = random.Random(self.seed)
        start_wall = time.perf_counter()
        start_ms = self.clock.now_ms
        summed_before = sum(self.clock.elapsed_by_category().values())
        #: write keys whose earlier run crashed or was deferred — later
        #: runs on them are skipped, not raced against wreckage
        poisoned: set = set()

        with ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="coupled-run",
        ) as pool:
            for wave_number, wave in enumerate(self.build_waves(requests)):
                executable = []
                for index in wave:
                    if requests[index].write_key in poisoned:
                        outcomes[index].status = RUN_BLOCKED
                        outcomes[index].wave = wave_number
                    else:
                        executable.append(index)
                if not executable:
                    result.waves.append([])
                    continue
                # the schedule seed permutes the wave's turn order; any
                # permutation yields a valid (and reproducible) schedule
                rng.shuffle(executable)
                result.waves.append(list(executable))
                self._run_wave(pool, wave_number, executable, requests, outcomes)
                for index in executable:
                    if outcomes[index].status in (RUN_CRASHED, RUN_DEFERRED):
                        poisoned.add(requests[index].write_key)

        result.wall_s = time.perf_counter() - start_wall
        result.makespan_ms = self.clock.now_ms - start_ms
        result.summed_ms = (
            sum(self.clock.elapsed_by_category().values()) - summed_before
        )
        result.lock_stats = self.db.locks.stats()
        result.commit_stats = {
            "commit_count": self.db.commit_count,
            "flush_count": self.db.flush_count,
            "coalesced_commits": self.db.coalesced_commits,
        }
        return result

    def _run_wave(
        self,
        pool: ThreadPoolExecutor,
        wave_number: int,
        order: List[int],
        requests: Sequence[RunRequest],
        outcomes: List[RunOutcome],
    ) -> None:
        """Execute one wave concurrently; returns after the barrier."""
        wave_start = self.clock.now_ms
        open_ts = gates.Turnstile(f"wave{wave_number}.open", len(order))
        commit_ts = gates.Turnstile(f"wave{wave_number}.commit", len(order))
        lanes = []
        with self.db.group_commit(self.commit_scope):
            futures = []
            for turn, index in enumerate(order):
                lane = self.clock.open_lane(
                    f"run{index}", start_ms=wave_start
                )
                lanes.append(lane)
                gate = gates.RunGate((open_ts, commit_ts), turn)
                outcomes[index].wave = wave_number
                # submission order == turn order: the FIFO pool dequeues
                # lower turns first, so a blocked turn always has its
                # predecessor already running (no turnstile deadlock)
                futures.append(
                    pool.submit(
                        self._execute,
                        requests[index], gate, lane, outcomes[index],
                    )
                )
            wait(futures)
        for future in futures:
            # _execute captures every run-level exception in its outcome;
            # anything escaping the worker is a scheduler bug — surface it
            exc = future.exception()
            if exc is not None:
                raise exc
        if lanes:
            self.clock.advance_to(max(lane.now_ms for lane in lanes))

    def _execute(
        self,
        request: RunRequest,
        gate: gates.RunGate,
        lane,
        outcome: RunOutcome,
    ) -> RunOutcome:
        """Worker body for one run (runs on a pool thread)."""
        sandbox_name = f"{self.sandbox_prefix}run_{outcome.index:03d}"
        try:
            acquisition = self.db.locks.acquire(
                read=request.read_keys,
                write=(request.write_key,),
                blocking=False,
            )
        except LockContentionError as exc:
            # an undeclared conflict slipped past the wave construction;
            # refusing to race it keeps the committed state serialisable
            outcome.status = RUN_DEFERRED
            outcome.error = exc
            gate.abandon()
            return outcome
        try:
            with self.db.commit_scope(self.commit_scope), \
                    gates.install(gate), self.clock.use_lane(lane), \
                    self.hybrid.jcf.staging_sandbox(sandbox_name) as sandbox:
                try:
                    wrapper = getattr(self.hybrid, request.activity)
                    outcome.result = wrapper.run(
                        request.user,
                        request.project,
                        request.library,
                        request.cell_name,
                        **request.kwargs,
                    )
                    outcome.status = RUN_OK
                except CrashFault as exc:
                    outcome.status = RUN_CRASHED
                    outcome.error = exc
                except Exception as exc:
                    outcome.status = RUN_FAILED
                    outcome.error = exc
        finally:
            # any turn the run never reached must still pass, or the
            # rest of the wave waits forever behind it
            gate.abandon()
            acquisition.release()
        outcome.lane_ms = lane.elapsed_ms
        if outcome.status != RUN_CRASHED:
            # a live run cleans its sandbox; a crashed one leaves its
            # files on disk for the audit to flag and recover() to sweep
            sandbox.clear()
            try:
                sandbox.root.rmdir()
            except OSError:  # pragma: no cover - unexpected leftovers
                pass
        return outcome
