"""Design-data exchange archives.

[Seep94a] ("Basic Requirements for an Efficient Inter-Framework-
Communication", by the same authors) motivates moving design data between
framework islands.  This module packages a JCF project into a portable
archive — a tar file with a JSON manifest plus one member per
design-object version — and unpacks such archives into a fresh project,
so two hybrid installations can exchange designs without sharing a
database.

The archive intentionally carries the *working-variant* view only (the
same one-level restriction as a Table 1 export): versions, hierarchy
metadata and payload bytes survive; foreign variants and execution
history do not.
"""

from __future__ import annotations

import io
import json
import pathlib
import tarfile
from typing import Dict, List, Optional, Tuple

from repro.core.mapping import WORKING_VARIANT
from repro.errors import CouplingError
from repro.jcf.framework import JCFFramework
from repro.jcf.project import JCFProject

MANIFEST_NAME = "manifest.json"
FORMAT = "repro-exchange-1"


class ExchangeError(CouplingError):
    """An archive could not be written or read."""


def _manifest_for(project: JCFProject, desktop) -> Dict:
    cells = []
    for cell in project.cells():
        cell_version = cell.latest_version()
        objects = []
        if cell_version is not None:
            for variant in cell_version.variants():
                if variant.name != WORKING_VARIANT:
                    continue
                for dobj in variant.design_objects():
                    objects.append({
                        "name": dobj.name,
                        "viewtype": dobj.viewtype_name,
                        "versions": [v.number for v in dobj.versions()],
                    })
        cells.append({"name": cell.name, "objects": objects})
    return {
        "format": FORMAT,
        "project": project.name,
        "cells": cells,
        "hierarchy": [
            list(edge) for edge in desktop.declared_hierarchy(project)
        ],
    }


def _member_name(cell: str, dobj: str, number: int) -> str:
    safe = dobj.replace("/", "__")
    return f"data/{cell}/{safe}/v{number:04d}.bin"


def export_archive(
    jcf: JCFFramework,
    project: JCFProject,
    path: pathlib.Path,
) -> pathlib.Path:
    """Write *project* (working variants, all versions) to a tar archive.

    Payloads leave OMS through the staging area, so the export pays the
    usual copy costs — an inter-framework transfer is design-data I/O.
    """
    path = pathlib.Path(path)
    manifest = _manifest_for(project, jcf.desktop)
    with tarfile.open(path, "w") as archive:
        blob = json.dumps(manifest, indent=1, sort_keys=True).encode()
        info = tarfile.TarInfo(MANIFEST_NAME)
        info.size = len(blob)
        archive.addfile(info, io.BytesIO(blob))
        for cell in project.cells():
            cell_version = cell.latest_version()
            if cell_version is None:
                continue
            for variant in cell_version.variants():
                if variant.name != WORKING_VARIANT:
                    continue
                for dobj in variant.design_objects():
                    for version in dobj.versions():
                        staged = jcf.staging.export_object(version.oid)
                        payload = staged.path.read_bytes()
                        jcf.staging.release(version.oid)
                        member = tarfile.TarInfo(
                            _member_name(
                                cell.name, dobj.name, version.number
                            )
                        )
                        member.size = len(payload)
                        archive.addfile(member, io.BytesIO(payload))
    return path


def read_manifest(path: pathlib.Path) -> Dict:
    """Read and validate an archive's manifest."""
    try:
        with tarfile.open(path, "r") as archive:
            member = archive.extractfile(MANIFEST_NAME)
            if member is None:
                raise ExchangeError(f"{path}: missing {MANIFEST_NAME}")
            manifest = json.loads(member.read().decode("utf-8"))
    except (tarfile.TarError, json.JSONDecodeError, KeyError) as exc:
        raise ExchangeError(f"unreadable archive {path}: {exc}") from exc
    if manifest.get("format") != FORMAT:
        raise ExchangeError(
            f"{path}: not an exchange archive "
            f"(format={manifest.get('format')!r})"
        )
    return manifest


def import_archive(
    jcf: JCFFramework,
    path: pathlib.Path,
    user: str,
    project_name: Optional[str] = None,
) -> JCFProject:
    """Unpack an exchange archive into a fresh project of *jcf*.

    Recreates cells, the working variant with all design-object versions
    (payloads imported into OMS), and the CompOf hierarchy metadata.
    """
    manifest = read_manifest(path)
    name = project_name or manifest["project"]
    if jcf.desktop.find_project(name) is not None:
        raise ExchangeError(
            f"project {name!r} already exists; pass a different "
            "project_name"
        )
    project = jcf.desktop.create_project(user, name)
    with tarfile.open(path, "r") as archive:
        for cell_doc in manifest["cells"]:
            cell = project.create_cell(cell_doc["name"])
            cell_version = cell.create_version()
            variant = cell_version.create_variant(WORKING_VARIANT)
            for obj_doc in cell_doc["objects"]:
                dobj = variant.create_design_object(
                    obj_doc["name"], obj_doc["viewtype"]
                )
                for number in obj_doc["versions"]:
                    member_name = _member_name(
                        cell_doc["name"], obj_doc["name"], number
                    )
                    member = archive.extractfile(member_name)
                    if member is None:
                        raise ExchangeError(
                            f"{path}: missing member {member_name}"
                        )
                    payload = member.read()
                    version = dobj.new_version(payload)
                    # imported data crossed the OMS boundary
                    jcf.clock.charge_copy(len(payload), files=1)
        edges: List[Tuple[str, str]] = [
            (parent, child) for parent, child in manifest["hierarchy"]
        ]
        if edges:
            jcf.desktop.submit_hierarchy(user, project, edges)
    return project
