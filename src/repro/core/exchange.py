"""Design-data exchange archives.

[Seep94a] ("Basic Requirements for an Efficient Inter-Framework-
Communication", by the same authors) motivates moving design data between
framework islands.  This module packages a JCF project into a portable
archive — a tar file with a JSON manifest plus one member per *unique
payload* — and unpacks such archives into a fresh project, so two hybrid
installations can exchange designs without sharing a database.

Format 2 is content-addressed: every manifest version entry carries the
payload digest, and payload bytes live under ``data/blobs/<digest>.bin``
exactly once no matter how many versions share them.  A version-dense
project where most versions are unchanged re-checkins therefore ships a
fraction of the naive bytes, and the import side re-interns each unique
payload once.

The archive intentionally carries the *working-variant* view only (the
same one-level restriction as a Table 1 export): versions, hierarchy
metadata and payload bytes survive; foreign variants and execution
history do not.
"""

from __future__ import annotations

import io
import json
import pathlib
import tarfile
from typing import Dict, List, Optional, Tuple

from repro.core.mapping import WORKING_VARIANT
from repro.errors import CouplingError
from repro.faults import CrashFault, fault_point, with_retries
from repro.jcf.framework import JCFFramework
from repro.jcf.project import JCFProject
from repro.oms import durable

MANIFEST_NAME = "manifest.json"
FORMAT = "repro-exchange-2"


class ExchangeError(CouplingError):
    """An archive could not be written or read."""


def _working_design_objects(project: JCFProject):
    """Yield (cell, design object) pairs of every working variant."""
    for cell in project.cells():
        cell_version = cell.latest_version()
        if cell_version is None:
            continue
        for variant in cell_version.variants():
            if variant.name != WORKING_VARIANT:
                continue
            for dobj in variant.design_objects():
                yield cell, dobj


def _manifest_for(project: JCFProject, desktop) -> Dict:
    cells: Dict[str, List[Dict]] = {cell.name: [] for cell in project.cells()}
    for cell, dobj in _working_design_objects(project):
        cells[cell.name].append({
            "name": dobj.name,
            "viewtype": dobj.viewtype_name,
            "versions": [
                {"number": v.number, "digest": v.payload_digest or ""}
                for v in dobj.versions()
            ],
        })
    return {
        "format": FORMAT,
        "project": project.name,
        "cells": [
            {"name": name, "objects": objects}
            for name, objects in cells.items()
        ],
        "hierarchy": [
            list(edge) for edge in desktop.declared_hierarchy(project)
        ],
    }


def _blob_member_name(digest: str) -> str:
    return f"data/blobs/{digest}.bin"


def export_archive(
    jcf: JCFFramework,
    project: JCFProject,
    path: pathlib.Path,
) -> pathlib.Path:
    """Write *project* (working variants, all versions) to a tar archive.

    Payloads leave OMS through the staging area, so the export pays the
    usual copy costs — but only once per unique payload: versions sharing
    a digest share one archive member, and the O(1) digest probe decides
    that without materializing anything.
    """
    path = pathlib.Path(path)
    manifest = _manifest_for(project, jcf.desktop)
    # one representative version oid per unique payload digest
    representatives: Dict[str, str] = {}
    for _cell, dobj in _working_design_objects(project):
        for version in dobj.versions():
            digest = version.payload_digest
            if digest is not None and digest not in representatives:
                representatives[digest] = version.oid

    # the archive is built under a .partial name and renamed into place
    # only when complete, so a crash mid-write never leaves a truncated
    # tar masquerading as a finished archive
    partial = path.with_name(path.name + ".partial")

    def write_archive() -> None:
        with tarfile.open(partial, "w") as archive:
            blob = json.dumps(manifest, indent=1, sort_keys=True).encode()
            info = tarfile.TarInfo(MANIFEST_NAME)
            info.size = len(blob)
            archive.addfile(info, io.BytesIO(blob))
            digests = sorted(representatives)
            oids = [representatives[d] for d in digests]
            staged = jcf.staging.export_objects(oids, writable=False)
            for digest, staged_file in zip(digests, staged):
                payload = staged_file.path.read_bytes()
                jcf.staging.release(staged_file.oid)
                member = tarfile.TarInfo(_blob_member_name(digest))
                member.size = len(payload)
                archive.addfile(member, io.BytesIO(payload))
                fault_point("exchange.write")
        # flush the finished .partial to the platters before the rename
        # publishes it — an archive name must never point at bytes that
        # can still be lost to a power cut
        durable.fsync_file(partial)
        durable.replace(partial, path)

    try:
        with_retries(write_archive, clock=jcf.clock)
    except CrashFault:
        raise  # the .partial stays behind, as a real crash would leave it
    except Exception:
        partial.unlink(missing_ok=True)
        raise
    return path


def read_manifest(path: pathlib.Path) -> Dict:
    """Read and validate an archive's manifest."""
    try:
        with tarfile.open(path, "r") as archive:
            member = archive.extractfile(MANIFEST_NAME)
            if member is None:
                raise ExchangeError(f"{path}: missing {MANIFEST_NAME}")
            manifest = json.loads(member.read().decode("utf-8"))
    except (tarfile.TarError, json.JSONDecodeError, KeyError) as exc:
        raise ExchangeError(f"unreadable archive {path}: {exc}") from exc
    if manifest.get("format") != FORMAT:
        raise ExchangeError(
            f"{path}: not an exchange archive "
            f"(format={manifest.get('format')!r})"
        )
    return manifest


def import_archive(
    jcf: JCFFramework,
    path: pathlib.Path,
    user: str,
    project_name: Optional[str] = None,
) -> JCFProject:
    """Unpack an exchange archive into a fresh project of *jcf*.

    Recreates cells, the working variant with all design-object versions
    (payloads imported into OMS), and the CompOf hierarchy metadata.
    Each unique payload crosses the OMS boundary once; versions that
    share it are re-attached by digest, and consecutive versions of one
    object re-form delta chains as they are stored.
    """
    manifest = read_manifest(path)
    fault_point("exchange.before_import")
    name = project_name or manifest["project"]
    if jcf.desktop.find_project(name) is not None:
        raise ExchangeError(
            f"project {name!r} already exists; pass a different "
            "project_name"
        )
    payload_cache: Dict[str, bytes] = {}
    # the whole unpack is one OMS transaction: a failure partway leaves
    # no half-imported project behind, just the untouched archive
    with jcf.db.transaction():
        project = jcf.desktop.create_project(user, name)
        with tarfile.open(path, "r") as archive:

            def blob_payload(digest: str) -> bytes:
                if digest in payload_cache:
                    return payload_cache[digest]
                member_name = _blob_member_name(digest)
                member = archive.extractfile(member_name)
                if member is None:
                    raise ExchangeError(
                        f"{path}: missing member {member_name}"
                    )
                payload = member.read()
                # the unique bytes cross the OMS boundary exactly once
                jcf.clock.charge_copy(len(payload), files=1)
                payload_cache[digest] = payload
                return payload

            for cell_doc in manifest["cells"]:
                cell = project.create_cell(cell_doc["name"])
                cell_version = cell.create_version()
                variant = cell_version.create_variant(WORKING_VARIANT)
                for obj_doc in cell_doc["objects"]:
                    dobj = variant.create_design_object(
                        obj_doc["name"], obj_doc["viewtype"]
                    )
                    for entry in obj_doc["versions"]:
                        dobj.new_version(blob_payload(entry["digest"]))
            edges: List[Tuple[str, str]] = [
                (parent, child) for parent, child in manifest["hierarchy"]
            ]
            if edges:
                jcf.desktop.submit_hierarchy(user, project, edges)
    return project
