"""``HybridFramework`` — the wired-up JCF-FMCAD coupling.

The main entry point of the library.  One shared simulated clock drives
both frameworks; JCF is the master (design management, concurrency,
flows, configurations), FMCAD the slave (libraries, tools, extension
language, ITC).  See ``examples/quickstart.py`` for a guided tour.
"""

from __future__ import annotations

import os
import pathlib
from typing import Any, Dict, Optional

from repro.clock import SimClock
from repro.core.consistency import ConsistencyGuard
from repro.core.desktop import CombinedDesktop
from repro.core.encapsulation import (
    DigitalSimulatorWrapper,
    LayoutEntryWrapper,
    SchematicEntryWrapper,
    ToolRunResult,
)
from repro.core.hierarchy import HierarchyManager
from repro.core.mapping import DataModelMapper
from repro.core.recovery import CouplingRecovery, IntentJournal, RecoveryReport
from repro.core.scheduler import BatchResult, BatchScheduler, RunRequest
from repro.fmcad.framework import FMCADFramework
from repro.fmcad.library import Library
from repro.jcf.flows import FlowDef, standard_encapsulation_flow
from repro.jcf.framework import JCFFramework
from repro.jcf.project import JCFCellVersion, JCFProject


class HybridFramework:
    """One coupled JCF-FMCAD environment rooted at a directory.

    Parameters
    ----------
    root:
        Directory under which both frameworks keep their file trees.
    clock:
        Shared :class:`~repro.clock.SimClock`; a fresh one by default.
    jcf3_strict:
        Keep the JCF 3.0 restrictions (non-isomorphic hierarchies
        rejected).  Set False to simulate the paper's future release.
    enable_procedural_interface:
        Open the OMS procedural interface (the Section 3.6 ablation);
        JCF 3.0 keeps it closed.
    enable_hierarchy_procedural_interface:
        Let the design tools pass hierarchy information to JCF directly
        (the Section 3.3 future work) instead of relying on manual
        desktop submission.
    allow_cross_project_sharing:
        Permit CompOf references to cells of other projects (the Section
        3.1 future work); JCF 3.0 forbids them.
    """

    def __init__(
        self,
        root: pathlib.Path,
        clock: Optional[SimClock] = None,
        jcf3_strict: bool = True,
        enable_procedural_interface: bool = False,
        enable_hierarchy_procedural_interface: bool = False,
        allow_cross_project_sharing: bool = False,
        administrator: str = "admin",
    ) -> None:
        self.root = pathlib.Path(root)
        self.clock = clock or SimClock()
        self.jcf = JCFFramework(
            self.root / "jcf",
            clock=self.clock,
            administrator=administrator,
            enable_procedural_interface=enable_procedural_interface,
            allow_cross_project_sharing=allow_cross_project_sharing,
        )
        self.fmcad = FMCADFramework(self.root / "fmcad", clock=self.clock)
        self.mapper = DataModelMapper(self.jcf, self.fmcad)
        self.hierarchy = HierarchyManager(
            self.jcf.desktop,
            jcf3_strict=jcf3_strict,
            procedural_interface=enable_hierarchy_procedural_interface,
        )
        self.guard = ConsistencyGuard(
            self.jcf, self.fmcad, self.mapper, self.hierarchy
        )
        self.guard.install_itc_interceptor()
        self.desktop = CombinedDesktop(self.clock)
        self.schematic_entry = SchematicEntryWrapper(
            self.jcf, self.fmcad, self.mapper, self.guard
        )
        self.digital_simulation = DigitalSimulatorWrapper(
            self.jcf, self.fmcad, self.mapper, self.guard
        )
        self.layout_entry = LayoutEntryWrapper(
            self.jcf, self.fmcad, self.mapper, self.guard
        )
        self.intents = IntentJournal(self.jcf.db)
        self.recovery = CouplingRecovery(self.jcf, self.fmcad)

    # -- environment setup --------------------------------------------------------

    def setup_standard_flow(self, name: str = "jcf_fmcad_flow"):
        """Register the three-tool encapsulation flow of Section 2.4."""
        return self.jcf.register_flow(standard_encapsulation_flow(name))

    def register_flow(self, flow_def: FlowDef):
        return self.jcf.register_flow(flow_def)

    # -- library adoption (Table 1 + hierarchy submission) ---------------------------

    def adopt_library(
        self,
        user: str,
        library: Library,
        project_name: Optional[str] = None,
        submit_hierarchy: bool = True,
    ) -> JCFProject:
        """Bring an FMCAD library under JCF control.

        Applies the Table 1 mapping and then — before any design work —
        performs the manual hierarchy submission of Section 2.3.  With
        ``jcf3_strict`` a non-isomorphic library raises
        :class:`~repro.errors.NonIsomorphicHierarchyError` here.
        """
        project = self.mapper.import_library(library, user, project_name)
        if submit_hierarchy:
            self.hierarchy.submit_from_library(user, project, library)
        return project

    def prepare_cell(
        self,
        user: str,
        project: JCFProject,
        cell_name: str,
        flow_name: str = "jcf_fmcad_flow",
        team_name: Optional[str] = None,
    ) -> JCFCellVersion:
        """Attach flow (and team) to the cell's latest version, reserve it."""
        cell = project.cell(cell_name)
        cell_version = cell.latest_version()
        if cell_version is None:
            cell_version = cell.create_version()
        if cell_version.published:
            cell_version = cell.create_version()
        cell_version.attach_flow(self.jcf.flows.flow_object(flow_name))
        if team_name is not None:
            cell_version.attach_team(self.jcf.resources.team(team_name))
        from repro.core.mapping import WORKING_VARIANT

        if not any(
            v.name == WORKING_VARIANT for v in cell_version.variants()
        ):
            cell_version.create_variant(WORKING_VARIANT)
        self.jcf.desktop.reserve_cell_version(user, cell_version)
        return cell_version

    # -- coupled tool runs -------------------------------------------------------------

    def run_schematic_entry(
        self, user: str, project: JCFProject, library: Library,
        cell_name: str, edit_fn, force_early: bool = False,
    ) -> ToolRunResult:
        return self.schematic_entry.run(
            user, project, library, cell_name,
            force_early=force_early, edit_fn=edit_fn,
        )

    def run_simulation(
        self, user: str, project: JCFProject, library: Library,
        cell_name: str, testbench_fn, force_early: bool = False,
        grade_coverage: bool = False,
    ) -> ToolRunResult:
        return self.digital_simulation.run(
            user, project, library, cell_name,
            force_early=force_early, testbench_fn=testbench_fn,
            grade_coverage=grade_coverage,
        )

    def run_layout_entry(
        self, user: str, project: JCFProject, library: Library,
        cell_name: str, edit_fn, force_early: bool = False,
        drc_gate: bool = True,
    ) -> ToolRunResult:
        return self.layout_entry.run(
            user, project, library, cell_name,
            force_early=force_early, edit_fn=edit_fn, drc_gate=drc_gate,
        )

    # -- batched parallel runs ---------------------------------------------------------

    def run_many(
        self,
        requests,
        workers: int = 4,
        seed: int = 0,
    ) -> BatchResult:
        """Execute a batch of coupled runs on a worker pool.

        Builds the conflict/dependency graph over *requests* (a sequence
        of :class:`~repro.core.scheduler.RunRequest`), executes
        independent runs concurrently in waves, and returns a
        :class:`~repro.core.scheduler.BatchResult`.  Given the same batch
        and *seed*, the final OMS snapshot is byte-identical for any
        worker count — ``workers=1`` is the sequential baseline.
        """
        scheduler = BatchScheduler(self, workers=workers, seed=seed)
        return scheduler.run(requests)

    # -- persistence ----------------------------------------------------------------------

    SNAPSHOT_NAME = "jcf_snapshot.json"

    def save_state(self) -> pathlib.Path:
        """Persist everything needed to reopen this environment.

        FMCAD state already lives on disk (libraries, version files,
        ``.meta``, property sidecars); the JCF/OMS state is written as a
        snapshot file under the root.  Open ``.meta`` flushes are the
        caller's responsibility, exactly as they were the designer's.
        """
        path = self.root / self.SNAPSHOT_NAME
        # temp-file + atomic rename: a crash mid-save leaves the previous
        # snapshot intact instead of a torn file that poisons reopen()
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(self.jcf.save_snapshot())
        os.replace(tmp, path)
        return path

    @classmethod
    def reopen(
        cls,
        root: pathlib.Path,
        clock: Optional[SimClock] = None,
        jcf3_strict: bool = True,
        enable_hierarchy_procedural_interface: bool = False,
        administrator: str = "admin",
    ) -> "HybridFramework":
        """Restart a hybrid environment previously saved with
        :meth:`save_state`: restore the JCF snapshot, reopen every
        on-disk FMCAD library from its ``.meta``, rehydrate flows."""
        root = pathlib.Path(root)
        snapshot_path = root / cls.SNAPSHOT_NAME
        if not snapshot_path.exists():
            raise FileNotFoundError(
                f"no saved state at {snapshot_path}; call save_state() "
                "before reopening"
            )
        instance = cls.__new__(cls)
        instance.root = root
        instance.clock = clock or SimClock()
        instance.jcf = JCFFramework(
            root / "jcf",
            clock=instance.clock,
            administrator=administrator,
            snapshot=snapshot_path.read_bytes(),
        )
        instance.fmcad = FMCADFramework(
            root / "fmcad", clock=instance.clock
        )
        for library_name in instance.fmcad.known_library_names():
            instance.fmcad.open_library(library_name)
        instance.mapper = DataModelMapper(instance.jcf, instance.fmcad)
        instance.hierarchy = HierarchyManager(
            instance.jcf.desktop,
            jcf3_strict=jcf3_strict,
            procedural_interface=enable_hierarchy_procedural_interface,
        )
        instance.guard = ConsistencyGuard(
            instance.jcf, instance.fmcad, instance.mapper,
            instance.hierarchy,
        )
        instance.guard.install_itc_interceptor()
        instance.desktop = CombinedDesktop(instance.clock)
        instance.schematic_entry = SchematicEntryWrapper(
            instance.jcf, instance.fmcad, instance.mapper, instance.guard
        )
        instance.digital_simulation = DigitalSimulatorWrapper(
            instance.jcf, instance.fmcad, instance.mapper, instance.guard
        )
        instance.layout_entry = LayoutEntryWrapper(
            instance.jcf, instance.fmcad, instance.mapper, instance.guard
        )
        instance.intents = IntentJournal(instance.jcf.db)
        instance.recovery = CouplingRecovery(instance.jcf, instance.fmcad)
        # staged files from the previous process are a durable CoW cache:
        # re-adopt the ones that still match a live payload, leave true
        # crash leavings for recover() to reclaim
        instance.jcf.staging.adopt_existing()
        return instance

    # -- crash recovery ---------------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Repair the leavings of crashed coupled runs (see
        :mod:`repro.core.recovery`).  Run on a quiesced environment —
        typically right after :meth:`reopen`."""
        return self.recovery.recover()

    def audit(self):
        """Cross-framework crash-consistency audit; clean means healthy."""
        return self.guard.audit()

    # -- statistics ------------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "clock_ms": self.clock.now_ms,
            "by_category": self.clock.elapsed_by_category(),
            "jcf": self.jcf.stats(),
            "fmcad": self.fmcad.stats(),
            "mapping_coverage": self.mapper.coverage(),
            "hierarchy_rejections": self.hierarchy.rejections,
        }
