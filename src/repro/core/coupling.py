"""``HybridFramework`` — the wired-up JCF-FMCAD coupling.

The main entry point of the library.  One shared simulated clock drives
both frameworks; JCF is the master (design management, concurrency,
flows, configurations), FMCAD the slave (libraries, tools, extension
language, ITC).  See ``examples/quickstart.py`` for a guided tour.
"""

from __future__ import annotations

import os
import pathlib
from typing import Any, Dict, Optional

from repro.clock import SimClock
from repro.errors import SnapshotIntegrityError
from repro.core.consistency import ConsistencyGuard
from repro.core.desktop import CombinedDesktop
from repro.core.encapsulation import (
    DigitalSimulatorWrapper,
    LayoutEntryWrapper,
    SchematicEntryWrapper,
    ToolRunResult,
)
from repro.core.hierarchy import HierarchyManager
from repro.core.mapping import DataModelMapper
from repro.core.recovery import CouplingRecovery, IntentJournal, RecoveryReport
from repro.core.scheduler import BatchResult, BatchScheduler, RunRequest
from repro.fmcad.framework import FMCADFramework
from repro.fmcad.library import Library
from repro.jcf.durable_flows import DurableFlowOrchestrator
from repro.jcf.flow_queue import FlowQueue
from repro.jcf.flows import FlowDef, standard_encapsulation_flow
from repro.jcf.triggers import TriggerRegistry
from repro.jcf.framework import JCFFramework
from repro.jcf.project import JCFCellVersion, JCFProject
from repro.oms import durable
from repro.oms.readcache import DEFAULT_BUDGET_BYTES, MaterializationCache
from repro.oms.snapshot import verify_snapshot_bytes
from repro.oms.wal import WriteAheadLog

#: the WAL directory lives inside the JCF subtree, next to staging
WAL_DIR_NAME = "wal"


class HybridFramework:
    """One coupled JCF-FMCAD environment rooted at a directory.

    Parameters
    ----------
    root:
        Directory under which both frameworks keep their file trees.
    clock:
        Shared :class:`~repro.clock.SimClock`; a fresh one by default.
    jcf3_strict:
        Keep the JCF 3.0 restrictions (non-isomorphic hierarchies
        rejected).  Set False to simulate the paper's future release.
    enable_procedural_interface:
        Open the OMS procedural interface (the Section 3.6 ablation);
        JCF 3.0 keeps it closed.
    enable_hierarchy_procedural_interface:
        Let the design tools pass hierarchy information to JCF directly
        (the Section 3.3 future work) instead of relying on manual
        desktop submission.
    allow_cross_project_sharing:
        Permit CompOf references to cells of other projects (the Section
        3.1 future work); JCF 3.0 forbids them.
    persistence:
        ``"snapshot"`` (the paper-faithful whole-graph save the seed
        reproduced) or ``"wal"`` (write-ahead log + periodic compaction;
        commit durability cost is O(change set) — the ROADMAP item 2
        engineering fix).
    durability:
        ``"full"`` (fsync files and directories on every durable write),
        ``"relaxed"`` (same write sequence, fsyncs skipped) or ``None``
        to follow the process default (see :mod:`repro.oms.durable`).
    read_cache_bytes:
        Byte budget of the shared materialization cache serving verified
        payload and version reads.  ``None`` (default) consults the
        ``REPRO_READ_CACHE_BYTES`` environment knob and falls back to
        64 MiB; ``0`` disables the cache (zero-copy views stay on).
    """

    PERSISTENCE_MODES = ("snapshot", "wal")

    def __init__(
        self,
        root: pathlib.Path,
        clock: Optional[SimClock] = None,
        jcf3_strict: bool = True,
        enable_procedural_interface: bool = False,
        enable_hierarchy_procedural_interface: bool = False,
        allow_cross_project_sharing: bool = False,
        administrator: str = "admin",
        persistence: str = "snapshot",
        durability: Optional[str] = None,
        read_cache_bytes: Optional[int] = None,
    ) -> None:
        if persistence not in self.PERSISTENCE_MODES:
            raise ValueError(
                f"persistence must be one of {self.PERSISTENCE_MODES}: "
                f"{persistence!r}"
            )
        self.root = pathlib.Path(root)
        self.clock = clock or SimClock()
        self.persistence = persistence
        self.durability = durability
        wal = None
        if persistence == "wal":
            wal = WriteAheadLog(
                self.root / "jcf" / WAL_DIR_NAME, durability_mode=durability
            )
        self.jcf = JCFFramework(
            self.root / "jcf",
            clock=self.clock,
            administrator=administrator,
            enable_procedural_interface=enable_procedural_interface,
            allow_cross_project_sharing=allow_cross_project_sharing,
            wal=wal,
        )
        self.fmcad = FMCADFramework(self.root / "fmcad", clock=self.clock)
        self._wire_read_path(read_cache_bytes)
        self.mapper = DataModelMapper(self.jcf, self.fmcad)
        self.hierarchy = HierarchyManager(
            self.jcf.desktop,
            jcf3_strict=jcf3_strict,
            procedural_interface=enable_hierarchy_procedural_interface,
        )
        self.guard = ConsistencyGuard(
            self.jcf, self.fmcad, self.mapper, self.hierarchy
        )
        self.guard.install_itc_interceptor()
        self.desktop = CombinedDesktop(self.clock)
        self.schematic_entry = SchematicEntryWrapper(
            self.jcf, self.fmcad, self.mapper, self.guard
        )
        self.digital_simulation = DigitalSimulatorWrapper(
            self.jcf, self.fmcad, self.mapper, self.guard
        )
        self.layout_entry = LayoutEntryWrapper(
            self.jcf, self.fmcad, self.mapper, self.guard
        )
        self.intents = IntentJournal(self.jcf.db)
        self.recovery = CouplingRecovery(self.jcf, self.fmcad)
        self._wire_flow_orchestration()

    def _wire_flow_orchestration(self) -> None:
        """Stand up durable flows, triggers and the fair queue.

        All three are stateless over the OMS store (plus process-level
        script/policy registries), so the same wiring serves both a
        fresh environment and one rebuilt by :meth:`reopen` — persisted
        instances, trigger definitions and pending events are simply
        there when the new objects look.
        """
        self.triggers = TriggerRegistry(self.jcf.db)
        self.flows_orchestrator = DurableFlowOrchestrator(self)
        self.flow_queue = FlowQueue(
            self, self.flows_orchestrator, self.triggers
        )
        # tool wrappers raise durable checkin events after every
        # successful harvest, feeding the event-driven triggers
        for wrapper in (
            self.schematic_entry,
            self.digital_simulation,
            self.layout_entry,
        ):
            wrapper.triggers = self.triggers

    # -- read path ----------------------------------------------------------------

    @staticmethod
    def _resolve_cache_budget(read_cache_bytes: Optional[int]) -> int:
        if read_cache_bytes is not None:
            return read_cache_bytes
        env = os.environ.get("REPRO_READ_CACHE_BYTES", "")
        if env:
            try:
                return int(env)
            except ValueError:
                pass
        return DEFAULT_BUDGET_BYTES

    def _wire_read_path(self, read_cache_bytes: Optional[int]) -> None:
        """Attach the shared read cache and enable zero-copy views.

        One digest-keyed :class:`MaterializationCache` serves both
        frameworks — blob materializations and FMCAD version reads
        address bytes by the same SHA-256, so a byte proven once is a
        hit everywhere.  Must run before any FMCAD library is opened so
        every library picks the cache up.
        """
        budget = self._resolve_cache_budget(read_cache_bytes)
        self.read_cache = (
            MaterializationCache(budget) if budget > 0 else None
        )
        if self.read_cache is not None:
            self.jcf.db.attach_read_cache(self.read_cache)
        self.jcf.db.enable_payload_views(self.root / "jcf" / "blob_views")
        self.fmcad.read_cache = self.read_cache

    # -- environment setup --------------------------------------------------------

    def setup_standard_flow(self, name: str = "jcf_fmcad_flow"):
        """Register the three-tool encapsulation flow of Section 2.4."""
        return self.jcf.register_flow(standard_encapsulation_flow(name))

    def register_flow(self, flow_def: FlowDef):
        return self.jcf.register_flow(flow_def)

    # -- library adoption (Table 1 + hierarchy submission) ---------------------------

    def adopt_library(
        self,
        user: str,
        library: Library,
        project_name: Optional[str] = None,
        submit_hierarchy: bool = True,
    ) -> JCFProject:
        """Bring an FMCAD library under JCF control.

        Applies the Table 1 mapping and then — before any design work —
        performs the manual hierarchy submission of Section 2.3.  With
        ``jcf3_strict`` a non-isomorphic library raises
        :class:`~repro.errors.NonIsomorphicHierarchyError` here.
        """
        project = self.mapper.import_library(library, user, project_name)
        if submit_hierarchy:
            self.hierarchy.submit_from_library(user, project, library)
        return project

    def prepare_cell(
        self,
        user: str,
        project: JCFProject,
        cell_name: str,
        flow_name: str = "jcf_fmcad_flow",
        team_name: Optional[str] = None,
    ) -> JCFCellVersion:
        """Attach flow (and team) to the cell's latest version, reserve it."""
        cell = project.cell(cell_name)
        cell_version = cell.latest_version()
        if cell_version is None:
            cell_version = cell.create_version()
        if cell_version.published:
            cell_version = cell.create_version()
        cell_version.attach_flow(self.jcf.flows.flow_object(flow_name))
        if team_name is not None:
            cell_version.attach_team(self.jcf.resources.team(team_name))
        from repro.core.mapping import WORKING_VARIANT

        if not any(
            v.name == WORKING_VARIANT for v in cell_version.variants()
        ):
            cell_version.create_variant(WORKING_VARIANT)
        self.jcf.desktop.reserve_cell_version(user, cell_version)
        return cell_version

    # -- coupled tool runs -------------------------------------------------------------

    def run_schematic_entry(
        self, user: str, project: JCFProject, library: Library,
        cell_name: str, edit_fn, force_early: bool = False,
    ) -> ToolRunResult:
        return self.schematic_entry.run(
            user, project, library, cell_name,
            force_early=force_early, edit_fn=edit_fn,
        )

    def run_simulation(
        self, user: str, project: JCFProject, library: Library,
        cell_name: str, testbench_fn, force_early: bool = False,
        grade_coverage: bool = False,
    ) -> ToolRunResult:
        return self.digital_simulation.run(
            user, project, library, cell_name,
            force_early=force_early, testbench_fn=testbench_fn,
            grade_coverage=grade_coverage,
        )

    def run_layout_entry(
        self, user: str, project: JCFProject, library: Library,
        cell_name: str, edit_fn, force_early: bool = False,
        drc_gate: bool = True,
    ) -> ToolRunResult:
        return self.layout_entry.run(
            user, project, library, cell_name,
            force_early=force_early, edit_fn=edit_fn, drc_gate=drc_gate,
        )

    # -- batched parallel runs ---------------------------------------------------------

    def run_many(
        self,
        requests,
        workers: int = 4,
        seed: int = 0,
        commit_scope: str = "",
        sandbox_prefix: str = "",
    ) -> BatchResult:
        """Execute a batch of coupled runs on a worker pool.

        Builds the conflict/dependency graph over *requests* (a sequence
        of :class:`~repro.core.scheduler.RunRequest`), executes
        independent runs concurrently in waves, and returns a
        :class:`~repro.core.scheduler.BatchResult`.  Given the same batch
        and *seed*, the final OMS snapshot is byte-identical for any
        worker count — ``workers=1`` is the sequential baseline.

        *commit_scope* and *sandbox_prefix* exist for callers running
        several batches concurrently (the design server's shards): each
        concurrent batch needs its own commit-group scope and a distinct
        sandbox namespace.  Single-batch callers leave the defaults.
        """
        scheduler = BatchScheduler(
            self,
            workers=workers,
            seed=seed,
            commit_scope=commit_scope,
            sandbox_prefix=sandbox_prefix,
        )
        return scheduler.run(requests)

    # -- persistence ----------------------------------------------------------------------

    SNAPSHOT_NAME = "jcf_snapshot.json"
    PREV_SNAPSHOT_NAME = "jcf_snapshot.json.prev"

    def save_state(self) -> pathlib.Path:
        """Persist everything needed to reopen this environment.

        FMCAD state already lives on disk (libraries, version files,
        ``.meta``, property sidecars); the JCF/OMS state goes through the
        configured persistence mode.  Open ``.meta`` flushes are the
        caller's responsibility, exactly as they were the designer's.

        In ``"wal"`` mode this is a checkpoint: the log is compacted
        into ``wal/checkpoint.json`` and truncated, with the previous
        checkpoint retained until the new one re-verifies from disk
        (see :meth:`repro.oms.wal.WriteAheadLog.checkpoint`).

        In ``"snapshot"`` mode the whole graph is serialised, verified
        **before** publication, durably written, and the previous
        snapshot is kept as ``jcf_snapshot.json.prev`` — the old state
        file is never destroyed by an unverified successor, and
        :meth:`reopen` falls back to it when the current file is
        damaged at rest.
        """
        if self.persistence == "wal":
            return self.jcf.checkpoint()
        path = self.root / self.SNAPSHOT_NAME
        data = self.jcf.save_snapshot()
        problem = verify_snapshot_bytes(data)
        if problem is not None:
            # a snapshot that cannot prove itself must not replace the
            # previous good state file
            raise SnapshotIntegrityError(
                f"save_state aborted: fresh snapshot fails verification "
                f"({problem})",
                location=str(path),
                classification=problem,
            )
        # durable temp write + atomic rename, previous snapshot demoted
        # to .prev (not deleted) until its successor has proven itself
        tmp = path.with_name(path.name + ".tmp")
        durable.write_bytes(tmp, data, mode=self.durability)
        if path.exists():
            durable.replace(
                path, self.root / self.PREV_SNAPSHOT_NAME,
                mode=self.durability,
            )
        durable.replace(tmp, path, mode=self.durability)
        problem = verify_snapshot_bytes(path.read_bytes())
        if problem is not None:  # pragma: no cover - needs hostile fs
            raise SnapshotIntegrityError(
                f"save_state readback failed verification ({problem}); "
                f"previous state retained as {self.PREV_SNAPSHOT_NAME}",
                location=str(path),
                classification=problem,
            )
        return path

    @classmethod
    def _load_snapshot_bytes(cls, root: pathlib.Path) -> bytes:
        """Read the state snapshot, falling back to the retained ``.prev``.

        The current file wins when it verifies; at-rest damage (or a
        crash window that left only the demoted previous snapshot)
        falls back.  Both missing is a hard error; both damaged raises
        the current file's failure rather than silently starting empty.
        """
        current = root / cls.SNAPSHOT_NAME
        previous = root / cls.PREV_SNAPSHOT_NAME
        if not current.exists() and not previous.exists():
            raise FileNotFoundError(
                f"no saved state at {current}; call save_state() "
                "before reopening"
            )
        if current.exists():
            data = current.read_bytes()
            if verify_snapshot_bytes(data) is None:
                return data
            if previous.exists():
                fallback = previous.read_bytes()
                if verify_snapshot_bytes(fallback) is None:
                    return fallback
            raise SnapshotIntegrityError(
                f"state snapshot {current} fails verification "
                f"({verify_snapshot_bytes(data)}) and no verified "
                f"previous snapshot exists",
                location=str(current),
                classification=verify_snapshot_bytes(data) or "bit-rot",
            )
        data = previous.read_bytes()
        if verify_snapshot_bytes(data) is not None:
            raise SnapshotIntegrityError(
                f"only snapshot on disk ({previous}) fails verification",
                location=str(previous),
                classification=verify_snapshot_bytes(data) or "bit-rot",
            )
        return data

    @classmethod
    def reopen(
        cls,
        root: pathlib.Path,
        clock: Optional[SimClock] = None,
        jcf3_strict: bool = True,
        enable_hierarchy_procedural_interface: bool = False,
        administrator: str = "admin",
        durability: Optional[str] = None,
        read_cache_bytes: Optional[int] = None,
    ) -> "HybridFramework":
        """Restart a hybrid environment previously saved with
        :meth:`save_state`: restore the JCF state (auto-detecting WAL
        versus snapshot persistence), reopen every on-disk FMCAD
        library from its ``.meta``, rehydrate flows."""
        root = pathlib.Path(root)
        wal_root = root / "jcf" / WAL_DIR_NAME
        instance = cls.__new__(cls)
        instance.root = root
        instance.clock = clock or SimClock()
        instance.durability = durability
        if WriteAheadLog.present_at(wal_root):
            instance.persistence = "wal"
            instance.jcf = JCFFramework(
                root / "jcf",
                clock=instance.clock,
                administrator=administrator,
                wal=WriteAheadLog(wal_root, durability_mode=durability),
            )
        else:
            instance.persistence = "snapshot"
            instance.jcf = JCFFramework(
                root / "jcf",
                clock=instance.clock,
                administrator=administrator,
                snapshot=cls._load_snapshot_bytes(root),
            )
        instance.fmcad = FMCADFramework(
            root / "fmcad", clock=instance.clock
        )
        # wire the read path before opening any library so each one
        # picks up the shared cache
        instance._wire_read_path(read_cache_bytes)
        for library_name in instance.fmcad.known_library_names():
            instance.fmcad.open_library(library_name)
        instance.mapper = DataModelMapper(instance.jcf, instance.fmcad)
        instance.hierarchy = HierarchyManager(
            instance.jcf.desktop,
            jcf3_strict=jcf3_strict,
            procedural_interface=enable_hierarchy_procedural_interface,
        )
        instance.guard = ConsistencyGuard(
            instance.jcf, instance.fmcad, instance.mapper,
            instance.hierarchy,
        )
        instance.guard.install_itc_interceptor()
        instance.desktop = CombinedDesktop(instance.clock)
        instance.schematic_entry = SchematicEntryWrapper(
            instance.jcf, instance.fmcad, instance.mapper, instance.guard
        )
        instance.digital_simulation = DigitalSimulatorWrapper(
            instance.jcf, instance.fmcad, instance.mapper, instance.guard
        )
        instance.layout_entry = LayoutEntryWrapper(
            instance.jcf, instance.fmcad, instance.mapper, instance.guard
        )
        instance.intents = IntentJournal(instance.jcf.db)
        instance.recovery = CouplingRecovery(instance.jcf, instance.fmcad)
        instance._wire_flow_orchestration()
        # staged files from the previous process are a durable CoW cache:
        # re-adopt the ones that still match a live payload, leave true
        # crash leavings for recover() to reclaim
        instance.jcf.staging.adopt_existing()
        return instance

    # -- crash recovery ---------------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Repair the leavings of crashed coupled runs (see
        :mod:`repro.core.recovery`).  Run on a quiesced environment —
        typically right after :meth:`reopen`."""
        return self.recovery.recover()

    def audit(self):
        """Cross-framework crash-consistency audit; clean means healthy."""
        return self.guard.audit()

    # -- statistics ------------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        wrappers = (
            self.schematic_entry, self.digital_simulation, self.layout_entry
        )
        stats = {
            "clock_ms": self.clock.now_ms,
            "by_category": self.clock.elapsed_by_category(),
            "jcf": self.jcf.stats(),
            "fmcad": self.fmcad.stats(),
            "mapping_coverage": self.mapper.coverage(),
            "hierarchy_rejections": self.hierarchy.rejections,
            "persistence": self.persistence,
            "flows": self.flows_orchestrator.stats(),
            "harvest": {
                "delta_hits": sum(w.harvest_delta_hits for w in wrappers),
                "full_imports": sum(w.harvest_full_imports for w in wrappers),
            },
            "read_path": self.read_path_stats(),
        }
        if self.jcf.wal is not None:
            stats["wal"] = self.jcf.wal.stats()
        return stats

    def read_path_stats(self) -> Dict[str, Any]:
        """Read-path effectiveness: cache, memo, views, in-kernel clones."""
        blob_stats = self.jcf.db.blob_stats()
        report: Dict[str, Any] = {
            "query_memo": self.jcf.query.memo_stats(),
            "staging_reflinks": (
                self.jcf.staging.accounting()["export_reflinks"]
            ),
            "checkout_clones": (
                self.fmcad.checkouts.stats()["cloned_working_files"]
            ),
            "library_cache_reads": sum(
                library.cache_reads
                for library in self.fmcad._libraries.values()
            ),
            "views_mapped": blob_stats["views_mapped"],
            "view_hits": blob_stats["view_hits"],
            "view_fallbacks": blob_stats["view_fallbacks"],
        }
        if self.read_cache is not None:
            report["cache"] = self.read_cache.stats()
        return report
