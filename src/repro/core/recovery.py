"""Two-phase recovery for interrupted coupled runs.

The coupled protocol touches two systems with very different crash
behaviour.  OMS is transactional: open transactions self-abort when the
failure propagates, so the master's metadata is always consistent after
a crash.  FMCAD is files-and-locks: version files, checkout tickets,
tool sessions and ``.meta`` flushes have no transaction around them, so
a crash leaves whatever half-state the process died in.

The bridge is the **coupling intent**: a durable OMS record
(``CouplingIntent``) journalled by :class:`IntentJournal` *before* the
run performs any cross-framework side effect.  After a crash,
:class:`CouplingRecovery` scans the pending intents and both frameworks
and repairs the slave to match the master:

==========================================  ================================
observed state of an FMCAD version          action
(newer than the intent's recorded base)
==========================================  ================================
``jcf_oid`` tag names a live OMS version    keep — the run got far enough
no/dead tag, but the OMS design object's    roll forward: repair the tag
latest payload digest matches the file      (both writes happened, the
                                            cross-tag was the casualty)
no/dead tag and no matching OMS payload     roll back: drop the FMCAD
                                            version (the OMS import never
                                            committed)
==========================================  ================================

Around that core decision, recovery also cancels dangling checkout
tickets, closes leaked tool sessions, fails executions left ``running``,
releases orphaned workspace reservations, reclaims unrecorded staging
files, and settles every pending intent as ``done`` or ``aborted``.

Recovery assumes a *quiesced* system — it is the restart path, run
before any new coupled work begins, exactly like a database's crash
recovery.  It is idempotent: running it twice, or on a healthy store,
changes nothing (asserted by the test suite via audit + snapshot
equality).
"""

from __future__ import annotations

import dataclasses
import shutil
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import CouplingError, FMCADError, LibraryError
from repro.fmcad.framework import FMCADFramework
from repro.fmcad.library import Library
from repro.integrity.scrub import Scrubber
from repro.jcf.flow_engine import JCFExecution
from repro.jcf.framework import JCFFramework
from repro.jcf.model import (
    EXEC_RUNNING,
    FLOW_ABORTED,
    FLOW_QUEUED,
    FLOW_RUNNING,
    FLOW_TERMINAL_STATES,
    INTENT_ABORTED,
    INTENT_DONE,
    INTENT_PENDING,
)
from repro.jcf.project import JCFCellVersion, JCFVariant
from repro.oms.objects import OMSObject

#: author recorded on ``.meta`` flushes performed by recovery
RECOVERY_USER = "recovery"


class IntentJournal:
    """Durable begin/finish records for coupled runs.

    An intent is only worth anything if it survives the crash it is
    meant to describe, so :meth:`begin` refuses to run inside an open
    transaction — an aborting transaction would take the intent with it.
    """

    def __init__(self, db) -> None:
        self._db = db

    def begin(
        self,
        kind: str,
        user: str,
        library: str,
        cell: str,
        activity: str = "",
        execution_oid: str = "",
        variant_oid: str = "",
        fmcad_base: Optional[Sequence[Sequence[Any]]] = None,
        note: str = "",
    ) -> str:
        """Journal a pending intent; returns its oid."""
        if self._db.in_transaction:
            raise CouplingError(
                "intent records must be journalled outside transactions — "
                "an abort would erase the evidence recovery depends on"
            )
        obj = self._db.create(
            "CouplingIntent",
            {
                "kind": kind,
                "state": INTENT_PENDING,
                "user": user,
                "library": library,
                "cell": cell,
                "activity": activity,
                "execution_oid": execution_oid,
                "variant_oid": variant_oid,
                "fmcad_base": [list(pair) for pair in (fmcad_base or [])],
                "started_ms": self._db.clock.now_ms,
                "note": note,
            },
        )
        return obj.oid

    def finish(self, oid: str, state: str, note: str = "") -> None:
        """Settle an intent as ``done`` or ``aborted``."""
        if state not in (INTENT_DONE, INTENT_ABORTED):
            raise CouplingError(f"invalid terminal intent state {state!r}")
        self._db.set_attr(oid, "state", state)
        self._db.set_attr(oid, "finished_ms", self._db.clock.now_ms)
        if note:
            self._db.set_attr(oid, "note", note)

    def pending(self) -> List[OMSObject]:
        return self._db.select(
            "CouplingIntent", lambda o: o.get("state") == INTENT_PENDING
        )

    def all(self) -> List[OMSObject]:
        return self._db.select("CouplingIntent")


@dataclasses.dataclass
class RecoveryReport:
    """Everything one :meth:`CouplingRecovery.recover` pass repaired."""

    completed_intents: List[str] = dataclasses.field(default_factory=list)
    aborted_intents: List[str] = dataclasses.field(default_factory=list)
    cancelled_tickets: List[str] = dataclasses.field(default_factory=list)
    deleted_fmcad_versions: List[str] = dataclasses.field(default_factory=list)
    repaired_tags: List[str] = dataclasses.field(default_factory=list)
    closed_sessions: List[str] = dataclasses.field(default_factory=list)
    failed_executions: List[str] = dataclasses.field(default_factory=list)
    released_reservations: List[str] = dataclasses.field(default_factory=list)
    reclaimed_staging_files: List[str] = dataclasses.field(default_factory=list)
    #: corrupt payloads healed from verified peer copies (integrity scrub)
    repaired_payloads: List[str] = dataclasses.field(default_factory=list)
    #: unrepairable payloads taken out of service, never to be read again
    quarantined_payloads: List[str] = dataclasses.field(default_factory=list)
    #: write-ahead-log repairs (torn tails dropped after a crash mid-append)
    wal_repairs: List[str] = dataclasses.field(default_factory=list)
    #: stranded flow instances re-queued for resume (crash mid-flow)
    adopted_flows: List[str] = dataclasses.field(default_factory=list)
    #: flow instances whose design context is gone; parked as aborted
    compensated_flows: List[str] = dataclasses.field(default_factory=list)
    #: expired checkout leases reclaimed from dead served sessions
    reclaimed_leases: List[str] = dataclasses.field(default_factory=list)

    def empty(self) -> bool:
        return not any(
            getattr(self, field.name) for field in dataclasses.fields(self)
        )

    def summary(self) -> str:
        if self.empty():
            return "recovery: nothing to repair"
        lines = ["recovery:"]
        for field in dataclasses.fields(self):
            items = getattr(self, field.name)
            if items:
                label = field.name.replace("_", " ")
                lines.append(f"  {label}: {len(items)}")
                for item in items:
                    lines.append(f"    - {item}")
        return "\n".join(lines)


class CouplingRecovery:
    """Scans intents plus both frameworks; rolls forward or back."""

    def __init__(self, jcf: JCFFramework, fmcad: FMCADFramework) -> None:
        self.jcf = jcf
        self.fmcad = fmcad
        self.intents = IntentJournal(jcf.db)
        self.scrubber = Scrubber(jcf, fmcad)

    # -- the recovery pass -----------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Repair every trace of interrupted coupled runs.

        Must run on a quiesced system (no coupled run in flight) and
        outside any transaction — the repairs themselves must be as
        durable as the damage.
        """
        if self.jcf.db.in_transaction:
            raise CouplingError("recovery cannot run inside a transaction")
        report = RecoveryReport()
        for intent in self.intents.pending():
            self._recover_intent(intent, report)
        self._sweep_executions(report)
        self._sweep_tickets(report)
        self._sweep_reservations(report)
        self._sweep_flow_instances(report)
        for path in self.jcf.staging.reclaim_orphans():
            report.reclaimed_staging_files.append(path.name)
        self._sweep_staging_sandboxes(report)
        self._sweep_wal(report)
        self._sweep_leases(report)
        self._scrub_storage(report)
        return report

    def _sweep_flow_instances(self, report: RecoveryReport) -> None:
        """Adopt or compensate flow instances a crash stranded.

        On a quiesced system a ``running`` instance is a lie — the
        process driving it is dead.  If its variant (the design context
        every later step needs) still resolves, the instance is adopted
        back to ``queued`` so ``resume_pending()`` can roll it forward
        from its last durably-completed activity; an instance whose
        variant is gone can never make progress, so it is compensated to
        the terminal ``aborted`` state instead of haunting the queue.
        The executions sweep above has already failed the interrupted
        activity execution, which is exactly what makes the re-run
        admissible under the flow engine's ordering rules.
        """
        db = self.jcf.db
        for obj in db.select("FlowInstance"):
            status = obj.get("status")
            if status in FLOW_TERMINAL_STATES:
                continue
            variant_oid = obj.get("variant_oid") or ""
            try:
                db.get(variant_oid)
                context_alive = True
            except Exception:
                context_alive = False
            if not context_alive:
                db.set_attr(obj.oid, "status", FLOW_ABORTED)
                db.set_attr(
                    obj.oid, "note",
                    "compensated by recovery: design context is gone",
                )
                db.set_attr(obj.oid, "updated_ms", db.clock.now_ms)
                report.compensated_flows.append(obj.oid)
            elif status == FLOW_RUNNING:
                db.set_attr(obj.oid, "status", FLOW_QUEUED)
                db.set_attr(obj.oid, "updated_ms", db.clock.now_ms)
                report.adopted_flows.append(obj.oid)

    def _sweep_wal(self, report: RecoveryReport) -> None:
        """Drop the live log's torn tail (a crash mid-append leaves one).

        Reopen-time recovery (``WriteAheadLog.recover``) already repairs
        the tail it replays over; this sweep covers recovery runs on an
        environment that was *not* rebuilt through reopen — the repair
        is idempotent either way.  Damage that is not a tail problem is
        left in place for the audit to report.
        """
        wal = getattr(self.jcf.db, "wal", None)
        if wal is None:
            return
        report.wal_repairs.extend(wal.repair())

    def _sweep_leases(self, report: RecoveryReport) -> None:
        """Reclaim expired checkout leases from dead served sessions.

        The lease table is an optional attachment (a serving engine
        publishes it the same way WAL persistence publishes ``db.wal``).
        On a quiesced system every expired lease belongs to a session
        that will never heartbeat again; reclaiming here means a
        restarted server grants successors immediately instead of
        waiting for the first pump to notice.
        """
        table = getattr(self.jcf.db, "lease_table", None)
        if table is None:
            return
        for lease in table.reclaim_due():
            report.reclaimed_leases.append(
                f"{lease.key} (session {lease.session_id}, "
                f"token {lease.token})"
            )

    def _scrub_storage(self, report: RecoveryReport) -> None:
        """Leave a fully *verified* store, not just a consistent one.

        The structural sweeps above repair what crashed runs broke; this
        final pass re-verifies every stored payload and heals at-rest
        corruption from verified peer copies (see
        :class:`repro.integrity.scrub.Scrubber`).  Whatever has no
        surviving peer is quarantined so no later read can ever be
        served the damage silently.
        """
        scrub = self.scrubber.scrub(repair=True)
        for finding in scrub.findings:
            if finding.action == "repaired":
                report.repaired_payloads.append(str(finding))
            elif finding.action == "quarantined":
                report.quarantined_payloads.append(str(finding))

    def _sweep_staging_sandboxes(self, report: RecoveryReport) -> None:
        """Remove sandbox directories crashed scheduled runs left behind.

        Each scheduled run stages through a private subdirectory of the
        staging root (``JCFFramework.staging_sandbox``); a clean run
        removes its own.  Whatever directories survive a crash hold only
        export copies — the bytes are all safely inside OMS — so they
        are reclaimed wholesale.
        """
        root = self.jcf.staging.root
        for subdir in sorted(p for p in root.iterdir() if p.is_dir()):
            for path in sorted(subdir.rglob("*")):
                if path.is_file():
                    path.unlink()
                    report.reclaimed_staging_files.append(
                        f"{subdir.name}/{path.name}"
                    )
            shutil.rmtree(subdir, ignore_errors=True)

    # -- per-intent repair -----------------------------------------------------

    def _recover_intent(
        self, intent: OMSObject, report: RecoveryReport
    ) -> None:
        library = self._library(intent.get("library"))
        cell_name = intent.get("cell") or ""
        durable_outputs = 0
        touched_library = False

        if library is not None and library.has_cell(cell_name):
            self._cancel_tickets(
                report,
                lambda t: t.library_name == library.name
                and t.cell_name == cell_name,
            )
            base: Dict[str, int] = {
                str(view): int(number)
                for view, number in (intent.get("fmcad_base") or [])
            }
            variant = self._variant(intent.get("variant_oid"))
            for cellview in library.cell(cell_name).cellviews():
                kept, dropped, repaired = self._settle_cellview(
                    library, cellview,
                    base.get(cellview.view.name, 0),
                    variant, report,
                )
                durable_outputs += kept + repaired
                touched_library = touched_library or dropped or repaired

        for session in list(self.fmcad.sessions()):
            if session.user == intent.get("user"):
                self.fmcad.close_session(session.session_id)
                report.closed_sessions.append(session.session_id)

        self._fail_execution(intent.get("execution_oid"), report)

        if touched_library and library is not None:
            # the crash interrupted before (or between) .meta flushes;
            # republish faithful metadata under the recovery identity
            library.flush_meta(RECOVERY_USER)

        if durable_outputs:
            self.intents.finish(
                intent.oid, INTENT_DONE,
                note=f"recovered: {durable_outputs} durable output(s)",
            )
            report.completed_intents.append(intent.oid)
        else:
            self.intents.finish(
                intent.oid, INTENT_ABORTED, note="recovered: rolled back"
            )
            report.aborted_intents.append(intent.oid)

    def _settle_cellview(
        self,
        library: Library,
        cellview,
        base_number: int,
        variant: Optional[JCFVariant],
        report: RecoveryReport,
    ) -> Tuple[int, int, int]:
        """Apply the decision table to every version newer than the base.

        Returns ``(kept, dropped, repaired)`` counts.  Versions are
        settled newest-first because only the newest version of a chain
        can be dropped; the scan stops at the first version it keeps —
        everything older was durable before the crashed run began or was
        kept by an earlier recovery pass.
        """
        kept = dropped = repaired = 0
        dobj = (
            variant.find_design_object(cellview.view.name)
            if variant is not None
            else None
        )
        latest_jcf = dobj.latest_version() if dobj is not None else None
        for version in reversed(list(cellview.versions)):
            if version.number <= base_number:
                break
            tag = version.properties.get("jcf_oid")
            if tag and self.jcf.db.exists(tag):
                kept += 1
                break
            if (
                latest_jcf is not None
                and version.path.exists()
                and latest_jcf.payload_digest == version.content_digest()
            ):
                # both writes landed; only the cross-tag was lost
                version.properties.set("jcf_oid", latest_jcf.oid)
                repaired += 1
                report.repaired_tags.append(
                    f"{library.name}:{cellview.name} v{version.number} -> "
                    f"{latest_jcf.oid}"
                )
                break
            library.drop_version(cellview, version.number)
            dropped += 1
            report.deleted_fmcad_versions.append(
                f"{library.name}:{cellview.name} v{version.number}"
            )
        return kept, dropped, repaired

    # -- generic sweeps --------------------------------------------------------

    def _sweep_executions(self, report: RecoveryReport) -> None:
        """Fail every execution still marked running.

        On a quiesced system a ``running`` execution is always stale —
        including the crash window between ``start_activity`` and the
        intent journal entry, which no intent describes.
        """
        for obj in self.jcf.db.select(
            "ActiveExecVersion", lambda o: o.get("status") == EXEC_RUNNING
        ):
            self._fail_execution(obj.oid, report)

    def _fail_execution(
        self, oid: Optional[str], report: RecoveryReport
    ) -> None:
        if not oid or not self.jcf.db.exists(oid):
            return
        execution = JCFExecution(self.jcf.db, self.jcf.db.get(oid))
        if execution.status != EXEC_RUNNING:
            return
        self.jcf.engine.finish_activity(execution, success=False)
        report.failed_executions.append(oid)

    def _sweep_tickets(self, report: RecoveryReport) -> None:
        """Cancel every remaining ticket: quiesced means none is live."""
        self._cancel_tickets(report, lambda ticket: True)

    def _cancel_tickets(self, report: RecoveryReport, match) -> None:
        for ticket in self.fmcad.checkouts.active_tickets():
            if not match(ticket):
                continue
            try:
                self.fmcad.checkouts.cancel(ticket)
            except (FMCADError, LibraryError):  # pragma: no cover - defensive
                continue
            report.cancelled_tickets.append(
                f"{ticket.cellview_key} ({ticket.user})"
            )

    def _sweep_reservations(self, report: RecoveryReport) -> None:
        """Release reservations that can no longer be legitimate.

        A ``reserves`` link is orphaned when its target cell version is
        already published (publish releases atomically, so this only
        happens when the protocol was bypassed) or when its workspace's
        owner is no longer a registered user.
        """
        db = self.jcf.db
        for workspace in db.select("Workspace"):
            owner = workspace.get("owner")
            owner_known = True
            try:
                self.jcf.resources.user(owner)
            except Exception:
                owner_known = False
            for cv_oid in list(db.target_oids("reserves", workspace.oid)):
                cell_version = JCFCellVersion(db, db.get(cv_oid))
                if owner_known and not cell_version.published:
                    continue
                db.unlink("reserves", workspace.oid, cv_oid)
                reason = (
                    "published" if cell_version.published else "unknown owner"
                )
                report.released_reservations.append(
                    f"{owner}: cell version {cell_version.number} of "
                    f"{cell_version.cell.name!r} ({reason})"
                )

    # -- internals -------------------------------------------------------------

    def _library(self, name: Optional[str]) -> Optional[Library]:
        if not name:
            return None
        try:
            return self.fmcad.library(name)
        except LibraryError:
            if name in self.fmcad.known_library_names():
                return self.fmcad.open_library(name)
            return None

    def _variant(self, oid: Optional[str]) -> Optional[JCFVariant]:
        if not oid or not self.jcf.db.exists(oid):
            return None
        return JCFVariant(self.jcf.db, self.jcf.db.get(oid))
