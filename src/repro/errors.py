"""Exception hierarchy shared by every subsystem of the reproduction.

The original JCF/FMCAD coupling distinguished framework-level failures
(metadata, permissions, flows) from tool-level failures (a simulator run
that fails, a DRC violation).  We mirror that split so callers can react
to the same classes of error the 1995 prototype surfaced in its extra
consistency windows.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Storage integrity (cross-cutting: OMS payloads, staging, FMCAD files)
# ---------------------------------------------------------------------------


class IntegrityError(ReproError):
    """Stored bytes failed verification against their recorded checksum.

    Raised by every verified read path — blob materialization, staged
    file validation, FMCAD version files, ``.meta`` parsing, snapshot
    restore — instead of handing garbage to the caller.  ``location``
    identifies the damaged artifact, ``classification`` is one of the
    scrubber's damage classes (bit-rot, truncation, torn-write, ...).
    """

    def __init__(
        self,
        message: str,
        location: str = "",
        classification: str = "",
    ) -> None:
        super().__init__(message)
        self.location = location
        self.classification = classification


class QuarantinedError(IntegrityError):
    """A read hit a payload the scrubber has quarantined as unrepairable."""


# ---------------------------------------------------------------------------
# OMS database kernel
# ---------------------------------------------------------------------------


class OMSError(ReproError):
    """Base class for errors raised by the OMS object store."""


class SchemaError(OMSError):
    """A schema definition or schema lookup is invalid."""


class AttributeTypeError(OMSError):
    """An attribute value does not conform to its declared type."""


class UnknownObjectError(OMSError):
    """An object id does not resolve to a live object."""


class RelationshipError(OMSError):
    """A relationship operation violated its cardinality or endpoint types."""


class TransactionError(OMSError):
    """A transactional operation was used outside a valid transaction."""


class QueryError(OMSError):
    """A query primitive was used against data that violates its contract."""


class LockContentionError(OMSError):
    """A non-blocking lock acquisition found the lock already held.

    Raised by :class:`repro.oms.locks.LockManager` when a caller asked
    for ``blocking=False`` — the scheduler treats this as "the conflict
    graph missed an edge" and defers the run to a later wave instead of
    risking a wait that could deadlock against its commit ordering.
    """


class SnapshotIntegrityError(OMSError, IntegrityError):
    """A persisted snapshot failed its embedded checksum or would not parse.

    Inherits both :class:`OMSError` (existing snapshot handlers keep
    working) and :class:`IntegrityError` (the scrubber and verified
    readers treat it as a storage-integrity failure).
    """

    def __init__(self, message: str, location: str = "",
                 classification: str = "") -> None:
        OMSError.__init__(self, message)
        self.location = location
        self.classification = classification


class WALError(OMSError):
    """Write-ahead-log operation failed (append, checkpoint, replay)."""


class WALIntegrityError(WALError, IntegrityError):
    """A WAL record or checkpoint failed verification.

    Raised when damage sits *before* the log tail (a torn tail is
    expected after a crash and is silently dropped by recovery; damage
    in the middle of the log is at-rest corruption and must not be
    replayed).  Inherits :class:`IntegrityError` so the audit and
    scrubber layers classify it as storage damage.
    """

    def __init__(self, message: str, location: str = "",
                 classification: str = "") -> None:
        WALError.__init__(self, message)
        self.location = location
        self.classification = classification


class ClosedInterfaceError(OMSError):
    """Direct access to OMS internals was attempted.

    JCF 3.0's database has no public procedural interface; encapsulated
    tools must go through file-system staging (paper Section 2.1).  This
    error enforces that architectural property.
    """


# ---------------------------------------------------------------------------
# JCF framework (master)
# ---------------------------------------------------------------------------


class JCFError(ReproError):
    """Base class for errors raised by the JCF framework simulator."""


class ResourceError(JCFError):
    """A user, team or resource definition is invalid or unknown."""


class AuthorizationError(JCFError):
    """A user attempted an operation their team membership does not allow."""


class FlowError(JCFError):
    """A flow definition is structurally invalid (cycles, unknown steps)."""


class FlowOrderError(FlowError):
    """A tool invocation violated the fixed, prescribed flow order."""


class FlowFrozenError(FlowError):
    """An attempt was made to modify a flow after it was published.

    Paper Section 2.1: "Flows are fixed and cannot be modified, i.e., the
    user must follow the flow constraints."
    """


class FlowStuckError(FlowError):
    """A durable flow exhausted its robustness budget and dead-lettered.

    Raised by :mod:`repro.jcf.durable_flows` when an activity keeps
    failing past its retry budget (or per-activity timeout): the flow
    instance is parked in ``dead_letter`` state — visible to
    ``audit()`` and ``flows list`` — instead of wedging the queue.
    ``instance_oid`` names the parked flow instance so operators (and
    ``flows retry``) can find it.
    """

    def __init__(self, message: str, instance_oid: str = "",
                 activity: str = "") -> None:
        super().__init__(message)
        self.instance_oid = instance_oid
        self.activity = activity


class WorkspaceError(JCFError):
    """A workspace reservation or publication was invalid."""


class ReservationConflictError(WorkspaceError):
    """A cell version is already reserved in another private workspace."""


class VersioningError(JCFError):
    """Cell-version / variant bookkeeping was violated."""


class ConfigurationError(JCFError):
    """A configuration referenced incompatible or duplicate versions."""


class ProjectError(JCFError):
    """Project or cell structure operation failed."""


class CrossProjectSharingError(ProjectError):
    """Data sharing between projects was attempted.

    Paper Section 3.1: "Not yet possible in JCF or in the combined
    framework is data sharing between projects."
    """


# ---------------------------------------------------------------------------
# FMCAD framework (slave)
# ---------------------------------------------------------------------------


class FMCADError(ReproError):
    """Base class for errors raised by the FMCAD framework simulator."""


class LibraryError(FMCADError):
    """Library creation or lookup failed."""


class MetaFileError(FMCADError):
    """The library ``.meta`` file is corrupt, stale or inconsistent."""


class MetaIntegrityError(MetaFileError, IntegrityError):
    """A ``.meta`` file failed its whole-file checksum (torn write/rot).

    Inherits both :class:`MetaFileError` (existing ``.meta`` handlers
    keep working) and :class:`IntegrityError` (the scrubber and verified
    readers treat it as a storage-integrity failure).
    """

    def __init__(self, message: str, location: str = "",
                 classification: str = "") -> None:
        MetaFileError.__init__(self, message)
        self.location = location
        self.classification = classification


class CheckoutError(FMCADError):
    """Checkout/checkin protocol was violated (double checkout etc.)."""


class LockedError(CheckoutError):
    """A cellview is locked by another user's checkout."""


class ViewTypeError(FMCADError):
    """An unknown or incompatible viewtype was used."""


class PropertyError(FMCADError):
    """A property operation used an invalid name or value type."""


class ExtensionLanguageError(FMCADError):
    """The extension-language interpreter rejected a program."""


class MenuLockedError(FMCADError):
    """A menu point locked by the coupling consistency guard was invoked.

    Paper Section 2.4: extension-language procedures "lock menu points in
    order to prevent data inconsistency".
    """


class ITCError(FMCADError):
    """Inter-tool-communication routing failed."""


# ---------------------------------------------------------------------------
# Encapsulated design tools
# ---------------------------------------------------------------------------


class ToolError(ReproError):
    """Base class for errors raised by the encapsulated design tools."""


class SchematicError(ToolError):
    """Schematic entry model violation (dangling pin, duplicate net...)."""


class LayoutError(ToolError):
    """Layout geometry or hierarchy violation."""


class DRCError(LayoutError):
    """A design-rule check failed."""


class SimulationError(ToolError):
    """The digital simulator rejected a netlist or stimulus."""


# ---------------------------------------------------------------------------
# Coupling layer (the paper's contribution)
# ---------------------------------------------------------------------------


class CouplingError(ReproError):
    """Base class for errors raised by the hybrid JCF-FMCAD coupling."""


class MappingError(CouplingError):
    """The Table-1 data-model mapping could not be applied."""


class HierarchyError(CouplingError):
    """Design-hierarchy extraction or submission failed."""


class NonIsomorphicHierarchyError(HierarchyError):
    """Functional and physical hierarchies differ.

    JCF 3.0 does not support non-isomorphic hierarchies (paper Sections
    2.3 and 3.3); the hybrid framework must reject them unless the
    future-release extension is explicitly enabled.
    """


class ConsistencyError(CouplingError):
    """The consistency guard detected (or prevented) corrupt design state."""


class EncapsulationError(CouplingError):
    """A tool wrapper could not stage, launch or harvest a tool run."""


# ---------------------------------------------------------------------------
# Design server (multi-session front end)
# ---------------------------------------------------------------------------


class ServerError(ReproError):
    """Base class for errors raised by the design-server front end."""


class ProtocolError(ServerError):
    """A client frame violated the line-delimited JSON protocol.

    Covers undecodable lines, missing fields, unknown operations and
    unknown script names.  The server answers with an error frame and
    keeps the connection open; the request is never admitted.
    """


class SessionError(ServerError):
    """A session's user/team/project context is invalid.

    Raised at ``hello`` time (unknown user, user not a member of the
    team, team not assigned to the project) or when a request arrives
    before any ``hello`` established a session.
    """


class ServerOverloadError(ServerError):
    """The server refused a request to protect itself (fail fast).

    Raised by admission control when a shard's bounded queue is full,
    its token bucket is empty, or the server is draining for shutdown.
    Typed rejection is the backpressure contract: clients see an
    immediate, retryable error instead of unbounded queueing collapse.
    ``shard_id`` names the saturated shard, ``reason`` is one of
    ``queue-full`` / ``throttled`` / ``draining``, and
    ``retry_after_ms`` is advisory simulated backoff.
    """

    def __init__(
        self,
        message: str,
        shard_id: int = -1,
        reason: str = "",
        retry_after_ms: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.shard_id = shard_id
        self.reason = reason
        self.retry_after_ms = retry_after_ms


class DeadlineExceededError(ServerError):
    """A request's deadline expired before its batch could commit.

    The request is answered instead of occupying a wave slot: expired at
    submission it is never admitted; expired while coalescing it is shed
    from the batch before ``run_many`` runs.  Nothing was committed, so
    the retry contract is simple — resubmit with a fresh deadline.
    ``retry_after_ms`` may legitimately be ``0.0`` ("retry now, the
    deadline was yours"); the wire layer must preserve that hint.
    """

    def __init__(
        self,
        message: str,
        shard_id: int = -1,
        retry_after_ms: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.shard_id = shard_id
        self.retry_after_ms = retry_after_ms


class ShardUnavailableError(ServerError):
    """A shard is fenced by its circuit breaker (wedged or recovering).

    Healthy shards keep serving; requests routed to the fenced shard
    fail fast with this error instead of queueing behind a wedged
    executor.  ``state`` is the breaker state that refused the request
    (``open`` while cooling down, ``half-open`` while a recovery probe
    is in flight) and ``retry_after_ms`` hints when the next probe may
    be admitted.
    """

    def __init__(
        self,
        message: str,
        shard_id: int = -1,
        state: str = "open",
        retry_after_ms: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.shard_id = shard_id
        self.state = state
        self.retry_after_ms = retry_after_ms


class LeaseError(ServerError):
    """Base class for checkout-lease protocol violations."""


class LeaseHeldError(LeaseError):
    """Another live session holds the lease on this (library, cell).

    The holder's lease must expire (or be released) before anyone else
    can acquire it; ``retry_after_ms`` is the time until that expiry.
    """

    def __init__(
        self,
        message: str,
        key: str = "",
        holder: str = "",
        retry_after_ms: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.key = key
        self.holder = holder
        self.retry_after_ms = retry_after_ms


class LeaseFencedError(LeaseError):
    """A commit presented a stale or expired fencing token.

    This is the zombie-session guard: a session whose lease expired (and
    was possibly re-granted to a successor with a higher token) cannot
    clobber the successor's work at commit time.  ``token`` is what the
    zombie presented, ``current`` the token the table holds now (``0``
    when the key has no live lease).
    """

    def __init__(
        self,
        message: str,
        key: str = "",
        token: int = 0,
        current: int = 0,
    ) -> None:
        super().__init__(message)
        self.key = key
        self.token = token
        self.current = current
