"""Deterministic identifier allocation.

Benchmarks must be reproducible run-to-run, so all object identifiers in
the reproduction come from per-kind monotone counters instead of UUIDs.
Identifiers look like ``cell:000017`` — the kind prefix makes log output
and error messages self-describing.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator


class IdAllocator:
    """Allocates deterministic, human-readable identifiers per kind."""

    def __init__(self) -> None:
        self._counters: Dict[str, Iterator[int]] = {}

    def allocate(self, kind: str) -> str:
        """Return the next identifier for *kind*, e.g. ``"cell:000001"``."""
        counter = self._counters.setdefault(kind, itertools.count(1))
        return f"{kind}:{next(counter):06d}"

    def observe(self, identifier: str) -> None:
        """Fast-forward the counter of *identifier*'s kind past it.

        Used when restoring persisted objects so freshly allocated ids
        never collide with restored ones.
        """
        kind, _, number_text = identifier.rpartition(":")
        if not kind or not number_text.isdigit():
            raise ValueError(f"malformed identifier: {identifier!r}")
        seen = int(number_text)
        current = self._counters.get(kind)
        # peek at the counter without consuming: rebuild from max
        next_value = next(current) if current is not None else 1
        self._counters[kind] = itertools.count(max(next_value, seen + 1))

    def reset(self) -> None:
        """Forget all counters (used between independent experiments)."""
        self._counters.clear()
