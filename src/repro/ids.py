"""Deterministic identifier allocation and numeric-aware ordering.

Benchmarks must be reproducible run-to-run, so all object identifiers in
the reproduction come from per-kind monotone counters instead of UUIDs.
Identifiers look like ``cell:000017`` — the kind prefix makes log output
and error messages self-describing.

Identifiers are zero-padded to six digits for readability, but the
counters do not stop there: the millionth cell is ``cell:1000000``.
Lexicographic ordering breaks at that point (``"cell:1000000" <
"cell:0999999"``), so every place that orders identifiers must use
:func:`sort_key`, which compares ``(kind, int(n))`` and therefore
survives arbitrarily large counters.
"""

from __future__ import annotations

import itertools
import threading
from functools import lru_cache
from typing import Dict, Iterator, Tuple


@lru_cache(maxsize=1 << 16)
def sort_key(identifier: str) -> Tuple[str, int, str]:
    """Numeric-aware ordering key for allocator-style identifiers.

    ``cell:1000000`` sorts after ``cell:0999999`` (lexicographic order
    would reverse them).  Identifiers that do not look like
    ``kind:number`` still get a total order, keyed on the raw string, so
    mixed collections sort deterministically.
    """
    kind, sep, number_text = identifier.rpartition(":")
    if sep and number_text.isdigit() and number_text.isascii():
        return (kind, int(number_text), identifier)
    return (identifier, -1, identifier)


class IdAllocator:
    """Allocates deterministic, human-readable identifiers per kind."""

    #: re-exported so callers ordering ids need not import the module fn
    sort_key = staticmethod(sort_key)

    def __init__(self) -> None:
        self._counters: Dict[str, Iterator[int]] = {}
        # allocation must stay atomic under the parallel scheduler: two
        # workers allocating the same kind concurrently must never see
        # the same counter value (determinism then comes from *ordering*
        # the allocating sections, see repro.core.gates)
        self._lock = threading.Lock()

    def allocate(self, kind: str) -> str:
        """Return the next identifier for *kind*, e.g. ``"cell:000001"``.

        Numbers beyond 999,999 simply grow past the six-digit padding;
        consumers must order ids with :func:`sort_key`, never
        lexicographically.
        """
        with self._lock:
            counter = self._counters.setdefault(kind, itertools.count(1))
            return f"{kind}:{next(counter):06d}"

    def observe(self, identifier: str) -> None:
        """Fast-forward the counter of *identifier*'s kind past it.

        Used when restoring persisted objects so freshly allocated ids
        never collide with restored ones.  Accepts numbers of any width,
        including the 7+-digit ids allocated past ``kind:999999``.
        """
        kind, _, number_text = identifier.rpartition(":")
        if not kind or not (number_text.isdigit() and number_text.isascii()):
            raise ValueError(f"malformed identifier: {identifier!r}")
        seen = int(number_text)
        with self._lock:
            current = self._counters.get(kind)
            # peek at the counter without consuming: rebuild from max
            next_value = next(current) if current is not None else 1
            self._counters[kind] = itertools.count(max(next_value, seen + 1))

    def reset(self) -> None:
        """Forget all counters (used between independent experiments)."""
        with self._lock:
            self._counters.clear()
