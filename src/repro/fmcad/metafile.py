"""The library ``.meta`` file.

Section 2.2: "The library consists of a UNIX directory and the related
``.meta``-file describes the contents of the directory (metadata)."  Two
consequences matter for the evaluation and are modelled exactly:

* there is **one** ``.meta`` file per library, so concurrent designers
  contend on a single writer lock ("severe locking problems",
  Section 3.1);
* the ``.meta`` content is refreshed **manually** — the in-memory picture
  a designer works with can be stale relative to the directory until they
  refresh (Section 2.2: "it is the responsibility of the designer to keep
  his design up to date").
"""

from __future__ import annotations

import dataclasses
import pathlib
from typing import Dict, List, Optional, Tuple

from repro.errors import MetaFileError

_HEADER = "#FMCAD-META 1"


@dataclasses.dataclass(frozen=True)
class MetaRecord:
    """One line of the ``.meta`` file: one cellview version on disk."""

    cell: str
    view: str
    viewtype: str
    version: int
    filename: str
    author: str
    tick: int

    def to_line(self) -> str:
        return "|".join(
            [
                self.cell,
                self.view,
                self.viewtype,
                str(self.version),
                self.filename,
                self.author,
                str(self.tick),
            ]
        )

    @classmethod
    def from_line(cls, line: str) -> "MetaRecord":
        parts = line.split("|")
        if len(parts) != 7:
            raise MetaFileError(f"malformed .meta record: {line!r}")
        cell, view, viewtype, version, filename, author, tick = parts
        try:
            return cls(
                cell=cell,
                view=view,
                viewtype=viewtype,
                version=int(version),
                filename=filename,
                author=author,
                tick=int(tick),
            )
        except ValueError as exc:
            raise MetaFileError(f"malformed .meta record: {line!r}") from exc


class MetaFile:
    """Reader/writer for a library's single ``.meta`` file.

    A cooperative single-writer lock models the coordination burden: a
    writer must :meth:`acquire` before :meth:`write`; concurrent acquire
    attempts fail and are counted as contention events, which the
    Section 3.1 experiment aggregates.
    """

    def __init__(self, path: pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self._writer: Optional[str] = None
        #: contention accounting for bench_multiuser
        self.contended_acquires = 0
        self.total_acquires = 0

    # -- locking -------------------------------------------------------------

    @property
    def writer(self) -> Optional[str]:
        """User currently holding the writer lock, if any."""
        return self._writer

    def acquire(self, user: str) -> bool:
        """Try to take the writer lock; False (and a contention tick) if held."""
        self.total_acquires += 1
        if self._writer is not None and self._writer != user:
            self.contended_acquires += 1
            return False
        self._writer = user
        return True

    def release(self, user: str) -> None:
        if self._writer != user:
            raise MetaFileError(
                f".meta writer lock held by {self._writer!r}, not {user!r}"
            )
        self._writer = None

    # -- I/O -----------------------------------------------------------------

    def write(self, records: List[MetaRecord], tick: int, user: str) -> None:
        """Serialise *records*; caller must hold the writer lock."""
        if self._writer != user:
            raise MetaFileError(
                f"write to .meta without the writer lock (held by "
                f"{self._writer!r}, writer {user!r})"
            )
        lines = [_HEADER, f"tick={tick}"]
        lines.extend(
            record.to_line()
            for record in sorted(
                records, key=lambda r: (r.cell, r.view, r.version)
            )
        )
        self.path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    def read(self) -> Tuple[List[MetaRecord], int]:
        """Parse the ``.meta`` file; returns (records, tick)."""
        if not self.path.exists():
            return [], 0
        lines = self.path.read_text(encoding="utf-8").splitlines()
        if not lines or lines[0] != _HEADER:
            raise MetaFileError(f"{self.path}: missing {_HEADER!r} header")
        if len(lines) < 2 or not lines[1].startswith("tick="):
            raise MetaFileError(f"{self.path}: missing tick line")
        try:
            tick = int(lines[1][len("tick="):])
        except ValueError as exc:
            raise MetaFileError(f"{self.path}: bad tick line {lines[1]!r}") from exc
        records = [MetaRecord.from_line(line) for line in lines[2:] if line]
        return records, tick

    def tick(self) -> int:
        """The tick recorded in the on-disk file (0 when absent)."""
        return self.read()[1]

    def index(self) -> Dict[Tuple[str, str, int], MetaRecord]:
        """Records keyed by (cell, view, version)."""
        records, _ = self.read()
        return {(r.cell, r.view, r.version): r for r in records}
