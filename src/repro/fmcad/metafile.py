"""The library ``.meta`` file.

Section 2.2: "The library consists of a UNIX directory and the related
``.meta``-file describes the contents of the directory (metadata)."  Two
consequences matter for the evaluation and are modelled exactly:

* there is **one** ``.meta`` file per library, so concurrent designers
  contend on a single writer lock ("severe locking problems",
  Section 3.1);
* the ``.meta`` content is refreshed **manually** — the in-memory picture
  a designer works with can be stale relative to the directory until they
  refresh (Section 2.2: "it is the responsibility of the designer to keep
  his design up to date").
"""

from __future__ import annotations

import dataclasses
import hashlib
import pathlib
from typing import Dict, List, Optional, Tuple

from repro.errors import MetaFileError, MetaIntegrityError
from repro.faults import corruption_point
from repro.oms import durable

_HEADER = "#FMCAD-META 1"
#: version 2 adds a per-record content digest column and a whole-file
#: checksum trailer; version-1 files (no digests, no trailer) still read
_HEADER_V2 = "#FMCAD-META 2"
_TRAILER_PREFIX = b"#sha256="


@dataclasses.dataclass(frozen=True)
class MetaRecord:
    """One line of the ``.meta`` file: one cellview version on disk.

    ``digest`` is the SHA-256 content address of the version file the
    record describes — empty for records read from version-1 files that
    predate verified reads.
    """

    cell: str
    view: str
    viewtype: str
    version: int
    filename: str
    author: str
    tick: int
    digest: str = ""

    def to_line(self) -> str:
        return "|".join(
            [
                self.cell,
                self.view,
                self.viewtype,
                str(self.version),
                self.filename,
                self.author,
                str(self.tick),
                self.digest,
            ]
        )

    @classmethod
    def from_line(cls, line: str) -> "MetaRecord":
        parts = line.split("|")
        if len(parts) == 7:
            parts = parts + [""]  # version-1 record: no digest column
        if len(parts) != 8:
            raise MetaFileError(f"malformed .meta record: {line!r}")
        cell, view, viewtype, version, filename, author, tick, digest = parts
        try:
            return cls(
                cell=cell,
                view=view,
                viewtype=viewtype,
                version=int(version),
                filename=filename,
                author=author,
                tick=int(tick),
                digest=digest,
            )
        except ValueError as exc:
            raise MetaFileError(f"malformed .meta record: {line!r}") from exc


class MetaFile:
    """Reader/writer for a library's single ``.meta`` file.

    A cooperative single-writer lock models the coordination burden: a
    writer must :meth:`acquire` before :meth:`write`; concurrent acquire
    attempts fail and are counted as contention events, which the
    Section 3.1 experiment aggregates.
    """

    def __init__(self, path: pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self._writer: Optional[str] = None
        #: contention accounting for bench_multiuser
        self.contended_acquires = 0
        self.total_acquires = 0

    # -- locking -------------------------------------------------------------

    @property
    def writer(self) -> Optional[str]:
        """User currently holding the writer lock, if any."""
        return self._writer

    def acquire(self, user: str) -> bool:
        """Try to take the writer lock; False (and a contention tick) if held."""
        self.total_acquires += 1
        if self._writer is not None and self._writer != user:
            self.contended_acquires += 1
            return False
        self._writer = user
        return True

    def release(self, user: str) -> None:
        if self._writer != user:
            raise MetaFileError(
                f".meta writer lock held by {self._writer!r}, not {user!r}"
            )
        self._writer = None

    # -- I/O -----------------------------------------------------------------

    def write(self, records: List[MetaRecord], tick: int, user: str) -> None:
        """Serialise *records*; caller must hold the writer lock.

        The file is written version-2: a whole-file checksum trailer
        (``#sha256=<hex>;bytes=<n>`` over everything before it) makes
        torn writes and bit-rot detectable, and the bytes land via a
        temp-file + atomic rename so a crash mid-write can never leave a
        half-written ``.meta`` poisoning the whole library — readers see
        either the old complete file or the new complete file.
        """
        if self._writer != user:
            raise MetaFileError(
                f"write to .meta without the writer lock (held by "
                f"{self._writer!r}, writer {user!r})"
            )
        lines = [_HEADER_V2, f"tick={tick}"]
        lines.extend(
            record.to_line()
            for record in sorted(
                records, key=lambda r: (r.cell, r.view, r.version)
            )
        )
        body = ("\n".join(lines) + "\n").encode("utf-8")
        trailer = (
            _TRAILER_PREFIX
            + hashlib.sha256(body).hexdigest().encode("ascii")
            + b";bytes=%d\n" % len(body)
        )
        encoded = corruption_point("fmcad.meta", body + trailer)
        # fsync-then-rename through the shared durability helper: the
        # temp file is flushed before the atomic rename and the directory
        # entry after it, so a power cut can never publish a .meta whose
        # bytes are still in the page cache ("relaxed" mode skips both
        # fsyncs but keeps the same write sequence)
        durable.atomic_replace(self.path, encoded)

    def read(self) -> Tuple[List[MetaRecord], int]:
        """Parse the ``.meta`` file; returns (records, tick).

        Version-2 files carry a checksum trailer which is verified here:
        a mismatch raises :class:`MetaIntegrityError` classified as
        truncation (content shorter than recorded), torn-write (longer
        or structurally wrong), or bit-rot (same length, wrong hash).
        Version-1 files have no trailer and parse as before.
        """
        if not self.path.exists():
            return [], 0
        raw = self.path.read_bytes()
        body = self._verified_body(raw)
        lines = body.decode("utf-8", errors="replace").splitlines()
        if not lines or lines[0] not in (_HEADER, _HEADER_V2):
            raise MetaFileError(f"{self.path}: missing {_HEADER!r} header")
        if len(lines) < 2 or not lines[1].startswith("tick="):
            raise MetaFileError(f"{self.path}: missing tick line")
        try:
            tick = int(lines[1][len("tick="):])
        except ValueError as exc:
            raise MetaFileError(f"{self.path}: bad tick line {lines[1]!r}") from exc
        records = [
            MetaRecord.from_line(line)
            for line in lines[2:]
            if line and not line.startswith("#")
        ]
        return records, tick

    def _verified_body(self, raw: bytes) -> bytes:
        """Strip and verify the checksum trailer; returns the body bytes.

        A version-2 header promises a trailer, so its absence is itself a
        truncation finding.  Version-1 files are passed through whole.
        """
        idx = raw.rfind(b"\n" + _TRAILER_PREFIX)
        trailer = b""
        if raw.startswith(_TRAILER_PREFIX):  # pathological: trailer only
            idx, trailer, raw_body = -1, raw, b""
        elif idx != -1:
            raw_body, trailer = raw[:idx + 1], raw[idx + 1:]
        else:
            raw_body = raw
        if not trailer:
            if raw.startswith(_HEADER_V2.encode("ascii")):
                raise MetaIntegrityError(
                    f"{self.path}: version-2 .meta is missing its checksum "
                    "trailer",
                    location=str(self.path),
                    classification="truncation",
                )
            return raw  # version-1 (or older) file: nothing to verify
        fields = trailer[len(_TRAILER_PREFIX):].strip().split(b";bytes=")
        if len(fields) != 2:
            raise MetaIntegrityError(
                f"{self.path}: unparseable checksum trailer",
                location=str(self.path),
                classification="torn-write",
            )
        try:
            expected_hex = fields[0].decode("ascii")
            expected_len = int(fields[1])
        except (UnicodeDecodeError, ValueError) as exc:
            raise MetaIntegrityError(
                f"{self.path}: unparseable checksum trailer",
                location=str(self.path),
                classification="torn-write",
            ) from exc
        if hashlib.sha256(raw_body).hexdigest() != expected_hex:
            if len(raw_body) < expected_len:
                classification = "truncation"
            elif len(raw_body) > expected_len:
                classification = "torn-write"
            else:
                classification = "bit-rot"
            raise MetaIntegrityError(
                f"{self.path}: .meta content fails its checksum "
                f"({classification}; {len(raw_body)} bytes, recorded "
                f"{expected_len})",
                location=str(self.path),
                classification=classification,
            )
        return raw_body

    def verify(self) -> Optional[str]:
        """Damage classification of the on-disk file, ``None`` if clean.

        Structural damage an integrity check cannot name more precisely
        (a broken header, a malformed record in a version-1 file) is
        reported as torn-write — the scrubber treats both the same way.
        """
        try:
            self.read()
        except MetaIntegrityError as exc:
            return exc.classification or "torn-write"
        except MetaFileError:
            return "torn-write"
        return None

    def tick(self) -> int:
        """The tick recorded in the on-disk file (0 when absent)."""
        return self.read()[1]

    def index(self) -> Dict[Tuple[str, str, int], MetaRecord]:
        """Records keyed by (cell, view, version)."""
        records, _ = self.read()
        return {(r.cell, r.view, r.version): r for r in records}
