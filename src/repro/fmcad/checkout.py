"""The FMCAD checkout/checkin concurrency model.

Section 2.2: "the concurrent access to a cellview object is controlled by
a checkin/checkout model. ... Only one version of a cellview can be
checked-out at a time.  This means that only one user can change a
cellview at a time.  It is not possible for two users to work on two
different versions of a cellview in parallel."

That single-writer-per-cellview rule — and the lock-wait it induces — is
exactly what the Section 3.1 experiment contrasts with JCF's workspace
reservation, so the manager counts every denied checkout.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pathlib
from typing import Callable, Dict, List, Optional

from repro.errors import CheckoutError, LockedError
from repro.faults import fault_point
from repro.fmcad.library import Library
from repro.fmcad.objects import CellView, CellViewVersion
from repro.oms.zerocopy import (
    METHOD_REFLINK,
    clone_file,
    probe_capabilities,
)


@dataclasses.dataclass
class CheckoutTicket:
    """A live checkout: one user's exclusive write claim on a cellview."""

    user: str
    library_name: str
    cell_name: str
    view_name: str
    base_version: Optional[int]
    working_path: pathlib.Path
    open: bool = True

    @property
    def cellview_key(self) -> str:
        return f"{self.library_name}:{self.cell_name}/{self.view_name}"


class CheckoutManager:
    """Enforces the one-checkout-per-cellview rule across a set of libraries."""

    def __init__(
        self,
        workdir: pathlib.Path,
        library_resolver: Optional[Callable[[str], Library]] = None,
    ) -> None:
        self.workdir = pathlib.Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        #: maps a ticket's ``library_name`` back to the Library, so
        #: recovery can cancel tickets it only knows by name
        self._library_resolver = library_resolver
        self._active: Dict[str, CheckoutTicket] = {}
        #: optional commit-time fence installed by a serving layer; called
        #: with (ticket, library) before a checkin writes its version, so
        #: a session whose server-side lease was superseded cannot commit
        self._checkin_guard: Optional[
            Callable[[CheckoutTicket, Library], None]
        ] = None
        #: accounting for bench_multiuser
        self.denied_checkouts = 0
        self.granted_checkouts = 0
        #: leftover working files revalidated by digest instead of re-copied
        self.validated_working_files = 0
        #: working files materialised by cloning the version file
        #: in-kernel (reflink / copy_file_range) instead of a userspace copy
        self.cloned_working_files = 0

    def set_checkin_guard(
        self,
        guard: Optional[Callable[[CheckoutTicket, Library], None]],
    ) -> None:
        """Install (or clear) the commit-time fence for served checkins.

        The guard raises to veto the commit *before* any version is
        written — the ticket stays open, the working file survives, and
        the cellview lock is untouched, so the refusal needs no repair.
        """
        self._checkin_guard = guard

    # -- queries ----------------------------------------------------------------

    def holder_of(self, library: Library, cellview: CellView) -> Optional[str]:
        key = f"{library.name}:{cellview.name}"
        ticket = self._active.get(key)
        return ticket.user if ticket else None

    def active_tickets(self) -> List[CheckoutTicket]:
        return [self._active[key] for key in sorted(self._active)]

    # -- protocol ----------------------------------------------------------------

    def checkout(
        self, user: str, library: Library, cell_name: str, view_name: str
    ) -> CheckoutTicket:
        """Take the exclusive write claim on a cellview.

        The current default version is copied to a private working file.
        Raises :class:`LockedError` when any other user holds the
        cellview — there is no queueing, matching FMCAD's behaviour of
        simply refusing.
        """
        cellview = library.cellview(cell_name, view_name)
        key = f"{library.name}:{cellview.name}"
        existing = self._active.get(key)
        if existing is not None:
            self.denied_checkouts += 1
            library.clock.charge_lock_wait()
            raise LockedError(
                f"cellview {cellview.name} in {library.name} is checked out "
                f"by {existing.user!r}"
            )
        base = cellview.default_version
        working_path = (
            self.workdir / user / library.name / cell_name / f"{view_name}.work"
        )
        working_path.parent.mkdir(parents=True, exist_ok=True)
        if base is not None:
            # a leftover working file (e.g. from a crashed session) whose
            # digest still matches the base version needs no re-copy
            if (
                working_path.exists()
                and hashlib.sha256(working_path.read_bytes()).hexdigest()
                == base.content_digest()
            ):
                library.clock.charge_native_io(0, files=1)
                self.validated_working_files += 1
            else:
                method = self._clone_working_file(base, working_path)
                if method == METHOD_REFLINK:
                    # extents shared copy-on-write: no bytes moved, the
                    # private inode appears for a metadata-sized cost
                    library.clock.charge_native_io(0, files=1)
                    self.cloned_working_files += 1
                elif method is not None:
                    # in-kernel block copy — physically the same traffic
                    # as the old userspace copy, so the charge matches
                    library.clock.charge_native_io(base.size, files=1)
                    self.cloned_working_files += 1
                else:
                    data = base.read_data()
                    working_path.write_bytes(data)
                    library.clock.charge_native_io(len(data), files=1)
        else:
            working_path.write_bytes(b"")
            library.clock.charge_native_io(0, files=1)
        ticket = CheckoutTicket(
            user=user,
            library_name=library.name,
            cell_name=cell_name,
            view_name=view_name,
            base_version=base.number if base else None,
            working_path=working_path,
        )
        self._active[key] = ticket
        cellview.locked_by = user
        self.granted_checkouts += 1
        fault_point("checkout.after_grant")
        return ticket

    def checkin(
        self,
        ticket: CheckoutTicket,
        library: Library,
        data: Optional[bytes] = None,
    ) -> CellViewVersion:
        """Commit the working file as a new cellview version and unlock.

        When *data* is given it replaces the working-file content (the
        tool's saved result); otherwise the working file as-is is used.
        """
        self._require_open(ticket)
        cellview = library.cellview(ticket.cell_name, ticket.view_name)
        if cellview.locked_by != ticket.user:
            raise CheckoutError(
                f"checkin by {ticket.user!r} but cellview {cellview.name} "
                f"is locked by {cellview.locked_by!r}"
            )
        if data is None:
            data = ticket.working_path.read_bytes()
        if self._checkin_guard is not None:
            self._checkin_guard(ticket, library)
        version = library.write_version(cellview, data, author=ticket.user)
        # the version file now exists but the ticket is still open — a
        # crash here is the classic half-checkin recovery must repair
        fault_point("checkout.after_checkin")
        self._close(ticket, cellview)
        return version

    def cancel(
        self, ticket: CheckoutTicket, library: Optional[Library] = None
    ) -> None:
        """Abandon a checkout without creating a version.

        *library* may be omitted when the manager was built with a
        library resolver — the failure paths and crash recovery only
        hold the ticket, not the Library object it came from.
        """
        self._require_open(ticket)
        if library is None:
            if self._library_resolver is None:
                raise CheckoutError(
                    f"cancel of {ticket.cellview_key} needs a Library: no "
                    "resolver configured"
                )
            library = self._library_resolver(ticket.library_name)
        cellview = library.cellview(ticket.cell_name, ticket.view_name)
        self._close(ticket, cellview)

    # -- internals ------------------------------------------------------------------

    def _clone_working_file(
        self, base: CellViewVersion, working_path: pathlib.Path
    ) -> Optional[str]:
        """Clone the base version file onto the working path in-kernel.

        Returns the clone method, or ``None`` when the caller should
        fall back to the read+write copy — the version file is missing,
        or the filesystem offers neither reflink nor ``copy_file_range``
        (a plain userspace clone would be the fallback's job anyway).
        The working file always lands on a private inode, so tool edits
        can never reach back into the library's version file.
        """
        if not base.path.exists():
            return None
        caps = probe_capabilities(self.workdir)
        if not (caps.reflink or caps.copy_range):
            return None
        try:
            return clone_file(base.path, working_path, caps)
        except OSError:  # pragma: no cover - clone refused mid-flight
            return None

    def _require_open(self, ticket: CheckoutTicket) -> None:
        if not ticket.open:
            raise CheckoutError(
                f"ticket for {ticket.cellview_key} is already closed"
            )
        if ticket.cellview_key not in self._active:
            raise CheckoutError(
                f"no active checkout for {ticket.cellview_key}"
            )

    def _close(self, ticket: CheckoutTicket, cellview: CellView) -> None:
        ticket.open = False
        cellview.locked_by = None
        self._active.pop(ticket.cellview_key, None)
        if ticket.working_path.exists():
            ticket.working_path.unlink()

    # -- statistics -------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "active": len(self._active),
            "granted": self.granted_checkouts,
            "denied": self.denied_checkouts,
            "validated_working_files": self.validated_working_files,
            "cloned_working_files": self.cloned_working_files,
        }
