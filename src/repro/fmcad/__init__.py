"""FMCAD — simulator of the "widespread ECAD framework" of the paper.

The paper leaves the framework pseudonymous ("FMCAD"), but its description
— libraries as UNIX directories with one ``.meta`` file, cells / views /
viewtypes / cellviews / cellview versions, a checkout/checkin concurrency
model, a flexible extension language, inter-tool communication with
cross-probing, and viewtype-dependent (non-isomorphic) hierarchies — is
recognisably the CADENCE Design Framework II generation of ECAD
frameworks.  This package implements that architecture (Figure 2 of the
paper) faithfully, including its documented weaknesses:

* one ``.meta`` file per library, refreshed **manually** (Section 2.2:
  "the refreshment of the metadata objects is not performed
  automatically"), so concurrent designers see stale metadata;
* only one checked-out version per cellview at a time — no parallel work
  on two versions of the same cellview (Section 2.2);
* dynamic hierarchy binding to the default version, so derivation history
  ("what belongs to what") is not recorded (Section 2.2 / 3.5).
"""

from repro.fmcad.metafile import MetaFile, MetaRecord
from repro.fmcad.objects import (
    Cell,
    CellView,
    CellViewVersion,
    View,
    ViewType,
    VIEWTYPE_LAYOUT,
    VIEWTYPE_SCHEMATIC,
    VIEWTYPE_SYMBOL,
    VIEWTYPE_SIMULATION,
)
from repro.fmcad.properties import PropertyBag
from repro.fmcad.library import Library
from repro.fmcad.checkout import CheckoutManager, CheckoutTicket
from repro.fmcad.configurations import FMCADConfiguration
from repro.fmcad.itc import ITCBus, ITCMessage, CrossProbe
from repro.fmcad.extension import ExtensionInterpreter, ExtensionProcedure
from repro.fmcad.session import MenuPoint, ToolSession
from repro.fmcad.framework import FMCADFramework

__all__ = [
    "MetaFile",
    "MetaRecord",
    "Cell",
    "CellView",
    "CellViewVersion",
    "View",
    "ViewType",
    "VIEWTYPE_LAYOUT",
    "VIEWTYPE_SCHEMATIC",
    "VIEWTYPE_SYMBOL",
    "VIEWTYPE_SIMULATION",
    "PropertyBag",
    "Library",
    "CheckoutManager",
    "CheckoutTicket",
    "FMCADConfiguration",
    "ITCBus",
    "ITCMessage",
    "CrossProbe",
    "ExtensionInterpreter",
    "ExtensionProcedure",
    "MenuPoint",
    "ToolSession",
    "FMCADFramework",
]
