"""Logical design objects of the FMCAD data model (Figure 2).

The named object kinds follow Section 2.2 verbatim:

* **Cell** — the basic logical design object, a building block of a chip.
* **View** — one type of representation (schematic, layout, ...), of one
  specific *viewtype*; the viewtype associates the view with an FMCAD
  application.
* **Cellview** — the virtual data file created in association with a cell
  and a view; more logical than physical.
* **Cellview version** — the data file of a cellview at a particular time;
  created by checkout/checkin; models the link to the design file.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pathlib
from typing import Dict, List, Optional

from repro.errors import FMCADError, ViewTypeError
from repro.fmcad.properties import PersistentPropertyBag, PropertyBag


@dataclasses.dataclass(frozen=True)
class ViewType:
    """Associates views with an FMCAD application (Section 2.2).

    The viewtype concept "is very flexible and it allows viewtypes to be
    easily switched with the same tool", so the tool association is a
    name, not a hard reference.
    """

    name: str
    tool_name: str
    description: str = ""


#: The viewtypes the 1995 encapsulation scenario uses (Section 2.4).
VIEWTYPE_SCHEMATIC = ViewType(
    "schematic", "schematic_editor", "logic diagram entered by the designer"
)
VIEWTYPE_SYMBOL = ViewType(
    "symbol", "schematic_editor", "re-usable symbol placed in parent schematics"
)
VIEWTYPE_LAYOUT = ViewType(
    "layout", "layout_editor", "mask geometry of the physical design"
)
VIEWTYPE_SIMULATION = ViewType(
    "simulation", "digital_simulator", "netlist plus stimuli for simulation"
)

#: Viewtypes used by black-box encapsulated flows (e.g. the FPGA flow of
#: [Seep94b], which the same group modelled in JCF).  Their data formats
#: are opaque to the framework — exactly the black-box integration level.
VIEWTYPE_NETLIST = ViewType(
    "netlist", "synthesis_tool", "synthesised gate-level netlist"
)
VIEWTYPE_PLACEMENT = ViewType(
    "placement", "place_route_tool", "placed-and-routed FPGA design"
)
VIEWTYPE_BITSTREAM = ViewType(
    "bitstream", "bitstream_tool", "downloadable FPGA configuration"
)

#: name -> ViewType for the standard set
STANDARD_VIEWTYPES: Dict[str, ViewType] = {
    vt.name: vt
    for vt in (
        VIEWTYPE_SCHEMATIC,
        VIEWTYPE_SYMBOL,
        VIEWTYPE_LAYOUT,
        VIEWTYPE_SIMULATION,
        VIEWTYPE_NETLIST,
        VIEWTYPE_PLACEMENT,
        VIEWTYPE_BITSTREAM,
    )
}


def resolve_viewtype(name: str) -> ViewType:
    """Look up a standard viewtype by name."""
    try:
        return STANDARD_VIEWTYPES[name]
    except KeyError:
        raise ViewTypeError(
            f"unknown viewtype {name!r}; known: {sorted(STANDARD_VIEWTYPES)}"
        ) from None


@dataclasses.dataclass(frozen=True)
class View:
    """A named representation type; logical design object."""

    name: str
    viewtype: ViewType


class CellViewVersion:
    """The data file of a cellview at a particular time.

    ``path`` is the real file in the library directory — FMCAD versions
    are physical files, unlike JCF versions which live inside OMS.
    """

    def __init__(
        self,
        number: int,
        path: pathlib.Path,
        created_tick: int,
        author: str,
    ) -> None:
        self.number = number
        self.path = pathlib.Path(path)
        self.created_tick = created_tick
        self.author = author
        # version files are immutable once written, so their content
        # digest can be cached; Library.write_version sets it eagerly and
        # Library.open seeds it from the .meta record, which is what makes
        # verified reads possible after a restart
        self._content_digest: Optional[str] = None
        # pristine byte count at write time; lets a digest mismatch be
        # classified (truncation vs torn write vs bit-rot).  Unknown for
        # versions reconstructed from .meta, where mismatches default to
        # the bit-rot class
        self._content_size: Optional[int] = None
        # properties live next to the design file and survive restarts
        self.properties = PersistentPropertyBag(
            self.path.with_name(self.path.name + ".props")
        )

    def read_data(self) -> bytes:
        """Read the design file for this version."""
        if not self.path.exists():
            raise FMCADError(f"version file missing: {self.path}")
        return self.path.read_bytes()

    def content_digest(self) -> str:
        """Content address of the version file (cached after first read)."""
        if self._content_digest is None:
            self._content_digest = hashlib.sha256(self.read_data()).hexdigest()
        return self._content_digest

    def classify_damage(self, data: bytes) -> Optional[str]:
        """``None`` when *data* matches the known digest, else a class.

        Without a known digest (a version whose ``.meta`` record predates
        the digest column) there is nothing to hold the bytes against, so
        the answer is ``None`` — trust-on-first-read, the same boundary
        the store had everywhere before verified reads existed.
        """
        expected = self._content_digest
        if expected is None:
            return None
        if hashlib.sha256(data).hexdigest() == expected:
            return None
        if self._content_size is not None:
            if len(data) < self._content_size:
                return "truncation"
            if len(data) > self._content_size:
                return "torn-write"
        return "bit-rot"

    def verify(self) -> Optional[str]:
        """Damage classification of the on-disk file, ``None`` if clean."""
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return "missing" if self._content_digest is not None else None
        return self.classify_damage(data)

    @property
    def size(self) -> int:
        return self.path.stat().st_size if self.path.exists() else 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CellViewVersion v{self.number} {self.path.name}>"


class CellView:
    """A virtual data file associated with a cell and a view.

    Holds the version chain and the *default version* — the version that
    dynamic hierarchy binding resolves to (Section 2.2), which is why
    FMCAD alone cannot reconstruct what-belongs-to-what history.
    """

    def __init__(self, cell_name: str, view: View) -> None:
        self.cell_name = cell_name
        self.view = view
        self.versions: List[CellViewVersion] = []
        self.properties = PropertyBag()
        #: set by CheckoutManager; mirrors Figure 2's "Locked Flag".
        self.locked_by: Optional[str] = None

    @property
    def name(self) -> str:
        return f"{self.cell_name}/{self.view.name}"

    @property
    def viewtype(self) -> ViewType:
        return self.view.viewtype

    @property
    def default_version(self) -> Optional[CellViewVersion]:
        """The newest version — what dynamic binding resolves to."""
        return self.versions[-1] if self.versions else None

    def version(self, number: int) -> CellViewVersion:
        for v in self.versions:
            if v.number == number:
                return v
        raise FMCADError(f"cellview {self.name}: no version {number}")

    def next_version_number(self) -> int:
        return self.versions[-1].number + 1 if self.versions else 1

    def add_version(self, version: CellViewVersion) -> None:
        if self.versions and version.number <= self.versions[-1].number:
            raise FMCADError(
                f"cellview {self.name}: version {version.number} does not "
                f"advance past {self.versions[-1].number}"
            )
        self.versions.append(version)

    def remove_version(self, number: int) -> CellViewVersion:
        """Drop the version record *number* from the chain.

        Metadata-only: the version file stays on disk — callers that
        mean to destroy data go through ``Library.drop_version``, which
        also removes the file and the property sidecar.
        """
        version = self.version(number)  # raises when absent
        self.versions.remove(version)
        return version

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CellView {self.name} versions={len(self.versions)}>"


class Cell:
    """The basic logical design object; owns one or more cellviews."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._cellviews: Dict[str, CellView] = {}
        self.properties = PropertyBag()

    def add_cellview(self, cellview: CellView) -> CellView:
        if cellview.view.name in self._cellviews:
            raise FMCADError(
                f"cell {self.name!r} already has a cellview for view "
                f"{cellview.view.name!r}"
            )
        self._cellviews[cellview.view.name] = cellview
        return cellview

    def cellview(self, view_name: str) -> CellView:
        try:
            return self._cellviews[view_name]
        except KeyError:
            raise FMCADError(
                f"cell {self.name!r} has no cellview for view {view_name!r}"
            ) from None

    def has_cellview(self, view_name: str) -> bool:
        return view_name in self._cellviews

    def cellviews(self) -> List[CellView]:
        return [self._cellviews[name] for name in sorted(self._cellviews)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Cell {self.name} views={sorted(self._cellviews)}>"
