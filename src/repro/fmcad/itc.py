"""Inter-tool communication (ITC).

Section 2.2: "FMCAD provides all necessary interfaces and inter-tool
communication (ITC), e.g., cross-probing between the schematic editor and
layout editor."  Section 2.4 adds that under the coupling, "FMCAD's ITC
could not be used normally" and had to be mediated by special wrappers —
modelled here as interceptors that may veto or annotate messages.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ITCError


@dataclasses.dataclass(frozen=True)
class ITCMessage:
    """One message on the bus."""

    sender: str
    topic: str
    payload: Dict[str, Any]
    sequence: int


#: An interceptor inspects a message before delivery.  It returns either
#: the (possibly replaced) message to deliver, or None to veto delivery.
Interceptor = Callable[[ITCMessage], Optional[ITCMessage]]

#: A subscriber handler receives the delivered message.
Handler = Callable[[ITCMessage], None]


class ITCBus:
    """Topic-based publish/subscribe between running tool sessions."""

    def __init__(self) -> None:
        self._subscriptions: Dict[str, List[Tuple[str, Handler]]] = {}
        self._interceptors: List[Interceptor] = []
        self._sequence = 0
        self.delivered: List[ITCMessage] = []
        self.vetoed: List[ITCMessage] = []

    # -- membership ------------------------------------------------------------

    def subscribe(self, session_id: str, topic: str, handler: Handler) -> None:
        """Register *handler* of *session_id* for messages on *topic*."""
        subscribers = self._subscriptions.setdefault(topic, [])
        if any(sid == session_id for sid, _ in subscribers):
            raise ITCError(
                f"session {session_id!r} already subscribed to {topic!r}"
            )
        subscribers.append((session_id, handler))

    def unsubscribe(self, session_id: str, topic: str) -> None:
        subscribers = self._subscriptions.get(topic, [])
        remaining = [(sid, h) for sid, h in subscribers if sid != session_id]
        if len(remaining) == len(subscribers):
            raise ITCError(
                f"session {session_id!r} is not subscribed to {topic!r}"
            )
        self._subscriptions[topic] = remaining

    def subscribers(self, topic: str) -> List[str]:
        return [sid for sid, _ in self._subscriptions.get(topic, [])]

    # -- wrapper mediation (Section 2.4) ------------------------------------------

    def add_interceptor(self, interceptor: Interceptor) -> None:
        """Install a coupling-wrapper interceptor on all traffic."""
        self._interceptors.append(interceptor)

    # -- messaging -------------------------------------------------------------------

    def publish(
        self, sender: str, topic: str, payload: Dict[str, Any]
    ) -> Optional[ITCMessage]:
        """Send a message; returns the delivered message or None if vetoed.

        Delivery skips the sender's own subscription (a tool does not
        cross-probe itself).
        """
        self._sequence += 1
        message = ITCMessage(
            sender=sender, topic=topic, payload=dict(payload),
            sequence=self._sequence,
        )
        for interceptor in self._interceptors:
            replacement = interceptor(message)
            if replacement is None:
                self.vetoed.append(message)
                return None
            message = replacement
        for session_id, handler in self._subscriptions.get(topic, []):
            if session_id != sender:
                handler(message)
        self.delivered.append(message)
        return message


class CrossProbe:
    """Cross-probing helper between two tool sessions.

    Selecting an object in the source tool highlights the corresponding
    object in the target tool (schematic net -> layout shapes and back).
    """

    TOPIC = "crossprobe"

    def __init__(self, bus: ITCBus, session_id: str) -> None:
        self.bus = bus
        self.session_id = session_id
        self.highlighted: List[str] = []
        bus.subscribe(session_id, self.TOPIC, self._on_probe)

    def _on_probe(self, message: ITCMessage) -> None:
        target = message.payload.get("object")
        if target:
            self.highlighted.append(str(target))

    def probe(self, object_name: str) -> Optional[ITCMessage]:
        """Announce a selection so peer tools highlight *object_name*."""
        return self.bus.publish(
            self.session_id, self.TOPIC, {"object": object_name}
        )
