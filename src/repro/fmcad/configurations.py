"""FMCAD configurations.

Section 2.2: "A configuration is a collection of cellview versions that
are related.  For each cellview, at maximum one version can be part of
the configuration."
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import FMCADError
from repro.fmcad.library import Library
from repro.fmcad.objects import CellViewVersion


class FMCADConfiguration:
    """A named pin-down of at most one version per cellview."""

    def __init__(self, name: str, library: Library) -> None:
        self.name = name
        self.library = library
        #: (cell, view) -> version number
        self._entries: Dict[Tuple[str, str], int] = {}

    def add(self, cell_name: str, view_name: str, version_number: int) -> None:
        """Pin *version_number* of a cellview into the configuration."""
        cellview = self.library.cellview(cell_name, view_name)
        cellview.version(version_number)  # validates existence
        key = (cell_name, view_name)
        if key in self._entries:
            raise FMCADError(
                f"configuration {self.name!r} already pins "
                f"{cell_name}/{view_name} (at most one version per cellview)"
            )
        self._entries[key] = version_number

    def replace(self, cell_name: str, view_name: str, version_number: int) -> None:
        """Re-pin a cellview to a different version."""
        key = (cell_name, view_name)
        if key not in self._entries:
            raise FMCADError(
                f"configuration {self.name!r} does not pin "
                f"{cell_name}/{view_name}"
            )
        self.library.cellview(cell_name, view_name).version(version_number)
        self._entries[key] = version_number

    def remove(self, cell_name: str, view_name: str) -> None:
        key = (cell_name, view_name)
        if key not in self._entries:
            raise FMCADError(
                f"configuration {self.name!r} does not pin "
                f"{cell_name}/{view_name}"
            )
        del self._entries[key]

    def version_of(self, cell_name: str, view_name: str) -> Optional[int]:
        return self._entries.get((cell_name, view_name))

    def resolve(self) -> List[CellViewVersion]:
        """All pinned versions, as live objects (stable order)."""
        resolved: List[CellViewVersion] = []
        for (cell_name, view_name), number in sorted(self._entries.items()):
            cellview = self.library.cellview(cell_name, view_name)
            resolved.append(cellview.version(number))
        return resolved

    def entries(self) -> Dict[Tuple[str, str], int]:
        return dict(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def validate(self) -> List[str]:
        """List pins whose version files no longer exist."""
        problems: List[str] = []
        for (cell_name, view_name), number in sorted(self._entries.items()):
            try:
                version = self.library.cellview(cell_name, view_name).version(
                    number
                )
            except FMCADError:
                problems.append(f"{cell_name}/{view_name} v{number}: gone")
                continue
            if not version.path.exists():
                problems.append(
                    f"{cell_name}/{view_name} v{number}: file missing"
                )
        return problems
