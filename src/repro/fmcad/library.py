"""FMCAD libraries: UNIX directories of design files plus one ``.meta``.

The library is the unit of design-data storage in FMCAD (Section 2.2) —
there is no common database.  Version files are real files under the
library directory; metadata lives in the single ``.meta`` file and in
memory, and the two are reconciled only when a designer refreshes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pathlib
from typing import Dict, List, Optional, Tuple

from repro.clock import SimClock
from repro.errors import IntegrityError, LibraryError, MetaFileError
from repro.faults import corruption_point
from repro.fmcad.metafile import MetaFile, MetaRecord
from repro.oms import durable
from repro.fmcad.objects import (
    Cell,
    CellView,
    CellViewVersion,
    View,
    resolve_viewtype,
)


@dataclasses.dataclass(frozen=True)
class MetaSnapshot:
    """A designer's cached picture of a library's metadata.

    FMCAD does not push metadata updates (Section 2.2); designers work
    from a snapshot taken at refresh time and are responsible for
    re-refreshing.  ``bench_multiuser`` counts how often stale snapshots
    would have misled a designer.
    """

    library_name: str
    tick: int
    records: Tuple[MetaRecord, ...]

    def is_stale(self, library: "Library") -> bool:
        return self.tick < library.tick

    def versions_of(self, cell: str, view: str) -> List[int]:
        return sorted(
            r.version
            for r in self.records
            if r.cell == cell and r.view == view
        )


class Library:
    """One FMCAD library: a directory, its design files, and its ``.meta``."""

    def __init__(
        self,
        name: str,
        root: pathlib.Path,
        clock: Optional[SimClock] = None,
    ) -> None:
        if not name or "/" in name:
            raise LibraryError(f"invalid library name: {name!r}")
        self.name = name
        self.directory = pathlib.Path(root) / name
        self.directory.mkdir(parents=True, exist_ok=True)
        self.clock = clock or SimClock()
        self.metafile = MetaFile(self.directory / ".meta")
        self._cells: Dict[str, Cell] = {}
        #: monotone change counter; bumped on every metadata mutation.
        self.tick = 0
        #: checkins stored as hard links because the data did not change
        self.dedup_links = 0
        #: every read_version re-digests the file against the recorded
        #: content address; ``False`` is the unverified benchmark arm
        self.verify_reads = True
        #: shared MaterializationCache, if the owning framework attached
        #: one — digest-keyed, so entries interoperate with blob reads
        self.read_cache = None
        #: verified reads served straight from the shared cache
        self.cache_reads = 0
        # a crash between the .meta temp write and its atomic rename
        # leaves a stale .meta.tmp behind; it is never valid data
        stale = self.directory / ".meta.tmp"
        try:
            stale.unlink()
        except FileNotFoundError:
            pass

    # -- opening an existing library from disk ----------------------------------

    @classmethod
    def open(
        cls,
        name: str,
        root: pathlib.Path,
        clock: Optional[SimClock] = None,
    ) -> "Library":
        """Rebuild a library's in-memory state from its ``.meta`` file.

        This is what the ``.meta`` file exists *for* (Section 2.2): it
        describes the directory's contents, so a framework restart
        recovers cells, cellviews and versions from it.  Versions written
        but never flushed are invisible after reopening — faithfully: the
        metadata was the designer's responsibility.
        """
        library = cls(name, root, clock=clock)
        records, tick = library.metafile.read()
        for record in sorted(
            records, key=lambda r: (r.cell, r.view, r.version)
        ):
            if not library.has_cell(record.cell):
                library.create_cell(record.cell)
            cell = library.cell(record.cell)
            if not cell.has_cellview(record.view):
                library.create_cellview(
                    record.cell, record.view, record.viewtype
                )
            cellview = cell.cellview(record.view)
            path = (
                library.directory / record.cell / record.view
                / record.filename
            )
            version = CellViewVersion(
                number=record.version,
                path=path,
                created_tick=record.tick,
                author=record.author,
            )
            if record.digest:
                # the .meta record carries the content address, so reads
                # of this version stay verified across restarts
                version._content_digest = record.digest
            cellview.add_version(version)
        library.tick = tick
        return library

    def orphaned_files(self) -> List[pathlib.Path]:
        """Version files on disk that ``.meta`` does not describe.

        These are the casualties of designers who forgot to flush before
        the restart — listed so an administrator can recover them.
        """
        described = {
            (r.cell, r.view, r.filename) for r in self.metafile.read()[0]
        }
        orphans: List[pathlib.Path] = []
        for data_file in sorted(self.directory.glob("*/*/v*.dat")):
            view_dir = data_file.parent
            key = (view_dir.parent.name, view_dir.name, data_file.name)
            if key not in described:
                orphans.append(data_file)
        return orphans

    # -- structure -------------------------------------------------------------

    def create_cell(self, name: str) -> Cell:
        """Create the basic logical design object *name*."""
        if name in self._cells:
            raise LibraryError(f"library {self.name!r}: duplicate cell {name!r}")
        if not name or "/" in name or name.startswith("."):
            raise LibraryError(f"invalid cell name: {name!r}")
        cell = Cell(name)
        self._cells[name] = cell
        (self.directory / name).mkdir(exist_ok=True)
        self._bump()
        return cell

    def cell(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise LibraryError(
                f"library {self.name!r} has no cell {name!r}"
            ) from None

    def has_cell(self, name: str) -> bool:
        return name in self._cells

    def cells(self) -> List[Cell]:
        return [self._cells[name] for name in sorted(self._cells)]

    def create_cellview(
        self, cell_name: str, view_name: str, viewtype_name: Optional[str] = None
    ) -> CellView:
        """Create a cellview of *cell_name* for view *view_name*.

        When *viewtype_name* is omitted the view name doubles as the
        viewtype name (the common FMCAD convention: a view named
        ``schematic`` of viewtype ``schematic``).
        """
        cell = self.cell(cell_name)
        viewtype = resolve_viewtype(viewtype_name or view_name)
        view = View(view_name, viewtype)
        cellview = cell.add_cellview(CellView(cell_name, view))
        (self.directory / cell_name / view_name).mkdir(parents=True, exist_ok=True)
        self._bump()
        return cellview

    def cellview(self, cell_name: str, view_name: str) -> CellView:
        return self.cell(cell_name).cellview(view_name)

    def cellviews(self) -> List[CellView]:
        found: List[CellView] = []
        for cell in self.cells():
            found.extend(cell.cellviews())
        return found

    # -- version data -----------------------------------------------------------

    def _version_path(self, cellview: CellView, number: int) -> pathlib.Path:
        return (
            self.directory
            / cellview.cell_name
            / cellview.view.name
            / f"v{number:04d}.dat"
        )

    def write_version(
        self, cellview: CellView, data: bytes, author: str
    ) -> CellViewVersion:
        """Append a new version file for *cellview* with *data*.

        This is the physical half of a checkin; concurrency rules are
        enforced by :class:`~repro.fmcad.checkout.CheckoutManager`, which
        is the only sanctioned caller during design work.

        A checkin whose bytes match the previous version (the tool only
        read the data) is stored as a hard link to the existing file —
        one directory entry, no second copy, per-file overhead only.
        """
        number = cellview.next_version_number()
        path = self._version_path(cellview, number)
        digest = hashlib.sha256(data).hexdigest()
        previous = cellview.default_version
        linked = False
        if (
            previous is not None
            and previous.path.exists()
            and previous.content_digest() == digest
            # never hard-link onto bytes that rotted since their digest
            # was cached: the new version would share the damage.  The
            # re-hash only runs on the dedup-candidate path, so clean
            # checkins of changed data pay nothing extra.
            and hashlib.sha256(previous.path.read_bytes()).hexdigest()
            == digest
        ):
            try:
                os.link(previous.path, path)
                linked = True
            except OSError:
                pass  # filesystem without hard links: fall back to a copy
        if linked:
            self.clock.charge_native_io(0, files=1)
            self.dedup_links += 1
        else:
            # version files are immutable once written, so a plain
            # write + fsync suffices — no rename dance needed, but the
            # bytes must be durable before the .meta that references them
            durable.write_bytes(
                path, corruption_point("fmcad.version_file", data)
            )
            self.clock.charge_native_io(len(data), files=1)
        version = CellViewVersion(
            number=number, path=path, created_tick=self.tick + 1, author=author
        )
        version._content_digest = digest
        version._content_size = len(data)
        cellview.add_version(version)
        self._bump()
        return version

    def drop_version(self, cellview: CellView, number: int) -> None:
        """Destroy version *number* of *cellview*: record, file, sidecar.

        This is the compensating action of crash recovery — FMCAD itself
        never deletes design data.  Only the newest version may be
        dropped, preserving the monotone version chain.  The unlink is a
        directory-entry removal, so hard-link-dedup'd checkins keep the
        shared payload alive for the surviving versions.
        """
        latest = cellview.default_version
        if latest is None or latest.number != number:
            raise LibraryError(
                f"cellview {cellview.name}: can only drop the newest "
                f"version, not {number}"
            )
        version = cellview.remove_version(number)
        try:
            version.path.unlink()
        except FileNotFoundError:
            pass  # the crash may have happened before the file landed
        sidecar = version.path.with_name(version.path.name + ".props")
        try:
            sidecar.unlink()
        except FileNotFoundError:
            pass
        self.clock.charge_native_io(0, files=1)
        self._bump()

    def read_version(
        self, cellview: CellView, number: Optional[int] = None
    ) -> bytes:
        """Read a version's design file (default: the default version)."""
        version = (
            cellview.version(number)
            if number is not None
            else cellview.default_version
        )
        if version is None:
            raise LibraryError(f"cellview {cellview.name} has no versions")
        digest = version._content_digest
        if (
            self.verify_reads
            and self.read_cache is not None
            and digest is not None
        ):
            cached = self.read_cache.get(digest)
            if cached is not None:
                # digest-keyed coherence: the cache only holds bytes that
                # proved this digest, so the verification is already paid
                self.cache_reads += 1
                self.clock.charge_native_io(0, files=1)
                return cached
        data = version.read_data()
        if self.verify_reads:
            problem = version.classify_damage(data)
            if problem is not None:
                raise IntegrityError(
                    f"library {self.name!r}: version file {version.path} "
                    f"fails verification ({problem})",
                    location=str(version.path),
                    classification=problem,
                )
            if self.read_cache is not None and digest is not None:
                self.read_cache.put(digest, data)
        self.clock.charge_native_io(len(data), files=1)
        return data

    # -- .meta maintenance ---------------------------------------------------------

    def _bump(self) -> None:
        self.tick += 1

    def meta_records(self) -> List[MetaRecord]:
        """The records a faithful ``.meta`` of current state would hold."""
        records: List[MetaRecord] = []
        for cellview in self.cellviews():
            for version in cellview.versions:
                records.append(
                    MetaRecord(
                        cell=cellview.cell_name,
                        view=cellview.view.name,
                        viewtype=cellview.viewtype.name,
                        version=version.number,
                        filename=version.path.name,
                        author=version.author,
                        tick=version.created_tick,
                        digest=version._content_digest or "",
                    )
                )
        return records

    def flush_meta(self, user: str) -> bool:
        """Write current metadata to ``.meta``; requires the writer lock.

        Returns False when the lock is held by another user (a contention
        event) — the caller must retry, exactly the explicit coordination
        Section 3.1 complains about.
        """
        if not self.metafile.acquire(user):
            return False
        try:
            self.metafile.write(self.meta_records(), self.tick, user)
            self.clock.charge_native_io(
                sum(len(r.to_line()) for r in self.meta_records()), files=1
            )
        finally:
            self.metafile.release(user)
        return True

    def snapshot(self, user: str) -> MetaSnapshot:
        """A designer's refresh: read the on-disk ``.meta``.

        Note this reads what was last *flushed*, not live memory — an
        un-flushed library yields an out-of-date snapshot, reproducing the
        manual-refresh hazard.
        """
        records, tick = self.metafile.read()
        self.clock.charge_native_io(
            sum(len(r.to_line()) for r in records), files=1
        )
        return MetaSnapshot(
            library_name=self.name, tick=tick, records=tuple(records)
        )

    def verify_meta(self) -> List[str]:
        """Compare ``.meta`` against the directory; list discrepancies.

        Used by the Section 3.2 consistency experiment: FMCAD itself never
        runs this automatically.
        """
        problems: List[str] = []
        try:
            on_disk = self.metafile.index()
        except MetaFileError as exc:
            return [f"unreadable .meta: {exc}"]
        live = {
            (r.cell, r.view, r.version): r for r in self.meta_records()
        }
        for key in sorted(set(live) - set(on_disk)):
            problems.append(f"missing from .meta: {key[0]}/{key[1]} v{key[2]}")
        for key in sorted(set(on_disk) - set(live)):
            problems.append(f"dangling in .meta: {key[0]}/{key[1]} v{key[2]}")
        for key in sorted(set(on_disk) & set(live)):
            if on_disk[key].filename != live[key].filename:
                problems.append(
                    f"filename mismatch for {key[0]}/{key[1]} v{key[2]}"
                )
        return problems

    # -- storage integrity -----------------------------------------------------------

    def scrub_versions(self) -> List[Tuple[CellViewVersion, str]]:
        """Re-hash every version file; list ``(version, classification)``.

        Only versions with a known content digest can fail — a version
        reconstructed from a pre-digest ``.meta`` record has nothing to
        be held against and is reported clean.
        """
        findings: List[Tuple[CellViewVersion, str]] = []
        for cellview in self.cellviews():
            for version in cellview.versions:
                problem = version.verify()
                if problem is not None:
                    findings.append((version, problem))
        return findings

    def repair_version(self, version: CellViewVersion, data: bytes) -> None:
        """Overwrite a damaged version file with verified pristine bytes.

        *data* must hash to the version's recorded content address.
        Writing through the existing path also heals every hard link the
        dedup checkin created — the links share one inode, and they were
        all equally damaged.
        """
        expected = version._content_digest
        if expected is None or hashlib.sha256(data).hexdigest() != expected:
            raise IntegrityError(
                f"repair source for {version.path} does not hash to the "
                "recorded content address — refusing to store it",
                location=str(version.path),
                classification="bit-rot",
            )
        version.path.write_bytes(data)
        version._content_size = len(data)

    def verified_version_bytes(self, digest: str) -> Optional[bytes]:
        """Bytes of any version file proving *digest*, else ``None``.

        This is the peer-repair lookup: a corrupt OMS blob can be healed
        from the FMCAD copy of the same payload, but only after that copy
        re-proves its own content address.
        """
        for cellview in self.cellviews():
            for version in cellview.versions:
                if version._content_digest != digest:
                    continue
                try:
                    data = version.path.read_bytes()
                except FileNotFoundError:
                    continue
                if hashlib.sha256(data).hexdigest() == digest:
                    return data
        return None

    # -- statistics ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        cellviews = self.cellviews()
        return {
            "cells": len(self._cells),
            "cellviews": len(cellviews),
            "versions": sum(len(cv.versions) for cv in cellviews),
            "bytes": sum(
                v.size for cv in cellviews for v in cv.versions
            ),
            "dedup_links": self.dedup_links,
            "tick": self.tick,
        }
