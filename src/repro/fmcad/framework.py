"""The FMCAD framework facade.

Owns libraries, the checkout manager, the ITC bus, the extension-language
interpreter and the running tool sessions.  Notably **absent** — because
standard FMCAD does not have them (Sections 3.2/3.5) — are flow
management, derivation relations, and any distinction between users,
teams, tools and flows: tools may be invoked freely, and the framework
only keeps a flat invocation log from which no what-belongs-to-what
information can be reconstructed.
"""

from __future__ import annotations

import dataclasses
import pathlib
from typing import Any, Dict, List, Optional

from repro.clock import SimClock
from repro.errors import LibraryError
from repro.fmcad.checkout import CheckoutManager
from repro.fmcad.configurations import FMCADConfiguration
from repro.fmcad.extension import ExtensionInterpreter
from repro.fmcad.itc import ITCBus
from repro.fmcad.library import Library
from repro.fmcad.session import ToolSession
from repro.ids import IdAllocator


@dataclasses.dataclass(frozen=True)
class ToolInvocation:
    """One entry of FMCAD's flat tool-invocation log.

    Deliberately relationship-free: standard FMCAD records *that* a tool
    ran, not what its run derived from what (Section 3.5).
    """

    sequence: int
    tool_name: str
    user: str
    cell_name: str
    view_name: str


class FMCADFramework:
    """Facade over one FMCAD installation rooted at a directory."""

    def __init__(
        self,
        root: pathlib.Path,
        clock: Optional[SimClock] = None,
    ) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.clock = clock or SimClock()
        self.ids = IdAllocator()
        self._libraries: Dict[str, Library] = {}
        self.checkouts = CheckoutManager(
            self.root / "_workareas", library_resolver=self.library
        )
        self.bus = ITCBus()
        self.interpreter = ExtensionInterpreter()
        self._sessions: Dict[str, ToolSession] = {}
        self._configurations: Dict[str, FMCADConfiguration] = {}
        self.invocation_log: List[ToolInvocation] = []
        #: shared MaterializationCache handed to every library opened
        #: from now on (set by HybridFramework when read caching is on)
        self.read_cache = None
        self._install_session_builtins()

    # -- libraries --------------------------------------------------------------

    def create_library(self, name: str) -> Library:
        if name in self._libraries:
            raise LibraryError(f"duplicate library {name!r}")
        library = Library(name, self.root / "libs", clock=self.clock)
        library.read_cache = self.read_cache
        self._libraries[name] = library
        return library

    def library(self, name: str) -> Library:
        try:
            return self._libraries[name]
        except KeyError:
            raise LibraryError(f"no library {name!r}") from None

    def open_library(self, name: str) -> Library:
        """Reopen an existing on-disk library after a framework restart."""
        if name in self._libraries:
            raise LibraryError(f"library {name!r} is already open")
        library = Library.open(name, self.root / "libs", clock=self.clock)
        library.read_cache = self.read_cache
        self._libraries[name] = library
        return library

    def known_library_names(self) -> List[str]:
        """Names of library directories present on disk (open or not)."""
        libs_root = self.root / "libs"
        if not libs_root.exists():
            return []
        return sorted(
            entry.name
            for entry in libs_root.iterdir()
            if entry.is_dir() and (entry / ".meta").exists()
        )

    def libraries(self) -> List[Library]:
        return [self._libraries[name] for name in sorted(self._libraries)]

    # -- configurations ------------------------------------------------------------

    def create_configuration(
        self, name: str, library_name: str
    ) -> FMCADConfiguration:
        if name in self._configurations:
            raise LibraryError(f"duplicate configuration {name!r}")
        config = FMCADConfiguration(name, self.library(library_name))
        self._configurations[name] = config
        return config

    def configuration(self, name: str) -> FMCADConfiguration:
        try:
            return self._configurations[name]
        except KeyError:
            raise LibraryError(f"no configuration {name!r}") from None

    # -- sessions --------------------------------------------------------------------

    def open_session(self, tool_name: str, user: str) -> ToolSession:
        """Start a tool session for *user* (free invocation — no flow)."""
        session_id = self.ids.allocate("session")
        session = ToolSession(
            session_id=session_id,
            tool_name=tool_name,
            user=user,
            clock=self.clock,
            bus=self.bus,
        )
        self._sessions[session_id] = session
        return session

    def session(self, session_id: str) -> ToolSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise LibraryError(f"no session {session_id!r}") from None

    def sessions(self) -> List[ToolSession]:
        return [self._sessions[sid] for sid in sorted(self._sessions)]

    def close_session(self, session_id: str) -> None:
        self.session(session_id).close()
        del self._sessions[session_id]

    def _install_session_builtins(self) -> None:
        """Expose menu locking to the extension language (Section 2.4)."""

        def lock_menu(session_id: str, menu_name: str, reason: str) -> bool:
            self.session(session_id).lock_menu(menu_name, reason)
            return True

        def unlock_menu(session_id: str, menu_name: str) -> bool:
            self.session(session_id).unlock_menu(menu_name)
            return True

        def menu_locked(session_id: str, menu_name: str) -> bool:
            return self.session(session_id).menu(menu_name).locked

        self.interpreter.register_builtin("lock-menu", lock_menu)
        self.interpreter.register_builtin("unlock-menu", unlock_menu)
        self.interpreter.register_builtin("menu-locked", menu_locked)

    # -- invocation log -----------------------------------------------------------------

    def log_invocation(
        self, tool_name: str, user: str, cell_name: str, view_name: str
    ) -> ToolInvocation:
        """Append to the flat log (the only record standard FMCAD keeps).

        Also fires the ``tool-invocation`` framework event, so extension-
        language customizations (see :mod:`repro.fmcad.customizations`)
        observe every run.
        """
        entry = ToolInvocation(
            sequence=len(self.invocation_log) + 1,
            tool_name=tool_name,
            user=user,
            cell_name=cell_name,
            view_name=view_name,
        )
        self.invocation_log.append(entry)
        self.interpreter.fire_trigger(
            "tool-invocation", tool_name, user, cell_name, view_name
        )
        return entry

    def derivation_relations(self) -> List[Any]:
        """What standard FMCAD can say about derivation history: nothing.

        Section 3.5: "neither derivation relations nor the
        what-belongs-to-what information is available".  The coupling layer
        supplies these from JCF; asking bare FMCAD yields an empty list.
        """
        return []

    # -- statistics -----------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "libraries": {
                name: lib.stats() for name, lib in sorted(self._libraries.items())
            },
            "checkouts": self.checkouts.stats(),
            "sessions": len(self._sessions),
            "invocations": len(self.invocation_log),
        }
