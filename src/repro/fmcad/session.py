"""Running FMCAD tool sessions and their lockable menus.

Each encapsulated tool runs inside a session whose menu points can be
locked by extension-language procedures — the mechanism the 1995 coupling
used "to prevent data inconsistency" (Section 2.4).  Menu invocations
charge simulated UI time, which feeds the Section 3.4 experiment.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.clock import SimClock
from repro.errors import FMCADError, MenuLockedError
from repro.fmcad.itc import ITCBus


class MenuPoint:
    """One invocable menu entry of a tool session."""

    def __init__(self, name: str, action: Callable[..., Any]) -> None:
        self.name = name
        self.action = action
        self.locked = False
        self.lock_reason: Optional[str] = None
        self.invocations = 0

    def lock(self, reason: str) -> None:
        self.locked = True
        self.lock_reason = reason

    def unlock(self) -> None:
        self.locked = False
        self.lock_reason = None


class ToolSession:
    """A live instance of an FMCAD tool bound to a user and the ITC bus."""

    def __init__(
        self,
        session_id: str,
        tool_name: str,
        user: str,
        clock: SimClock,
        bus: Optional[ITCBus] = None,
    ) -> None:
        self.session_id = session_id
        self.tool_name = tool_name
        self.user = user
        self.clock = clock
        self.bus = bus
        self._menus: Dict[str, MenuPoint] = {}
        self._closed = False
        #: extra consistency windows shown by the coupling wrappers
        #: (Section 2.4); each costs a UI interaction when displayed.
        self.consistency_windows: List[str] = []
        clock.charge_tool_startup()

    # -- menu management --------------------------------------------------------

    def register_menu(
        self, name: str, action: Callable[..., Any], replace: bool = False
    ) -> MenuPoint:
        """Add a menu point; *replace* lets a retried tool step re-register
        its own entry (lock state is preserved across the replacement)."""
        existing = self._menus.get(name)
        if existing is not None:
            if not replace:
                raise FMCADError(
                    f"session {self.session_id}: duplicate menu point {name!r}"
                )
            existing.action = action
            return existing
        menu = MenuPoint(name, action)
        self._menus[name] = menu
        return menu

    def menu(self, name: str) -> MenuPoint:
        try:
            return self._menus[name]
        except KeyError:
            raise FMCADError(
                f"session {self.session_id}: no menu point {name!r}"
            ) from None

    def menu_names(self) -> List[str]:
        return sorted(self._menus)

    def lock_menu(self, name: str, reason: str) -> None:
        """Lock a menu point (called from extension-language guards)."""
        self.menu(name).lock(reason)

    def unlock_menu(self, name: str) -> None:
        self.menu(name).unlock()

    def invoke_menu(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """User picks a menu point: charges UI time and runs the action.

        Raises :class:`MenuLockedError` when the consistency guard has
        locked the entry — the designer sees a disabled menu item.
        """
        self._require_open()
        menu = self.menu(name)
        self.clock.charge_ui()
        if menu.locked:
            raise MenuLockedError(
                f"menu point {name!r} in {self.tool_name} is locked: "
                f"{menu.lock_reason}"
            )
        menu.invocations += 1
        return menu.action(*args, **kwargs)

    # -- coupling support ----------------------------------------------------------

    def show_consistency_window(self, text: str) -> None:
        """Display one of the coupling's additional consistency windows."""
        self._require_open()
        self.consistency_windows.append(text)
        self.clock.charge_ui()

    # -- lifecycle -------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        self._closed = True

    def _require_open(self) -> None:
        if self._closed:
            raise FMCADError(f"session {self.session_id} is closed")
