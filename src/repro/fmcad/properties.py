"""Typed property bags.

Figure 2 attaches ``Property`` records to FMCAD design objects.  Properties
are the framework's open-ended annotation mechanism (tool options, design
intent, coupling bookkeeping); the coupling layer uses them to tag
cellviews with JCF identities.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Tuple

from repro.errors import PropertyError

#: Property value types FMCAD supports.
_ALLOWED_TYPES = (str, int, float, bool)


class PropertyBag:
    """An ordered mapping of named, scalar-typed properties."""

    def __init__(self) -> None:
        self._props: Dict[str, Any] = {}

    def set(self, name: str, value: Any) -> None:
        """Set property *name*; value must be a scalar (str/int/float/bool)."""
        if not name or not isinstance(name, str):
            raise PropertyError(f"invalid property name: {name!r}")
        if not isinstance(value, _ALLOWED_TYPES):
            raise PropertyError(
                f"property {name!r}: unsupported value type "
                f"{type(value).__name__}"
            )
        self._props[name] = value

    def get(self, name: str, default: Any = None) -> Any:
        return self._props.get(name, default)

    def require(self, name: str) -> Any:
        """Return property *name*; raise if absent."""
        if name not in self._props:
            raise PropertyError(f"missing property {name!r}")
        return self._props[name]

    def delete(self, name: str) -> None:
        if name not in self._props:
            raise PropertyError(f"missing property {name!r}")
        del self._props[name]

    def __contains__(self, name: str) -> bool:
        return name in self._props

    def __len__(self) -> int:
        return len(self._props)

    def items(self) -> Iterator[Tuple[str, Any]]:
        return iter(sorted(self._props.items()))

    def as_dict(self) -> Dict[str, Any]:
        return dict(self._props)

    def copy_from(self, other: "PropertyBag") -> None:
        """Merge all properties of *other* into this bag (other wins)."""
        for name, value in other.items():
            self.set(name, value)


class PersistentPropertyBag(PropertyBag):
    """A property bag mirrored to a JSON sidecar file.

    FMCAD keeps properties with the design data (Section 2.2); mirroring
    them to ``<version file>.props`` makes them survive a framework
    restart, so rescanning a library from disk (``Library.open``) also
    recovers the coupling's ``jcf_oid`` tags.
    """

    def __init__(self, path) -> None:
        super().__init__()
        import pathlib

        self._path = pathlib.Path(path)
        if self._path.exists():
            self._load()

    def _load(self) -> None:
        import json

        try:
            stored = json.loads(self._path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise PropertyError(
                f"corrupt property sidecar {self._path}: {exc}"
            ) from exc
        for name, value in stored.items():
            super().set(name, value)

    def _flush(self) -> None:
        import json

        self._path.write_text(
            json.dumps(self.as_dict(), sort_keys=True, indent=1),
            encoding="utf-8",
        )

    def set(self, name, value) -> None:
        super().set(name, value)
        self._flush()

    def delete(self, name) -> None:
        super().delete(name)
        self._flush()
