"""Standard extension-language customizations.

FMCAD's "very flexible customization language" (Section 2.2) is only as
real as the programs written in it.  Besides the coupling's consistency
guard (:mod:`repro.core.consistency`), this module ships the stock
customizations a 1990s CAD site would install — written in the extension
language and driven by framework events:

* **invocation audit** — counts tool invocations per tool name in
  interpreter state, queryable from both Lisp and Python;
* **save reminder** — nags after N invocations without a save;
* **cell watchlist** — flags invocations touching named critical cells.

Framework events fire through :meth:`repro.fmcad.framework.
FMCADFramework.log_invocation`, so every coupled tool run exercises these
programs for real.
"""

from __future__ import annotations

from typing import Dict, List

from repro.fmcad.framework import FMCADFramework

#: Counts invocations per tool in an association list held in Lisp state.
AUDIT_PROGRAM = """
(define audit-log nil)

(define (audit-count tool)
  (let ((entry (assoc-get audit-log tool)))
    (if (null entry) 0 entry)))

(define (on-tool-invocation tool user cell view)
  (setq audit-log (assoc-put audit-log tool (+ 1 (audit-count tool)))))
"""

#: Reminds the designer to save after too many invocations.
SAVE_REMINDER_PROGRAM = """
(define unsaved-count 0)
(define reminder-threshold 5)
(define reminders nil)

(define (on-invocation-maybe-remind tool user cell view)
  (setq unsaved-count (+ unsaved-count 1))
  (when (>= unsaved-count reminder-threshold)
    (setq reminders (cons (strcat "save your work, " user) reminders))
    (setq unsaved-count 0)))
"""

#: Flags invocations on critical cells.
WATCHLIST_PROGRAM = """
(define watchlist nil)
(define watch-hits nil)

(define (watch-cell cell)
  (setq watchlist (cons cell watchlist)))

(define (on-invocation-watch tool user cell view)
  (when (member cell watchlist)
    (setq watch-hits
          (cons (strcat user " touched " cell "/" view) watch-hits))))
"""


def _install_assoc_builtins(framework: FMCADFramework) -> None:
    """Association-list helpers the audit program uses."""

    def assoc_get(alist, key):
        for pair in alist or []:
            if pair and pair[0] == key:
                return pair[1]
        return None

    def assoc_put(alist, key, value):
        rest = [pair for pair in (alist or []) if pair[0] != key]
        return [[key, value]] + rest

    framework.interpreter.register_builtin("assoc-get", assoc_get)
    framework.interpreter.register_builtin("assoc-put", assoc_put)


def apply_standard_customizations(framework: FMCADFramework) -> None:
    """Load the stock programs and attach them to framework events."""
    _install_assoc_builtins(framework)
    interpreter = framework.interpreter
    interpreter.run(AUDIT_PROGRAM)
    interpreter.run(SAVE_REMINDER_PROGRAM)
    interpreter.run(WATCHLIST_PROGRAM)
    interpreter.add_trigger("tool-invocation", "on-tool-invocation")
    interpreter.add_trigger("tool-invocation",
                            "on-invocation-maybe-remind")
    interpreter.add_trigger("tool-invocation", "on-invocation-watch")


# -- Python-side queries into the Lisp state ---------------------------------


def audit_counts(framework: FMCADFramework) -> Dict[str, int]:
    """Tool invocation counts as recorded by the audit customization."""
    alist = framework.interpreter.globals.lookup("audit-log") or []
    return {tool: count for tool, count in alist}


def pending_reminders(framework: FMCADFramework) -> List[str]:
    """Messages the save-reminder customization has produced."""
    return list(
        framework.interpreter.globals.lookup("reminders") or []
    )


def watch_cell(framework: FMCADFramework, cell_name: str) -> None:
    """Add *cell_name* to the watchlist customization."""
    framework.interpreter.call("watch-cell", [cell_name])


def watch_hits(framework: FMCADFramework) -> List[str]:
    """Invocations that touched watched cells."""
    return list(
        framework.interpreter.globals.lookup("watch-hits") or []
    )
