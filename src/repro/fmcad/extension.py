"""The FMCAD extension language.

Section 2.2 calls FMCAD's customization language "very flexible"; Section
2.4 reports that the coupling "was extended by several extension language
procedures to trigger functions and lock menu points in order to prevent
data inconsistency".  To make that mechanism real rather than decorative,
this module implements a small Lisp-flavoured interpreter (in the spirit
of SKILL):

* s-expression reader (numbers, strings, symbols, quote, comments);
* special forms: ``quote if cond define lambda let setq progn while and
  or when unless``;
* a standard library of list/arithmetic/string builtins;
* host bindings: the embedding tool session registers Python callables
  (e.g. ``lock-menu``) that procedures may invoke;
* a trigger registry: procedures can be attached to named events and are
  fired by the framework (``fire_trigger``).

The consistency guard in :mod:`repro.core.consistency` is written *in*
this language, exactly as the 1995 prototype customized FMCAD.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.errors import ExtensionLanguageError


class Symbol(str):
    """An interned-ish identifier; distinct from string literals."""


SExpr = Union[Symbol, str, int, float, bool, List["SExpr"], None]


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------


def tokenize(source: str) -> List[str]:
    """Split *source* into parenthesis/string/atom tokens."""
    tokens: List[str] = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            i += 1
        elif ch == ";":
            while i < n and source[i] != "\n":
                i += 1
        elif ch in "()'":
            tokens.append(ch)
            i += 1
        elif ch == '"':
            j = i + 1
            buf = []
            while j < n and source[j] != '"':
                if source[j] == "\\" and j + 1 < n:
                    j += 1
                buf.append(source[j])
                j += 1
            if j >= n:
                raise ExtensionLanguageError("unterminated string literal")
            tokens.append('"' + "".join(buf) + '"')
            i = j + 1
        else:
            j = i
            while j < n and source[j] not in " \t\r\n()';\"":
                j += 1
            tokens.append(source[i:j])
            i = j
    return tokens


def _atom(token: str) -> SExpr:
    if token.startswith('"'):
        return token[1:-1]
    if token == "t":
        return True
    if token == "nil":
        return None
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return Symbol(token)


def parse(source: str) -> List[SExpr]:
    """Read all top-level forms from *source*."""
    tokens = tokenize(source)
    forms: List[SExpr] = []
    pos = 0

    def read_form(at: int) -> Tuple[SExpr, int]:
        if at >= len(tokens):
            raise ExtensionLanguageError("unexpected end of input")
        token = tokens[at]
        if token == "(":
            items: List[SExpr] = []
            at += 1
            while at < len(tokens) and tokens[at] != ")":
                item, at = read_form(at)
                items.append(item)
            if at >= len(tokens):
                raise ExtensionLanguageError("missing closing parenthesis")
            return items, at + 1
        if token == ")":
            raise ExtensionLanguageError("unexpected ')'")
        if token == "'":
            quoted, at = read_form(at + 1)
            return [Symbol("quote"), quoted], at
        return _atom(token), at + 1

    while pos < len(tokens):
        form, pos = read_form(pos)
        forms.append(form)
    return forms


# ---------------------------------------------------------------------------
# Evaluator
# ---------------------------------------------------------------------------


class Environment:
    """Lexically scoped variable bindings."""

    def __init__(self, parent: Optional["Environment"] = None) -> None:
        self._bindings: Dict[str, Any] = {}
        self._parent = parent

    def define(self, name: str, value: Any) -> None:
        self._bindings[name] = value

    def lookup(self, name: str) -> Any:
        env: Optional[Environment] = self
        while env is not None:
            if name in env._bindings:
                return env._bindings[name]
            env = env._parent
        raise ExtensionLanguageError(f"unbound symbol: {name}")

    def assign(self, name: str, value: Any) -> None:
        env: Optional[Environment] = self
        while env is not None:
            if name in env._bindings:
                env._bindings[name] = value
                return
            env = env._parent
        raise ExtensionLanguageError(f"setq of unbound symbol: {name}")


@dataclasses.dataclass
class ExtensionProcedure:
    """A user-defined procedure (closure) in the extension language."""

    name: str
    params: List[str]
    body: List[SExpr]
    env: Environment

    def __call__(self, interpreter: "ExtensionInterpreter", args: List[Any]) -> Any:
        if len(args) != len(self.params):
            raise ExtensionLanguageError(
                f"procedure {self.name}: expected {len(self.params)} args, "
                f"got {len(args)}"
            )
        local = Environment(self.env)
        for param, arg in zip(self.params, args):
            local.define(param, arg)
        result: Any = None
        for form in self.body:
            result = interpreter.eval(form, local)
        return result


def _num(value: Any, op: str) -> Union[int, float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ExtensionLanguageError(f"{op}: expected number, got {value!r}")
    return value


class ExtensionInterpreter:
    """Evaluator plus host bindings and the trigger registry."""

    #: Hard cap on while-loop iterations: customization bugs must not hang
    #: the framework.
    MAX_ITERATIONS = 100_000

    def __init__(self) -> None:
        self.globals = Environment()
        self.output: List[str] = []
        self._triggers: Dict[str, List[str]] = {}
        self._install_builtins()

    # -- host integration ---------------------------------------------------

    def register_builtin(self, name: str, fn: Callable[..., Any]) -> None:
        """Expose a Python callable to extension programs."""
        self.globals.define(name, fn)

    def add_trigger(self, event: str, procedure_name: str) -> None:
        """Attach an extension procedure to a named framework event."""
        self.globals.lookup(procedure_name)  # must exist
        self._triggers.setdefault(event, []).append(procedure_name)

    def triggers_for(self, event: str) -> List[str]:
        return list(self._triggers.get(event, []))

    def fire_trigger(self, event: str, *args: Any) -> List[Any]:
        """Invoke every procedure attached to *event*; returns their results."""
        results = []
        for name in self._triggers.get(event, []):
            results.append(self.call(name, list(args)))
        return results

    # -- program execution ---------------------------------------------------

    def run(self, source: str) -> Any:
        """Parse and evaluate all forms in *source*; returns the last value."""
        result: Any = None
        for form in parse(source):
            result = self.eval(form, self.globals)
        return result

    def call(self, name: str, args: Optional[List[Any]] = None) -> Any:
        """Call a defined procedure or builtin from Python."""
        fn = self.globals.lookup(name)
        args = args or []
        if isinstance(fn, ExtensionProcedure):
            return fn(self, args)
        if callable(fn):
            return fn(*args)
        raise ExtensionLanguageError(f"{name} is not callable")

    # -- the evaluator itself --------------------------------------------------

    def eval(self, form: SExpr, env: Environment) -> Any:
        if isinstance(form, Symbol):
            return env.lookup(form)
        if not isinstance(form, list):
            return form  # literal
        if not form:
            return None
        head = form[0]
        if isinstance(head, Symbol):
            special = getattr(self, f"_sf_{head.replace('-', '_')}", None)
            if special is not None and head in _SPECIAL_FORMS:
                return special(form[1:], env)
        fn = self.eval(head, env)
        args = [self.eval(arg, env) for arg in form[1:]]
        if isinstance(fn, ExtensionProcedure):
            return fn(self, args)
        if callable(fn):
            try:
                return fn(*args)
            except ExtensionLanguageError:
                raise
            except Exception as exc:
                raise ExtensionLanguageError(
                    f"builtin {head!r} failed: {exc}"
                ) from exc
        raise ExtensionLanguageError(f"not callable: {head!r}")

    # -- special forms -----------------------------------------------------------

    def _sf_quote(self, rest: List[SExpr], env: Environment) -> Any:
        if len(rest) != 1:
            raise ExtensionLanguageError("quote takes one argument")
        return rest[0]

    def _sf_if(self, rest: List[SExpr], env: Environment) -> Any:
        if len(rest) not in (2, 3):
            raise ExtensionLanguageError("if takes 2 or 3 arguments")
        if self.eval(rest[0], env):
            return self.eval(rest[1], env)
        return self.eval(rest[2], env) if len(rest) == 3 else None

    def _sf_cond(self, rest: List[SExpr], env: Environment) -> Any:
        for clause in rest:
            if not isinstance(clause, list) or not clause:
                raise ExtensionLanguageError("cond clause must be a list")
            if self.eval(clause[0], env):
                result: Any = None
                for form in clause[1:]:
                    result = self.eval(form, env)
                return result
        return None

    def _sf_define(self, rest: List[SExpr], env: Environment) -> Any:
        # (define (name p1 p2) body...) or (define name value)
        if not rest:
            raise ExtensionLanguageError("empty define")
        target = rest[0]
        if isinstance(target, list):
            if not target or not all(isinstance(s, Symbol) for s in target):
                raise ExtensionLanguageError("bad procedure signature")
            name = str(target[0])
            proc = ExtensionProcedure(
                name=name,
                params=[str(p) for p in target[1:]],
                body=list(rest[1:]),
                env=env,
            )
            env.define(name, proc)
            return proc
        if isinstance(target, Symbol):
            if len(rest) != 2:
                raise ExtensionLanguageError("define takes a name and a value")
            value = self.eval(rest[1], env)
            env.define(str(target), value)
            return value
        raise ExtensionLanguageError(f"cannot define {target!r}")

    def _sf_procedure(self, rest: List[SExpr], env: Environment) -> Any:
        # SKILL spelling: (procedure (name args...) body...)
        return self._sf_define(rest, env)

    def _sf_lambda(self, rest: List[SExpr], env: Environment) -> Any:
        if not rest or not isinstance(rest[0], list):
            raise ExtensionLanguageError("lambda needs a parameter list")
        return ExtensionProcedure(
            name="<lambda>",
            params=[str(p) for p in rest[0]],
            body=list(rest[1:]),
            env=env,
        )

    def _sf_let(self, rest: List[SExpr], env: Environment) -> Any:
        if not rest or not isinstance(rest[0], list):
            raise ExtensionLanguageError("let needs a binding list")
        local = Environment(env)
        for binding in rest[0]:
            if (
                not isinstance(binding, list)
                or len(binding) != 2
                or not isinstance(binding[0], Symbol)
            ):
                raise ExtensionLanguageError(f"bad let binding: {binding!r}")
            local.define(str(binding[0]), self.eval(binding[1], env))
        result: Any = None
        for form in rest[1:]:
            result = self.eval(form, local)
        return result

    def _sf_setq(self, rest: List[SExpr], env: Environment) -> Any:
        if len(rest) != 2 or not isinstance(rest[0], Symbol):
            raise ExtensionLanguageError("setq takes a symbol and a value")
        value = self.eval(rest[1], env)
        env.assign(str(rest[0]), value)
        return value

    def _sf_progn(self, rest: List[SExpr], env: Environment) -> Any:
        result: Any = None
        for form in rest:
            result = self.eval(form, env)
        return result

    def _sf_while(self, rest: List[SExpr], env: Environment) -> Any:
        if not rest:
            raise ExtensionLanguageError("while needs a condition")
        iterations = 0
        while self.eval(rest[0], env):
            for form in rest[1:]:
                self.eval(form, env)
            iterations += 1
            if iterations > self.MAX_ITERATIONS:
                raise ExtensionLanguageError("while: iteration limit exceeded")
        return None

    def _sf_and(self, rest: List[SExpr], env: Environment) -> Any:
        result: Any = True
        for form in rest:
            result = self.eval(form, env)
            if not result:
                return result
        return result

    def _sf_or(self, rest: List[SExpr], env: Environment) -> Any:
        for form in rest:
            result = self.eval(form, env)
            if result:
                return result
        return None

    def _sf_when(self, rest: List[SExpr], env: Environment) -> Any:
        if not rest:
            raise ExtensionLanguageError("when needs a condition")
        if self.eval(rest[0], env):
            return self._sf_progn(rest[1:], env)
        return None

    def _sf_unless(self, rest: List[SExpr], env: Environment) -> Any:
        if not rest:
            raise ExtensionLanguageError("unless needs a condition")
        if not self.eval(rest[0], env):
            return self._sf_progn(rest[1:], env)
        return None

    # -- builtins ----------------------------------------------------------------

    def _install_builtins(self) -> None:
        g = self.globals.define
        g("+", lambda *xs: sum(_num(x, "+") for x in xs))
        g("-", _builtin_sub)
        g("*", _builtin_mul)
        g("/", _builtin_div)
        g("mod", lambda a, b: _num(a, "mod") % _num(b, "mod"))
        g("<", lambda a, b: _num(a, "<") < _num(b, "<"))
        g(">", lambda a, b: _num(a, ">") > _num(b, ">"))
        g("<=", lambda a, b: _num(a, "<=") <= _num(b, "<="))
        g(">=", lambda a, b: _num(a, ">=") >= _num(b, ">="))
        g("=", lambda a, b: a == b)
        g("!=", lambda a, b: a != b)
        g("equal", lambda a, b: a == b)
        g("not", lambda a: not a)
        g("list", lambda *xs: list(xs))
        g("car", lambda xs: xs[0] if xs else None)
        g("cdr", lambda xs: list(xs[1:]) if xs else [])
        g("cons", lambda x, xs: [x] + list(xs if xs is not None else []))
        g("length", lambda xs: len(xs) if xs is not None else 0)
        g("append", lambda *xss: [x for xs in xss if xs for x in xs])
        g("nth", lambda i, xs: xs[i] if xs and 0 <= i < len(xs) else None)
        g("member", lambda x, xs: x in xs if xs else False)
        g("null", lambda x: x is None or x == [])
        g("strcat", lambda *ss: "".join(str(s) for s in ss))
        g("symbol-name", lambda s: str(s))
        g("print", self._builtin_print)

    def _builtin_print(self, *args: Any) -> None:
        self.output.append(" ".join(str(a) for a in args))


def _builtin_sub(first: Any, *rest: Any) -> Union[int, float]:
    value = _num(first, "-")
    if not rest:
        return -value
    for x in rest:
        value -= _num(x, "-")
    return value


def _builtin_mul(*xs: Any) -> Union[int, float]:
    value: Union[int, float] = 1
    for x in xs:
        value *= _num(x, "*")
    return value


def _builtin_div(a: Any, b: Any) -> Union[int, float]:
    denominator = _num(b, "/")
    if denominator == 0:
        raise ExtensionLanguageError("/: division by zero")
    return _num(a, "/") / denominator


#: Names treated as special forms by the evaluator.
_SPECIAL_FORMS = {
    "quote",
    "if",
    "cond",
    "define",
    "procedure",
    "lambda",
    "let",
    "setq",
    "progn",
    "while",
    "and",
    "or",
    "when",
    "unless",
}
