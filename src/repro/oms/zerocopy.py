"""Zero-copy primitives: filesystem capability probing and file cloning.

The read path wants to move payload bytes without shuffling them through
Python — or, where the filesystem allows it, without moving them at all:

* **reflink** (``FICLONE``): the destination shares the source's extents
  copy-on-write.  O(1) regardless of size; btrfs/XFS/ZFS support it,
  ext4 refuses with ``EOPNOTSUPP``.
* **copy_file_range**: the kernel copies block-to-block without the
  bytes ever entering user space.  Available on any modern Linux; still
  a physical copy, just a much cheaper one.
* **mmap**: base-resident blobs can be served as a mapping instead of a
  heap copy (:meth:`repro.oms.blobs.BlobStore.open_view`).

Capabilities differ per filesystem, so they are probed **once per store
root** (two scratch files, one clone attempt each way) and cached by
resolved path.  Every consumer degrades gracefully: the public contract
is *byte-identical results on every rung of the ladder*, only the cost
changes.  The env switches ``REPRO_DISABLE_REFLINK`` and
``REPRO_DISABLE_MMAP`` force the degraded rungs — CI's fallback-matrix
job runs the staging and corruption suites under both to prove the
fallbacks are not just present but correct.
"""

from __future__ import annotations

import dataclasses
import errno
import hashlib
import os
import pathlib
import shutil
from typing import Dict, Optional

#: ioctl request number of FICLONE on Linux (_IOW(0x94, 9, int))
_FICLONE = 0x40049409

#: clone methods, cheapest first — what clone_file() reports back
METHOD_REFLINK = "reflink"
METHOD_COPY_RANGE = "copy_range"
METHOD_COPY = "copy"

#: chunk size for kernel-range copies and chunked hashing (1 MiB)
_CHUNK = 1 << 20


@dataclasses.dataclass(frozen=True)
class FsCapabilities:
    """What the filesystem under one store root can do for us."""

    reflink: bool
    copy_range: bool
    mmap: bool

    def describe(self) -> str:
        flags = [
            name
            for name, on in (
                ("reflink", self.reflink),
                ("copy_range", self.copy_range),
                ("mmap", self.mmap),
            )
            if on
        ]
        return "+".join(flags) if flags else "copy-only"


#: probe results cached per resolved root — the probe costs two scratch
#: files and a few syscalls, and a filesystem does not change its mind
_probed: Dict[str, FsCapabilities] = {}


def _env_disabled(name: str) -> bool:
    value = os.environ.get(name, "")
    return value not in ("", "0", "false", "no")


def reflink_supported(src_fd: int, dst_fd: int) -> bool:
    """One FICLONE attempt; False on any refusal (EOPNOTSUPP, EXDEV, ...)."""
    try:
        import fcntl

        fcntl.ioctl(dst_fd, _FICLONE, src_fd)
        return True
    except OSError:
        return False
    except (ImportError, AttributeError):  # pragma: no cover - non-Linux
        return False


def probe_capabilities(root: pathlib.Path) -> FsCapabilities:
    """Probe (once) what the filesystem under *root* supports.

    Results are cached by resolved root.  The env overrides
    ``REPRO_DISABLE_REFLINK`` / ``REPRO_DISABLE_MMAP`` are read on every
    call (not cached), so a test can flip them around a cached probe.
    """
    root = pathlib.Path(root)
    root.mkdir(parents=True, exist_ok=True)
    key = str(root.resolve())
    caps = _probed.get(key)
    if caps is None:
        caps = _probe(root)
        _probed[key] = caps
    reflink = caps.reflink and not _env_disabled("REPRO_DISABLE_REFLINK")
    mmap_ok = caps.mmap and not _env_disabled("REPRO_DISABLE_MMAP")
    if reflink == caps.reflink and mmap_ok == caps.mmap:
        return caps
    return FsCapabilities(
        reflink=reflink, copy_range=caps.copy_range, mmap=mmap_ok
    )


def _probe(root: pathlib.Path) -> FsCapabilities:
    src = root / ".caps_probe_src"
    dst = root / ".caps_probe_dst"
    reflink = False
    copy_range = False
    mmap_ok = False
    try:
        src.write_bytes(b"capability probe\n")
        src_fd = os.open(src, os.O_RDONLY)
        try:
            dst_fd = os.open(dst, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
            try:
                reflink = reflink_supported(src_fd, dst_fd)
                if hasattr(os, "copy_file_range"):
                    try:
                        os.lseek(src_fd, 0, os.SEEK_SET)
                        copy_range = (
                            os.copy_file_range(src_fd, dst_fd, 16) > 0
                        )
                    except OSError:
                        copy_range = False
            finally:
                os.close(dst_fd)
            try:
                import mmap as _mmap

                os.lseek(src_fd, 0, os.SEEK_SET)
                mapping = _mmap.mmap(
                    src_fd, 0, prot=_mmap.PROT_READ
                )
                mapping.close()
                mmap_ok = True
            except (OSError, ValueError):
                mmap_ok = False
        finally:
            os.close(src_fd)
    finally:
        for scratch in (src, dst):
            try:
                scratch.unlink()
            except FileNotFoundError:
                pass
    return FsCapabilities(
        reflink=reflink, copy_range=copy_range, mmap=mmap_ok
    )


def clear_probe_cache() -> None:
    """Forget cached probes (tests re-probing under env overrides)."""
    _probed.clear()


def clone_file(
    src: pathlib.Path,
    dst: pathlib.Path,
    caps: Optional[FsCapabilities] = None,
) -> str:
    """Clone *src* to *dst*; returns the method that succeeded.

    The ladder is reflink -> copy_file_range -> plain copy, starting at
    the highest rung *caps* allows (``None`` probes the source's
    directory).  Every rung yields byte-identical content; the
    destination always ends up on a private inode (any previous file at
    *dst* is unlinked first, so hard-link peers are never mutated).
    """
    if caps is None:
        caps = probe_capabilities(pathlib.Path(src).parent)
    try:
        dst.unlink()
    except FileNotFoundError:
        pass
    src_fd = os.open(src, os.O_RDONLY)
    try:
        dst_fd = os.open(dst, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        try:
            if caps.reflink and reflink_supported(src_fd, dst_fd):
                return METHOD_REFLINK
            if caps.copy_range and hasattr(os, "copy_file_range"):
                if _copy_range_all(src_fd, dst_fd):
                    return METHOD_COPY_RANGE
            _copy_userspace(src_fd, dst_fd)
            return METHOD_COPY
        finally:
            os.close(dst_fd)
    except BaseException:
        try:
            dst.unlink()
        except FileNotFoundError:
            pass
        raise
    finally:
        os.close(src_fd)


def _copy_range_all(src_fd: int, dst_fd: int) -> bool:
    """Drain *src_fd* into *dst_fd* in-kernel; False to fall back."""
    size = os.fstat(src_fd).st_size
    os.lseek(src_fd, 0, os.SEEK_SET)
    os.lseek(dst_fd, 0, os.SEEK_SET)
    os.ftruncate(dst_fd, 0)
    remaining = size
    try:
        while remaining > 0:
            moved = os.copy_file_range(src_fd, dst_fd, min(remaining, _CHUNK))
            if moved == 0:  # pragma: no cover - fs shrank underneath us
                return False
            remaining -= moved
    except OSError as exc:  # pragma: no cover - mid-copy refusal
        if exc.errno in (errno.EXDEV, errno.EOPNOTSUPP, errno.ENOSYS):
            return False
        raise
    return True


def _copy_userspace(src_fd: int, dst_fd: int) -> None:
    os.lseek(src_fd, 0, os.SEEK_SET)
    os.lseek(dst_fd, 0, os.SEEK_SET)
    os.ftruncate(dst_fd, 0)
    with os.fdopen(os.dup(src_fd), "rb", closefd=True) as src_file:
        with os.fdopen(os.dup(dst_fd), "wb", closefd=True) as dst_file:
            shutil.copyfileobj(src_file, dst_file, _CHUNK)
            dst_file.flush()


def digest_view(view) -> str:
    """Hex SHA-256 of a buffer (mmap/memoryview/bytes) in bounded chunks.

    Hashing a whole mapping in one ``update`` would pin the GIL-released
    C loop on one giant call and fault every page before the first byte
    of progress is observable; chunking keeps the working set bounded
    and lets concurrent readers interleave.
    """
    hasher = hashlib.sha256()
    mv = memoryview(view)
    try:
        for offset in range(0, len(mv), _CHUNK):
            hasher.update(mv[offset:offset + _CHUNK])
    finally:
        mv.release()
    return hasher.hexdigest()
