"""Read/write lock manager for concurrent access to OMS-managed state.

The parallel coupled-run scheduler (:mod:`repro.core.scheduler`) executes
several tool runs at once.  Structural integrity of the shared stores is
guaranteed by their own internal mutexes (``OMSDatabase``, ``BlobStore``,
``StagingArea`` each serialise their primitive operations); what those
mutexes cannot give is *run-level isolation* — two runs interleaving
checkout/checkin on the same cellview would still corrupt each other's
logical view.  ``LockManager`` provides that layer: named read/write
locks at whatever granularity the caller chooses (per design object, per
relation, per cell).

Deadlock freedom by construction: :meth:`LockManager.acquire` takes every
requested key in one call and locks them in the global numeric-aware
order of :func:`repro.ids.sort_key`.  Since every holder acquires in the
same total order, no cycle of waiters can form.  Lock *upgrades* (read →
write by the same thread) are refused with
:class:`~repro.errors.LockContentionError` instead of deadlocking.

The scheduler acquires with ``blocking=False``: its conflict graph should
already have serialised conflicting runs into different waves, so a
contended lock means the graph missed an edge — the run is requeued, not
blocked, because blocking inside a wave could deadlock against the
wave's deterministic commit ordering.
"""

from __future__ import annotations

import threading
import zlib
from contextlib import contextmanager
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import LockContentionError
from repro.ids import sort_key


class RWLock:
    """One named lock: many concurrent readers or one writer.

    Not reentrant across modes: a thread that holds the lock (either
    mode) and asks for it again in a conflicting mode gets a
    :class:`LockContentionError` rather than a deadlock.  Re-acquiring
    read while holding read is permitted (counted).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._cond = threading.Condition()
        #: thread ident -> read hold count
        self._readers: Dict[int, int] = {}
        self._writer: Optional[int] = None

    # -- acquisition -------------------------------------------------------

    def acquire_read(
        self, blocking: bool = True, timeout: Optional[float] = None
    ) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                raise LockContentionError(
                    f"{self.name}: cannot take read lock while holding write"
                )
            if me in self._readers:  # reentrant read: just count
                self._readers[me] += 1
                return
            if not self._wait(lambda: self._writer is None, blocking, timeout):
                raise LockContentionError(
                    f"{self.name}: read lock unavailable (writer active)"
                )
            self._readers[me] = 1

    def acquire_write(
        self, blocking: bool = True, timeout: Optional[float] = None
    ) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me or me in self._readers:
                raise LockContentionError(
                    f"{self.name}: lock upgrade/reentrant write refused"
                )
            free = lambda: self._writer is None and not self._readers
            if not self._wait(free, blocking, timeout):
                raise LockContentionError(
                    f"{self.name}: write lock unavailable"
                )
            self._writer = me

    def _wait(self, predicate, blocking: bool, timeout: Optional[float]) -> bool:
        """Wait (under the condition) until *predicate*; False on failure."""
        if predicate():
            return True
        if not blocking:
            return False
        return self._cond.wait_for(predicate, timeout=timeout)

    # -- release -----------------------------------------------------------

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            count = self._readers.get(me)
            if count is None:
                raise LockContentionError(
                    f"{self.name}: releasing a read lock not held"
                )
            if count > 1:
                self._readers[me] = count - 1
            else:
                del self._readers[me]
                self._cond.notify_all()

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise LockContentionError(
                    f"{self.name}: releasing a write lock not held"
                )
            self._writer = None
            self._cond.notify_all()

    # -- introspection -----------------------------------------------------

    def holders(self) -> Tuple[Optional[int], List[int]]:
        """(writer thread ident or None, list of reader idents)."""
        with self._cond:
            return self._writer, sorted(self._readers)


class DigestLockTable:
    """Striped per-digest read/write locks for the blob read path.

    The blob store's internal mutex makes each primitive atomic, but it
    also *serialises* them — N readers reconstructing N different
    payloads queue behind one lock.  This table hands each digest a
    (striped) :class:`RWLock`: readers of any digest proceed together,
    while repair/quarantine of a digest takes its write lock and is
    therefore mutually exclusive with every in-flight read of that
    digest — a reader can never observe a half-repaired entry or keep a
    view of bytes that were just quarantined.

    Stripes bound memory: digests hash onto a fixed array of locks, so
    two digests may share a stripe (spurious contention, never a
    correctness issue).  Lock-ordering discipline for users: a stripe
    lock is always acquired OUTSIDE the store mutex, never while
    holding it.
    """

    DEFAULT_STRIPES = 64

    def __init__(self, stripes: int = DEFAULT_STRIPES) -> None:
        if stripes < 1:
            raise ValueError(f"need at least one stripe: {stripes!r}")
        self._stripes: Tuple[RWLock, ...] = tuple(
            RWLock(f"digest-stripe-{index}") for index in range(stripes)
        )

    def stripe_for(self, digest: str) -> RWLock:
        index = zlib.crc32(digest.encode("ascii")) % len(self._stripes)
        return self._stripes[index]

    @contextmanager
    def reading(self, digest: str) -> Iterator[RWLock]:
        """Shared hold on *digest* for the duration of the block."""
        lock = self.stripe_for(digest)
        lock.acquire_read()
        try:
            yield lock
        finally:
            lock.release_read()

    @contextmanager
    def writing(self, digest: str) -> Iterator[RWLock]:
        """Exclusive hold on *digest* (repair/quarantine/invalidate)."""
        lock = self.stripe_for(digest)
        lock.acquire_write()
        try:
            yield lock
        finally:
            lock.release_write()

    def __len__(self) -> int:
        return len(self._stripes)


class Acquisition:
    """A granted set of locks; release with :meth:`release` or ``with``."""

    def __init__(self, manager: "LockManager", granted: List[Tuple[str, str]]):
        self._manager = manager
        #: (key, mode) pairs in acquisition (global sort) order
        self._granted = granted
        self._released = False

    @property
    def keys(self) -> List[Tuple[str, str]]:
        return list(self._granted)

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._manager._release_all(self._granted)

    def __enter__(self) -> "Acquisition":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class LockManager:
    """Named read/write locks acquired in global ``sort_key`` order."""

    def __init__(self) -> None:
        self._locks: Dict[str, RWLock] = {}
        self._mutex = threading.Lock()
        #: blocking acquisitions that had to wait + non-blocking refusals
        self.contentions = 0
        #: total acquire() calls that were granted
        self.acquisitions = 0

    def lock_for(self, key: str) -> RWLock:
        """The (lazily created) lock guarding *key*."""
        with self._mutex:
            lock = self._locks.get(key)
            if lock is None:
                lock = RWLock(key)
                self._locks[key] = lock
            return lock

    def acquire(
        self,
        read: Iterable[str] = (),
        write: Iterable[str] = (),
        blocking: bool = True,
        timeout: Optional[float] = None,
    ) -> Acquisition:
        """Atomically acquire every requested key; write supersedes read.

        Keys are locked in global :func:`sort_key` order regardless of
        the order given, which makes concurrent acquirers deadlock-free.
        On failure (non-blocking refusal or timeout) every lock already
        taken is released before :class:`LockContentionError` propagates.
        """
        write_keys = set(write)
        modes: Dict[str, str] = {key: "read" for key in read}
        modes.update({key: "write" for key in write_keys})
        ordered = sorted(modes, key=sort_key)
        granted: List[Tuple[str, str]] = []
        try:
            for key in ordered:
                mode = modes[key]
                lock = self.lock_for(key)
                if mode == "write":
                    lock.acquire_write(blocking=blocking, timeout=timeout)
                else:
                    lock.acquire_read(blocking=blocking, timeout=timeout)
                granted.append((key, mode))
        except LockContentionError:
            with self._mutex:
                self.contentions += 1
            self._release_all(granted)
            raise
        with self._mutex:
            self.acquisitions += 1
        return Acquisition(self, granted)

    @contextmanager
    def acquiring(
        self,
        read: Iterable[str] = (),
        write: Iterable[str] = (),
        blocking: bool = True,
        timeout: Optional[float] = None,
    ) -> Iterator[Acquisition]:
        """``with``-style :meth:`acquire`."""
        acquisition = self.acquire(
            read=read, write=write, blocking=blocking, timeout=timeout
        )
        try:
            yield acquisition
        finally:
            acquisition.release()

    # -- internals ---------------------------------------------------------

    def _release_all(self, granted: Sequence[Tuple[str, str]]) -> None:
        """Release in reverse acquisition order (strict LIFO discipline)."""
        for key, mode in reversed(granted):
            lock = self.lock_for(key)
            if mode == "write":
                lock.release_write()
            else:
                lock.release_read()

    def stats(self) -> Dict[str, int]:
        with self._mutex:
            return {
                "locks": len(self._locks),
                "acquisitions": self.acquisitions,
                "contentions": self.contentions,
            }


class CompositeAcquisition:
    """Locks granted across several shard managers; strict LIFO release."""

    def __init__(self, parts: List[Acquisition]) -> None:
        #: per-shard acquisitions in ascending shard order
        self._parts = parts
        self._released = False

    @property
    def keys(self) -> List[Tuple[str, str]]:
        return [pair for part in self._parts for pair in part.keys]

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        for part in reversed(self._parts):
            part.release()

    def __enter__(self) -> "CompositeAcquisition":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class ShardedLockManager:
    """Routes each lock key to an independent per-shard :class:`LockManager`.

    The design-server seam: with one global ``LockManager`` every team's
    acquisitions serialise through one bookkeeping mutex and one lock
    namespace.  A ``ShardedLockManager`` gives each shard (assigned by a
    caller-provided ``shard_of(key)`` function — in practice the server's
    consistent-hash map over library names) its own manager, so teams on
    different shards never touch each other's lock tables.

    Deadlock freedom is preserved by a two-level total order: shards are
    acquired in ascending shard id (the "ordered two-shard path" for the
    rare cross-shard request), and keys within a shard in the usual
    :func:`repro.ids.sort_key` order.  Every acquirer uses the same
    order, so no cycle of waiters can form even across shards.

    The facade keeps :class:`LockManager`'s interface (``acquire``,
    ``acquiring``, ``lock_for``, ``stats``) so ``OMSDatabase.locks`` can
    be swapped without touching the scheduler.
    """

    def __init__(
        self,
        shard_of: Callable[[str], int],
        shards: int,
    ) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard: {shards!r}")
        self.shard_of = shard_of
        self._managers: Tuple[LockManager, ...] = tuple(
            LockManager() for _ in range(shards)
        )

    @property
    def shard_count(self) -> int:
        return len(self._managers)

    def manager(self, shard_id: int) -> LockManager:
        """The underlying per-shard manager (tests, stats drill-down)."""
        return self._managers[shard_id]

    def _route(self, key: str) -> int:
        shard = self.shard_of(key)
        if not 0 <= shard < len(self._managers):
            raise ValueError(
                f"shard_of({key!r}) = {shard!r} outside 0..{len(self._managers) - 1}"
            )
        return shard

    def lock_for(self, key: str) -> RWLock:
        return self._managers[self._route(key)].lock_for(key)

    def acquire(
        self,
        read: Iterable[str] = (),
        write: Iterable[str] = (),
        blocking: bool = True,
        timeout: Optional[float] = None,
    ) -> CompositeAcquisition:
        """Acquire keys shard by shard in ascending shard id.

        Within each shard the per-shard manager applies its own
        ``sort_key`` order.  On refusal, shards already granted are
        released in reverse before the error propagates — exactly the
        all-or-nothing contract of :meth:`LockManager.acquire`.
        """
        write_keys = set(write)
        modes: Dict[str, str] = {key: "read" for key in read}
        modes.update({key: "write" for key in write_keys})
        by_shard: Dict[int, Dict[str, List[str]]] = {}
        for key, mode in modes.items():
            bucket = by_shard.setdefault(
                self._route(key), {"read": [], "write": []}
            )
            bucket[mode].append(key)
        parts: List[Acquisition] = []
        try:
            for shard_id in sorted(by_shard):
                bucket = by_shard[shard_id]
                parts.append(
                    self._managers[shard_id].acquire(
                        read=bucket["read"],
                        write=bucket["write"],
                        blocking=blocking,
                        timeout=timeout,
                    )
                )
        except LockContentionError:
            for part in reversed(parts):
                part.release()
            raise
        return CompositeAcquisition(parts)

    @contextmanager
    def acquiring(
        self,
        read: Iterable[str] = (),
        write: Iterable[str] = (),
        blocking: bool = True,
        timeout: Optional[float] = None,
    ) -> Iterator[CompositeAcquisition]:
        """``with``-style :meth:`acquire`."""
        acquisition = self.acquire(
            read=read, write=write, blocking=blocking, timeout=timeout
        )
        try:
            yield acquisition
        finally:
            acquisition.release()

    def stats(self) -> Dict[str, object]:
        """Aggregate totals plus a per-shard breakdown under ``"shards"``."""
        per_shard = {
            shard_id: manager.stats()
            for shard_id, manager in enumerate(self._managers)
        }
        totals = {
            "locks": sum(s["locks"] for s in per_shard.values()),
            "acquisitions": sum(s["acquisitions"] for s in per_shard.values()),
            "contentions": sum(s["contentions"] for s in per_shard.values()),
        }
        totals["shards"] = per_shard
        return totals
