"""Content-addressed payload storage for OMS design data.

Section 3.6 blames design-data operations — whole-file copies "to and
from the database via the UNIX file system", even for read-only access —
for the hybrid framework's cost on realistic designs.  The copy is only
necessary when the bytes on either side actually differ, and in a
version-dense design database most bytes are shared: re-exports of
unchanged data, re-imports after read-only tool runs, and version chains
where each version is a small edit of its predecessor.

``BlobStore`` makes that sharing explicit:

* **Digest addressing.**  Every payload is keyed by the SHA-256 digest of
  its full content.  Storing the same bytes twice costs one reference
  count bump, never a second copy (``dedup_hits`` counts these).
* **Reference counting.**  Objects hold references to blobs; a blob's
  bytes are freed exactly when the last reference drops.  Refcounts are
  asserted non-negative — a buggy caller raises instead of corrupting.
* **Delta chains.**  A payload may be stored as a *delta* against a base
  blob (common prefix + common suffix + replaced middle).  Reconstruction
  is transparent; :meth:`BlobStore.stat` answers digest/size probes in
  O(1) without ever materializing bytes.  A delta holds a reference on
  its base, so bases stay alive while dependents exist.  Chain depth is
  bounded by :attr:`BlobStore.MAX_CHAIN_DEPTH`: once a chain is that
  deep the next payload is stored in full, which bounds reconstruction
  work at ``O(MAX_CHAIN_DEPTH)`` delta applications.

The store is deliberately clock-agnostic: cost accounting stays with the
staging area and database, which decide what a dedup hit is *worth*.
"""

from __future__ import annotations

import dataclasses
import hashlib
import mmap
import os
import pathlib
import threading
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.errors import IntegrityError, OMSError, QuarantinedError
from repro.faults import corruption_point, fault_point
from repro.oms.locks import DigestLockTable
from repro.oms.zerocopy import (
    FsCapabilities,
    digest_view,
    probe_capabilities,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.oms.readcache import MaterializationCache


def digest_bytes(data: bytes) -> str:
    """The content address of *data*: hex SHA-256."""
    return hashlib.sha256(data).hexdigest()


#: digest of the empty payload — what an absent/empty design file hashes to
EMPTY_DIGEST = digest_bytes(b"")

#: fixed bookkeeping overhead assumed per delta entry (bytes); a delta is
#: only worth storing when middle + overhead undercuts the full payload
_DELTA_OVERHEAD = 64


@dataclasses.dataclass(frozen=True)
class BlobStat:
    """O(1) answer to "what would these bytes be?" — no materialization."""

    digest: str
    size: int


#: damage classifications shared with the scrubber
CLASS_BIT_ROT = "bit-rot"        # same length, different bytes
CLASS_TRUNCATION = "truncation"  # shorter than the recorded size
CLASS_TORN_WRITE = "torn-write"  # longer / structurally wrong


def classify_damage(
    expected_size: int, data: bytes, expected_digest: str
) -> Optional[str]:
    """``None`` if *data* matches its content address, else a class.

    The fast path is a single C-speed SHA-256 over the bytes; size
    comparison only runs once the hash has already disagreed, to name
    the damage: shorter than recorded is truncation, longer is a torn
    write, same length is bit-rot.
    """
    if digest_bytes(data) == expected_digest:
        return None
    if len(data) < expected_size:
        return CLASS_TRUNCATION
    if len(data) > expected_size:
        return CLASS_TORN_WRITE
    return CLASS_BIT_ROT


class _Entry:
    """One stored blob: full bytes, or a delta against ``base_digest``."""

    __slots__ = (
        "refcount", "size", "depth", "quarantined", "verified",
        "data", "base_digest", "prefix_len", "suffix_len", "middle",
    )

    def __init__(
        self,
        size: int,
        data: Optional[bytes] = None,
        base_digest: Optional[str] = None,
        prefix_len: int = 0,
        suffix_len: int = 0,
        middle: bytes = b"",
        depth: int = 0,
    ) -> None:
        self.refcount = 1
        self.size = size
        self.depth = depth
        self.quarantined = False
        #: verified-read fast path: stored bytes are immutable after the
        #: intern (damage lands *at* the write, never later), so one
        #: successful verification proves every later read of the same
        #: entry.  Repair resets it; the scrubber bypasses it entirely.
        self.verified = False
        self.data = data
        self.base_digest = base_digest
        self.prefix_len = prefix_len
        self.suffix_len = suffix_len
        self.middle = middle

    @property
    def is_delta(self) -> bool:
        return self.data is None

    @property
    def stored_bytes(self) -> int:
        """Bytes this entry actually occupies (middle only, for deltas)."""
        if self.is_delta:
            return len(self.middle) + _DELTA_OVERHEAD
        return len(self.data)


class _MappedView:
    """One live mmap over a blob's spill file, shared by its borrowers."""

    __slots__ = ("mapping", "path")

    def __init__(self, mapping: mmap.mmap, path: pathlib.Path) -> None:
        self.mapping = mapping
        self.path = path

    def memoryview(self) -> memoryview:
        return memoryview(self.mapping)

    def close(self) -> bool:
        """Unmap and unlink; False when exported views pin the mapping.

        Python cannot revoke a handed-out ``memoryview``; when borrowers
        still hold one the mapping stays alive (they keep reading the
        bytes they were lent) but the spill file is unlinked either way,
        so no *new* reader can reach it.
        """
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        try:
            self.mapping.close()
        except BufferError:
            return False
        return True


class BlobStore:
    """Digest-keyed, refcounted, delta-capable payload table."""

    #: longest allowed base chain under a delta; beyond this the payload
    #: is stored in full, flattening the chain (bounds reconstruction)
    MAX_CHAIN_DEPTH = 64

    def __init__(self, verify_reads: bool = True) -> None:
        self._entries: Dict[str, _Entry] = {}
        #: payloads interned that were already present (copies avoided)
        self.dedup_hits = 0
        #: payloads stored as deltas instead of full copies
        self.delta_stores = 0
        #: every materialization re-digests the reconstructed bytes and
        #: raises IntegrityError on mismatch; ``False`` is the unverified
        #: baseline arm of ``bench_integrity``
        self.verify_reads = verify_reads
        #: reads that paid the verification re-digest
        self.verifications = 0
        #: verified reads served by the verified-once fast path instead
        self.verification_hits = 0
        #: serialises refcount and chain mutations under the parallel
        #: scheduler; reentrant because _free cascades through decref.
        #: Held only for table lookups/mutations — reconstruction,
        #: hashing and encoding all run outside it (see _digest_locks).
        self._lock = threading.RLock()
        #: per-digest striped read/write locks: N readers of N digests
        #: proceed concurrently; repair/quarantine of a digest excludes
        #: its readers.  Always acquired OUTSIDE self._lock.
        self._digest_locks = DigestLockTable()
        #: shared materialization cache (attach_cache); digest-keyed,
        #: verified bytes only
        self._cache: Optional["MaterializationCache"] = None
        #: digest -> live mmap view over a spill file (enable_views)
        self._views: Dict[str, _MappedView] = {}
        #: mappings invalidation could not close because borrowers still
        #: hold memoryviews — kept so the interpreter never unmaps pages
        #: under a live buffer
        self._pinned_views: List[_MappedView] = []
        self._view_root: Optional[pathlib.Path] = None
        self._view_caps: Optional[FsCapabilities] = None
        #: open_view outcomes: mmap-backed, served-from-live-map, heap copy
        self.views_mapped = 0
        self.view_hits = 0
        self.view_fallbacks = 0

    # -- read-path attachments ----------------------------------------------

    def attach_cache(self, cache: Optional["MaterializationCache"]) -> None:
        """Serve verified materializations from (and into) *cache*."""
        self._cache = cache

    def enable_views(
        self,
        root: pathlib.Path,
        capabilities: Optional[FsCapabilities] = None,
    ) -> FsCapabilities:
        """Allow mmap-backed views, spilling base-resident blobs to *root*.

        Stale spill files from a previous process are swept — a view
        file is only ever trusted for the lifetime of the mapping that
        verified it.  Returns the probed (or given) capabilities; when
        the filesystem cannot mmap, ``open_view`` silently degrades to
        heap-backed views and the store behaves exactly as before.
        """
        root = pathlib.Path(root)
        root.mkdir(parents=True, exist_ok=True)
        for stale in root.glob("*.view"):
            try:
                stale.unlink()
            except FileNotFoundError:  # pragma: no cover - sweep race
                pass
        caps = capabilities or probe_capabilities(root)
        with self._lock:
            self._view_root = root
            self._view_caps = caps
        return caps

    # -- storing -------------------------------------------------------------

    def intern(
        self, data: bytes, base_digest: Optional[str] = None
    ) -> str:
        """Store *data* (dedup by content) and take one reference on it.

        When *base_digest* names a stored blob, the new payload is
        delta-encoded against it if that actually saves space and the
        chain stays under :attr:`MAX_CHAIN_DEPTH`.  Returns the digest.
        """
        fault_point("blobs.intern")
        digest = digest_bytes(data)
        base_depth = 0
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None:
                entry.refcount += 1
                self.dedup_hits += 1
                return digest
            base = (
                self._entries.get(base_digest)
                if base_digest is not None
                else None
            )
            pin_base = base is not None and base.depth < self.MAX_CHAIN_DEPTH
            if pin_base:
                # pin the base across the unlocked encode so a concurrent
                # release cannot free it while we diff against its bytes
                base.refcount += 1
                base_depth = base.depth
        # heavy work — materializing the base, the prefix/suffix scans,
        # hashing — all runs with no lock held: concurrent readers and
        # interns of other digests make progress meanwhile
        try:
            entry = self._encode(
                data, base_digest if pin_base else None, base_depth
            )
        except BaseException:
            if pin_base:
                self.decref(base_digest)
            raise
        with self._lock:
            existing = self._entries.get(digest)
            if existing is not None:
                # a concurrent intern of the same bytes won the race
                existing.refcount += 1
                self.dedup_hits += 1
                if pin_base:
                    self.decref(base_digest)
                return digest
            if entry.is_delta:
                self.delta_stores += 1  # the pin becomes the base ref
            elif pin_base:
                self.decref(base_digest)  # stored in full: drop the pin
            self._entries[digest] = entry
            return digest

    def _encode(
        self, data: bytes, base_digest: Optional[str], base_depth: int
    ) -> _Entry:
        # the recorded size is always that of the pristine payload; the
        # stored representation passes through the corruption point so an
        # injected fault damages what lands at rest, not the size the
        # verifier will hold the bytes against
        size = len(data)
        if base_digest is None:
            return _Entry(
                size=size, data=corruption_point("blobs.payload", data)
            )
        base_bytes = self.materialize(base_digest)
        prefix = _common_prefix(base_bytes, data)
        suffix = _common_suffix(base_bytes[prefix:], data[prefix:])
        middle = data[prefix:len(data) - suffix]
        if len(middle) + _DELTA_OVERHEAD >= len(data):
            return _Entry(
                size=size, data=corruption_point("blobs.payload", data)
            )
        return _Entry(
            size=size,
            base_digest=base_digest,
            prefix_len=prefix,
            suffix_len=suffix,
            middle=corruption_point("blobs.payload", middle),
            depth=base_depth + 1,
        )

    # -- reading -------------------------------------------------------------

    def contains(self, digest: str) -> bool:
        return digest in self._entries

    def digests(self) -> List[str]:
        """All digests currently interned (sorted; WAL checkpoint hook)."""
        with self._lock:
            return sorted(self._entries)

    def stat(self, digest: str) -> BlobStat:
        """Digest and size in O(1) — never touches payload bytes."""
        with self._lock:
            return BlobStat(digest=digest, size=self._require(digest).size)

    def materialize(self, digest: str, verify: Optional[bool] = None) -> bytes:
        """Reconstruct the full payload, applying the delta chain.

        With verification on (the default — see :attr:`verify_reads`)
        the reconstructed bytes are re-digested against the content
        address and an :class:`IntegrityError` is raised instead of
        returning garbage.  The whole chain is covered by one hash over
        the final bytes: a damaged base or a damaged delta both change
        the reconstruction, so per-link checks would only add cost.
        """
        if verify is None:
            verify = self.verify_reads
        with self._digest_locks.reading(digest):
            return self._materialize_held(digest, verify)

    def _materialize_held(self, digest: str, verify: bool) -> bytes:
        """Materialize while the caller holds the digest's stripe read."""
        with self._lock:
            target = self._require(digest)
            self._refuse_quarantined(digest, target)
        # the cache only ever holds verified bytes, so an unverified
        # read (bench baseline arm) bypasses it entirely — get AND put
        if verify and self._cache is not None:
            cached = self._cache.get(digest)
            if cached is not None:
                return cached
        data = self._reconstruct(digest)
        if verify:
            if target.verified:
                # fast path: this entry (and therefore the chain under
                # it) already proved its digest once, and stored bytes
                # never mutate after the intern — skip the re-hash
                self.verification_hits += 1
            else:
                self.verifications += 1
                problem = classify_damage(target.size, data, digest)
                if problem is not None:
                    raise IntegrityError(
                        f"blob {digest[:12]}: stored bytes fail verification "
                        f"({problem}; {len(data)} bytes, recorded size "
                        f"{target.size})",
                        location=f"blob:{digest}",
                        classification=problem,
                    )
                target.verified = True
            if self._cache is not None:
                self._cache.put(digest, data)
        return data

    def _refuse_quarantined(self, digest: str, entry: _Entry) -> None:
        if entry.quarantined:
            raise QuarantinedError(
                f"blob {digest[:12]} is quarantined: its bytes failed "
                "verification and no repair source was found",
                location=f"blob:{digest}",
            )

    def open_view(
        self, digest: str, verify: Optional[bool] = None
    ) -> memoryview:
        """A read-only :class:`memoryview` of the payload, zero-copy when
        possible.

        Base-resident (non-delta) blobs are spilled once to a view file
        under the root given to :meth:`enable_views`, mmap'd read-only,
        verified chunk-wise against the content address, and every later
        view of the digest is a window over the same mapping — no heap
        copy, no re-hash.  Delta entries, empty payloads, or stores
        without mmap support degrade to a heap-backed view over
        :meth:`materialize` (byte-identical, just not zero-copy).

        A handed-out view is a loan of *verified-at-map-time* bytes:
        quarantine/repair close the mapping for future readers but
        cannot revoke views already exported.
        """
        if verify is None:
            verify = self.verify_reads
        with self._digest_locks.reading(digest):
            with self._lock:
                target = self._require(digest)
                self._refuse_quarantined(digest, target)
                view = self._views.get(digest)
                if view is not None:
                    self.view_hits += 1
                    return view.memoryview()
                root = self._view_root
                caps = self._view_caps
                mappable = (
                    root is not None
                    and caps is not None
                    and caps.mmap
                    and not target.is_delta
                    and target.size > 0
                )
                data = target.data if mappable else None
            if not mappable:
                self.view_fallbacks += 1
                return memoryview(self._materialize_held(digest, verify))
            return self._map_view(digest, target.size, data, root, verify)

    def _map_view(
        self,
        digest: str,
        size: int,
        data: bytes,
        root: pathlib.Path,
        verify: bool,
    ) -> memoryview:
        """Spill, map, verify, and register a view (stripe read held)."""
        # per-thread spill name: two readers racing on one digest each
        # build a private file; the loser discards its own below
        path = root / f"{digest}.{threading.get_ident()}.view"
        path.write_bytes(corruption_point("blobs.mmap", data))
        fd = os.open(path, os.O_RDONLY)
        try:
            mapping = mmap.mmap(fd, 0, prot=mmap.PROT_READ)
        finally:
            os.close(fd)
        view = _MappedView(mapping, path)
        if verify:
            actual = digest_view(mapping)
            if actual != digest:
                length = len(mapping)
                if length < size:
                    problem = CLASS_TRUNCATION
                elif length > size:
                    problem = CLASS_TORN_WRITE
                else:
                    problem = CLASS_BIT_ROT
                view.close()
                raise IntegrityError(
                    f"blob {digest[:12]}: mmap view bytes fail verification "
                    f"({problem}; {length} bytes, recorded size {size})",
                    location=f"blob:{digest}",
                    classification=problem,
                )
        loser: Optional[_MappedView] = None
        with self._lock:
            existing = self._views.get(digest)
            if existing is not None:
                self.view_hits += 1
                result = existing.memoryview()
                loser = view
            else:
                self._views[digest] = view
                self.views_mapped += 1
                if verify:
                    entry = self._entries.get(digest)
                    if entry is not None:
                        entry.verified = True
                result = view.memoryview()
        if loser is not None:
            loser.close()
        return result

    def _reconstruct(self, digest: str) -> bytes:
        """Chain walk + delta application; no quarantine or hash checks.

        The scrubber uses this to look at bytes the public read path
        refuses to serve; :meth:`check` uses it to keep its own
        ``OMSError`` contract.
        """
        with self._lock:
            chain: List[_Entry] = []
            entry = self._require(digest)
            while entry.is_delta:
                chain.append(entry)
                entry = self._require(entry.base_digest)
            data = entry.data
        for delta in reversed(chain):
            tail = data[len(data) - delta.suffix_len:] if delta.suffix_len else b""
            data = data[:delta.prefix_len] + delta.middle + tail
        return data

    def describe(self, digest: str) -> Dict[str, int]:
        """Storage shape of one entry (for experiments and assertions)."""
        with self._lock:
            entry = self._require(digest)
        return {
            "size": entry.size,
            "stored_bytes": entry.stored_bytes,
            "depth": entry.depth,
            "refcount": entry.refcount,
            "is_delta": int(entry.is_delta),
        }

    # -- reference management ------------------------------------------------

    def incref(self, digest: str) -> None:
        with self._lock:
            self._require(digest).refcount += 1

    def decref(self, digest: str) -> None:
        """Drop one reference; frees the entry when none remain."""
        with self._lock:
            entry = self._require(digest)
            entry.refcount -= 1
            if entry.refcount == 0:
                self._free(digest, entry)

    def release(self, digest: str) -> Optional[bytes]:
        """Like :meth:`decref`, but hands back the bytes if this was the
        last reference — the hook transaction undo journals use so a
        rolled-back overwrite can re-intern exactly what was freed.

        The handed-back bytes go through the verified read path: if the
        last copy is corrupt this raises :class:`IntegrityError` and
        leaves the refcount untouched, so an undo journal never
        re-interns garbage and the damaged entry stays addressable for
        the scrubber to repair.
        """
        with self._lock:
            entry = self._require(digest)
            if entry.refcount > 1:
                entry.refcount -= 1
                return None
        # last reference: the verified read takes the digest's stripe,
        # so it must run outside the table lock; re-check after
        data = self.materialize(digest)
        with self._lock:
            entry = self._require(digest)
            if entry.refcount == 1:
                entry.refcount = 0
                self._free(digest, entry)
                return data
            entry.refcount -= 1  # a concurrent incref/intern revived it
            return None

    def _free(self, digest: str, entry: _Entry) -> None:
        del self._entries[digest]
        self._drop_view(digest)  # reclaim the spill file, if any
        if entry.is_delta:
            self.decref(entry.base_digest)  # may cascade up the chain

    def _require(self, digest: str) -> _Entry:
        entry = self._entries.get(digest)
        if entry is None:
            raise OMSError(f"unknown blob: {digest!r}")
        if entry.refcount <= 0:  # pragma: no cover - internal invariant
            raise OMSError(
                f"blob {digest!r} refcount {entry.refcount} is not positive"
            )
        return entry

    # -- integrity: scrub, repair, quarantine --------------------------------

    def scrub(self) -> Dict[str, str]:
        """Re-verify every stored payload; map digest -> damage class.

        Quarantined entries are skipped — they are already known-bad and
        reporting them again would keep a clean store from reaching the
        scrubber's fixpoint.  A corrupt base surfaces both as itself and
        through every delta stacked on it; repairing the base (and
        re-scrubbing) clears the children, which is why the scrubber's
        repair loop iterates.
        """
        with self._lock:
            digests = sorted(self._entries)
        findings: Dict[str, str] = {}
        for digest in digests:
            with self._lock:
                entry = self._entries.get(digest)
                if entry is None or entry.quarantined:
                    continue
                size = entry.size
            problem = classify_damage(size, self._reconstruct(digest), digest)
            if problem is not None:
                findings[digest] = problem
        return findings

    def repair(self, digest: str, data: bytes) -> None:
        """Replace a damaged entry's stored bytes with a verified copy.

        *data* must hash to *digest* — the repair source (a peer FMCAD
        library file, a staged export, ...) proves itself pristine before
        it is allowed to overwrite anything.  A delta entry is converted
        to a full entry in place: its chain position (depth, refcount,
        children's bases) is preserved, only the representation changes,
        and the old base loses the reference the delta held.
        """
        if digest_bytes(data) != digest:
            raise IntegrityError(
                f"repair source for blob {digest[:12]} hashes to "
                f"{digest_bytes(data)[:12]} — refusing to store it",
                location=f"blob:{digest}",
                classification=CLASS_BIT_ROT,
            )
        # the digest's write stripe excludes every in-flight read: no
        # reader can observe the entry mid-swap or map a view of the
        # pre-repair bytes after we invalidate
        with self._digest_locks.writing(digest):
            with self._lock:
                entry = self._require(digest)
                old_base = entry.base_digest
                entry.data = data
                entry.base_digest = None
                entry.prefix_len = 0
                entry.suffix_len = 0
                entry.middle = b""
                entry.size = len(data)
                entry.quarantined = False
                # the representation changed: the next verified read must
                # re-prove the digest rather than trust the old cache
                entry.verified = False
                self._invalidate_digest(digest)
                if old_base is not None:
                    self.decref(old_base)

    def quarantine(self, digest: str) -> None:
        """Mark an unrepairable entry: reads raise, scrub skips it.

        Takes the digest's write stripe and drops any cached bytes or
        live view, so a reader that raced us either finished before the
        quarantine or will see :class:`QuarantinedError` — never a cache
        hit on known-bad bytes.
        """
        with self._digest_locks.writing(digest):
            with self._lock:
                self._require(digest).quarantined = True
                self._invalidate_digest(digest)

    def _invalidate_digest(self, digest: str) -> None:
        """Drop cache entry + view for *digest* (table lock held)."""
        if self._cache is not None:
            self._cache.invalidate(digest)
        self._drop_view(digest)

    def _drop_view(self, digest: str) -> None:
        view = self._views.pop(digest, None)
        if view is not None and not view.close():
            # borrowers still hold memoryviews; park the mapping so the
            # pages stay valid for them (file is already unlinked)
            self._pinned_views.append(view)

    def quarantined_digests(self) -> List[str]:
        with self._lock:
            return sorted(
                d for d, e in self._entries.items() if e.quarantined
            )

    # -- statistics and invariants -------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Dedup/delta effectiveness counters for experiments."""
        with self._lock:
            full = sum(1 for e in self._entries.values() if not e.is_delta)
            return {
                "blobs": len(self._entries),
                "full_blobs": full,
                "delta_blobs": len(self._entries) - full,
                "logical_bytes": sum(e.size for e in self._entries.values()),
                "stored_bytes": sum(
                    e.stored_bytes for e in self._entries.values()
                ),
                "dedup_hits": self.dedup_hits,
                "delta_stores": self.delta_stores,
                "max_chain_depth": max(
                    (e.depth for e in self._entries.values()), default=0
                ),
                "views_mapped": self.views_mapped,
                "view_hits": self.view_hits,
                "view_fallbacks": self.view_fallbacks,
            }

    def reference_audit(self, external: Dict[str, int]) -> List[str]:
        """Compare refcounts against *external* reference claims.

        *external* maps digest -> how many references live objects hold
        (one per :class:`PayloadHandle`).  Internally, each delta entry
        holds one more reference on its base.  Any digest whose stored
        refcount disagrees with the sum — or that only one side knows
        about — is reported.  The crash suite uses this to prove blob
        refcounts stayed *exact* through crash and recovery.
        """
        internal: Dict[str, int] = {}
        for entry in self._entries.values():
            if entry.is_delta:
                internal[entry.base_digest] = (
                    internal.get(entry.base_digest, 0) + 1
                )
        problems: List[str] = []
        for digest in sorted(set(external) - set(self._entries)):
            if external[digest]:
                problems.append(
                    f"blob {digest[:12]}: {external[digest]} live references "
                    "but no store entry"
                )
        for digest in sorted(self._entries):
            expected = external.get(digest, 0) + internal.get(digest, 0)
            actual = self._entries[digest].refcount
            if actual != expected:
                problems.append(
                    f"blob {digest[:12]}: refcount {actual}, expected "
                    f"{expected} ({external.get(digest, 0)} live + "
                    f"{internal.get(digest, 0)} delta-base)"
                )
        return problems

    def check(self) -> None:
        """Raise :class:`OMSError` on any broken store invariant.

        Used by the property tests: refcounts strictly positive, every
        delta's base present, depths consistent, and every entry
        reconstructing to bytes that hash back to its own key.
        """
        for digest, entry in self._entries.items():
            if entry.refcount <= 0:
                raise OMSError(
                    f"blob {digest!r}: refcount {entry.refcount} <= 0"
                )
            if entry.is_delta:
                base = self._entries.get(entry.base_digest)
                if base is None:
                    raise OMSError(
                        f"blob {digest!r}: missing base {entry.base_digest!r}"
                    )
                if entry.depth != base.depth + 1:
                    raise OMSError(f"blob {digest!r}: inconsistent depth")
            if entry.quarantined:
                continue  # known-bad bytes; structural checks still ran
            data = self._reconstruct(digest)
            if len(data) != entry.size or digest_bytes(data) != digest:
                raise OMSError(
                    f"blob {digest!r}: reconstruction does not match key"
                )


class PayloadHandle:
    """An object's reference to its interned payload.

    The handle never caches bytes: size and digest probes are O(1)
    against the store, and :meth:`materialize` reconstructs on demand.
    One handle corresponds to exactly one store reference, owned by the
    database primitives that created it.
    """

    __slots__ = ("store", "digest")

    def __init__(self, store: BlobStore, digest: str) -> None:
        self.store = store
        self.digest = digest

    @property
    def size(self) -> int:
        return self.store.stat(self.digest).size

    def materialize(self) -> bytes:
        return self.store.materialize(self.digest)

    def open_view(self) -> memoryview:
        """Zero-copy (where possible) read-only view of the payload."""
        return self.store.open_view(self.digest)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PayloadHandle {self.digest[:12]}>"


#: block size for the C-speed slice comparisons below (4 KiB)
_SCAN_BLOCK = 1 << 12


def _common_prefix(a: bytes, b: bytes) -> int:
    bound = min(len(a), len(b))
    ma, mb = memoryview(a), memoryview(b)
    lo = 0
    # compare whole blocks at C speed; only the first differing block
    # is scanned byte-by-byte
    while (
        lo + _SCAN_BLOCK <= bound
        and ma[lo:lo + _SCAN_BLOCK] == mb[lo:lo + _SCAN_BLOCK]
    ):
        lo += _SCAN_BLOCK
    while lo < bound and a[lo] == b[lo]:
        lo += 1
    return lo


def _common_suffix(a: bytes, b: bytes) -> int:
    bound = min(len(a), len(b))
    la, lb = len(a), len(b)
    ma, mb = memoryview(a), memoryview(b)
    n = 0
    while (
        n + _SCAN_BLOCK <= bound
        and ma[la - n - _SCAN_BLOCK:la - n] == mb[lb - n - _SCAN_BLOCK:lb - n]
    ):
        n += _SCAN_BLOCK
    while n < bound and a[la - 1 - n] == b[lb - 1 - n]:
        n += 1
    return n
