"""Schema definitions for the OMS object store.

A schema is a set of entity types (with typed attributes) and relationship
types (with endpoint types and cardinalities).  JCF and FMCAD both express
their Figure 1 / Figure 2 information models as OMS schemas, which lets
the ``bench_models`` benchmark regenerate those figures by introspection.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, List, Tuple, Type

from repro.errors import AttributeTypeError, SchemaError

#: Attribute types supported by the kernel, by schema name.
_ATTRIBUTE_TYPES: Dict[str, Tuple[Type, ...]] = {
    "str": (str,),
    "int": (int,),
    "float": (int, float),
    "bool": (bool,),
    "bytes": (bytes,),
    "list": (list, tuple),
    "dict": (dict,),
}

#: Relationship cardinalities.  ``"1:N"`` means one source object may link
#: to many targets while each target has at most one source.
CARDINALITIES = ("1:1", "1:N", "N:1", "M:N")


@dataclasses.dataclass(frozen=True)
class AttributeDef:
    """Declaration of one typed attribute of an entity type."""

    name: str
    type_name: str
    required: bool = False
    default: Any = None

    def __post_init__(self) -> None:
        if self.type_name not in _ATTRIBUTE_TYPES:
            raise SchemaError(
                f"attribute {self.name!r}: unknown type {self.type_name!r}; "
                f"expected one of {sorted(_ATTRIBUTE_TYPES)}"
            )
        if self.default is not None:
            self.validate(self.default)

    def validate(self, value: Any) -> None:
        """Raise :class:`AttributeTypeError` if *value* is ill-typed."""
        if value is None:
            if self.required:
                raise AttributeTypeError(
                    f"attribute {self.name!r} is required and cannot be None"
                )
            return
        expected = _ATTRIBUTE_TYPES[self.type_name]
        # bool is a subclass of int; keep int attributes strictly numeric.
        if self.type_name in ("int", "float") and isinstance(value, bool):
            raise AttributeTypeError(
                f"attribute {self.name!r}: expected {self.type_name}, got bool"
            )
        if not isinstance(value, expected):
            raise AttributeTypeError(
                f"attribute {self.name!r}: expected {self.type_name}, "
                f"got {type(value).__name__}"
            )


@dataclasses.dataclass(frozen=True)
class EntityType:
    """Declaration of one entity type (a node of the information model)."""

    name: str
    attributes: Tuple[AttributeDef, ...] = ()
    doc: str = ""

    def __post_init__(self) -> None:
        seen = set()
        for attr in self.attributes:
            if attr.name in seen:
                raise SchemaError(
                    f"entity {self.name!r}: duplicate attribute {attr.name!r}"
                )
            seen.add(attr.name)

    def attribute(self, name: str) -> AttributeDef:
        """Return the attribute definition named *name*."""
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaError(f"entity {self.name!r} has no attribute {name!r}")

    def attribute_names(self) -> List[str]:
        return [attr.name for attr in self.attributes]

    def validate_values(self, values: Dict[str, Any]) -> Dict[str, Any]:
        """Validate and complete *values* against this entity type.

        Unknown attribute names are rejected; missing optional attributes
        receive their defaults; missing required attributes raise.
        """
        known = {attr.name for attr in self.attributes}
        unknown = set(values) - known
        if unknown:
            raise SchemaError(
                f"entity {self.name!r}: unknown attributes {sorted(unknown)}"
            )
        complete: Dict[str, Any] = {}
        for attr in self.attributes:
            value = values.get(attr.name, attr.default)
            if value is None and attr.required:
                raise AttributeTypeError(
                    f"entity {self.name!r}: attribute {attr.name!r} is required"
                )
            if value is not None:
                attr.validate(value)
            complete[attr.name] = value
        return complete


@dataclasses.dataclass(frozen=True)
class RelationshipDef:
    """Declaration of one relationship type (an edge of the model)."""

    name: str
    source_type: str
    target_type: str
    cardinality: str = "M:N"
    doc: str = ""

    def __post_init__(self) -> None:
        if self.cardinality not in CARDINALITIES:
            raise SchemaError(
                f"relationship {self.name!r}: cardinality {self.cardinality!r} "
                f"not in {CARDINALITIES}"
            )


class Schema:
    """A named collection of entity and relationship types."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._entities: Dict[str, EntityType] = {}
        self._relationships: Dict[str, RelationshipDef] = {}

    # -- construction -------------------------------------------------------

    def add_entity(self, entity: EntityType) -> EntityType:
        if entity.name in self._entities:
            raise SchemaError(f"duplicate entity type {entity.name!r}")
        self._entities[entity.name] = entity
        return entity

    def define_entity(
        self,
        name: str,
        attributes: Iterable[AttributeDef] = (),
        doc: str = "",
    ) -> EntityType:
        """Convenience wrapper building and adding an :class:`EntityType`."""
        return self.add_entity(EntityType(name, tuple(attributes), doc))

    def add_relationship(self, rel: RelationshipDef) -> RelationshipDef:
        if rel.name in self._relationships:
            raise SchemaError(f"duplicate relationship type {rel.name!r}")
        for endpoint in (rel.source_type, rel.target_type):
            if endpoint not in self._entities:
                raise SchemaError(
                    f"relationship {rel.name!r}: unknown entity {endpoint!r}"
                )
        self._relationships[rel.name] = rel
        return rel

    def define_relationship(
        self,
        name: str,
        source_type: str,
        target_type: str,
        cardinality: str = "M:N",
        doc: str = "",
    ) -> RelationshipDef:
        """Convenience wrapper building and adding a :class:`RelationshipDef`."""
        return self.add_relationship(
            RelationshipDef(name, source_type, target_type, cardinality, doc)
        )

    # -- lookup --------------------------------------------------------------

    def entity(self, name: str) -> EntityType:
        try:
            return self._entities[name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no entity type {name!r}"
            ) from None

    def relationship(self, name: str) -> RelationshipDef:
        try:
            return self._relationships[name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no relationship type {name!r}"
            ) from None

    def entity_names(self) -> List[str]:
        return sorted(self._entities)

    def relationship_names(self) -> List[str]:
        return sorted(self._relationships)

    def relationships_of(self, entity_name: str) -> List[RelationshipDef]:
        """All relationship types touching *entity_name* (either endpoint)."""
        return [
            rel
            for rel in self._relationships.values()
            if entity_name in (rel.source_type, rel.target_type)
        ]

    # -- introspection (used to regenerate Figures 1 and 2) -------------------

    def to_dot(self, title: str = "") -> str:
        """Render the schema as a Graphviz DOT entity-relationship graph.

        ``dot -Tpdf`` on the output literally regenerates the paper's
        information-architecture figure for this model.
        """
        lines = [
            "digraph schema {",
            "  rankdir=LR;",
            "  node [shape=record, fontsize=10];",
        ]
        if title:
            lines.append(f'  label="{title}"; labelloc=t;')
        for entity in sorted(self._entities.values(),
                             key=lambda e: e.name):
            attrs = "\\l".join(
                f"{a.name}: {a.type_name}" for a in entity.attributes
            )
            label = entity.name if not attrs else (
                f"{{{entity.name}|{attrs}\\l}}"
            )
            lines.append(f'  "{entity.name}" [label="{label}"];')
        for rel in sorted(self._relationships.values(),
                          key=lambda r: r.name):
            lines.append(
                f'  "{rel.source_type}" -> "{rel.target_type}" '
                f'[label="{rel.name}\\n({rel.cardinality})", fontsize=8];'
            )
        lines.append("}")
        return "\n".join(lines) + "\n"

    def describe(self) -> Dict[str, Any]:
        """Return a JSON-friendly description of the whole schema."""
        return {
            "name": self.name,
            "entities": {
                ent.name: {
                    "doc": ent.doc,
                    "attributes": {
                        a.name: a.type_name for a in ent.attributes
                    },
                }
                for ent in self._entities.values()
            },
            "relationships": {
                rel.name: {
                    "source": rel.source_type,
                    "target": rel.target_type,
                    "cardinality": rel.cardinality,
                    "doc": rel.doc,
                }
                for rel in self._relationships.values()
            },
        }
