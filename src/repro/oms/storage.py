"""File-system staging between OMS and encapsulated tools.

Paper Section 2.1: "In case of encapsulation, the required data are copied
to and from the database via the UNIX file system."  The staging area is
that copy path.  Every export/import writes or reads a real file under the
staging root and charges the simulated clock per byte plus a per-file
overhead — including for read-only accesses, which Section 3.6 identifies
as the dominant cost on realistic design sizes.

The copy-on-write extension (on by default) attacks exactly that cost:
because every payload in OMS is content-addressed, an export can compare
the digest of an already-staged file against the database's O(1) payload
probe and skip the copy when they match, and an import can skip the
database write when the tool did not change the file.  A hit charges the
clock one metadata operation — the digest probe — instead of a per-byte
copy, so repeated read-only access to an unchanged design becomes
size-independent.  Construct with ``copy_on_write=False`` for the naive
always-copy behaviour (the baseline arm of ``bench_staging``).
"""

from __future__ import annotations

import dataclasses
import functools
import os
import pathlib
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import IntegrityError, OMSError
from repro.faults import active_plan, corruption_point, fault_point
from repro.ids import sort_key
from repro.oms.blobs import (
    EMPTY_DIGEST,
    BlobStat,
    classify_damage,
    digest_bytes,
)
from repro.oms.database import OMSDatabase
from repro.oms.zerocopy import (
    METHOD_REFLINK,
    clone_file,
    probe_capabilities,
)

#: classification for a staged file whose record exists but whose bytes
#: vanished — repair is trivial (drop the record; the next export rewrites)
CLASS_MISSING = "missing"

#: suffixes of half-written files crashed writers leave under the root
_STALE_SUFFIXES = (".partial", ".tmp")


@dataclasses.dataclass(frozen=True)
class StagedFile:
    """Record of one file currently present in the staging area."""

    oid: str
    path: pathlib.Path
    size: int
    digest: str = EMPTY_DIGEST


def _synchronized(method):
    """Serialise one staging operation on the area's reentrant lock.

    Concurrent scheduler workers share one default area (plus private
    sandboxes); the lock keeps the staged-file records, path claims and
    accounting counters coherent under that sharing.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)

    return wrapper


class StagingArea:
    """A UNIX directory through which design data enters and leaves OMS."""

    def __init__(
        self,
        database: OMSDatabase,
        root: pathlib.Path,
        copy_on_write: bool = True,
    ) -> None:
        self._db = database
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.copy_on_write = copy_on_write
        self._staged: Dict[str, StagedFile] = {}
        #: staging path -> owning oid; guards against two objects being
        #: exported onto the same file name
        self._by_path: Dict[pathlib.Path, str] = {}
        #: payload digest -> a staged path known to hold those bytes; the
        #: index behind the zero-copy hard-link export path.  Entries are
        #: advisory — the source is always re-hashed before linking.
        self._by_digest: Dict[str, pathlib.Path] = {}
        #: cumulative accounting for the Section 3.6 experiment
        self.bytes_exported = 0
        self.bytes_imported = 0
        self.files_exported = 0
        self.files_imported = 0
        #: copies avoided because the staged file already matched by digest
        self.export_hits = 0
        #: copies avoided by hard-linking another staged file's bytes
        self.export_links = 0
        #: writable exports satisfied by cloning a peer staged file
        #: in-kernel (reflink or copy_file_range) — no payload bytes
        #: ever entered user space
        self.export_reflinks = 0
        #: database writes avoided because the tool left the file unchanged
        self.import_hits = 0
        # warm the filesystem capability probe (cached per root; env
        # overrides are re-read on every later lookup)
        probe_capabilities(self.root)
        self._lock = threading.RLock()
        #: stale ``.partial``/``.tmp`` files swept away at startup
        self.swept_temps: List[pathlib.Path] = self._sweep_stale_temps()

    # -- export: OMS -> file system (checkout for tool use) ---------------------

    @_synchronized
    def export_object(
        self,
        oid: str,
        filename: Optional[str] = None,
        writable: bool = True,
    ) -> StagedFile:
        """Copy the payload of *oid* out of OMS into a staging file.

        This is charged even when the caller only intends to read — OMS
        offers no in-place access (Section 2.1), which is exactly the
        read-only penalty measured in ``bench_performance``.  With
        copy-on-write enabled, an already-staged file whose content digest
        matches the stored payload is validated instead of rewritten, and
        the charge drops to a single metadata operation.

        ``writable=False`` declares the caller will only read the staged
        file; such an export may be materialised as a hard link to
        another staged file with the same payload digest — zero payload
        bytes copied.  Writable exports (the default) always get a
        private inode, so editing one staged file in place can never
        bleed into another.
        """
        path = self._claim_path(oid, filename)
        stat = self._payload_stat(oid)
        clone_method = None
        if self._export_is_hit(path, stat, writable):
            self._db.clock.charge_metadata_op()
            self.export_hits += 1
        elif not writable and self._link_from_peer(path, stat):
            # zero-copy staging: another staged file already holds these
            # exact bytes, so the export is one hard link — no payload
            # bytes cross the file system at all
            fault_point("staging.write")
            self._db.clock.charge_metadata_op()
            self.export_links += 1
        elif writable and (
            clone_method := self._clone_from_peer(path, stat)
        ) is not None:
            # writable exports need a private inode, so they cannot
            # hard-link — but they can *clone* a peer's bytes in-kernel:
            # reflink shares extents copy-on-write (O(1)), and
            # copy_file_range moves blocks without the bytes ever
            # entering user space
            fault_point("staging.write")
            if clone_method == METHOD_REFLINK:
                self._db.clock.charge_metadata_op()
            else:
                # still a physical copy, just a cheap one — charged like
                # the copy it is so accounting stays honest
                self._db.clock.charge_copy(stat.size, files=1)
                self.bytes_exported += stat.size
                self.files_exported += 1
            self.export_reflinks += 1
        else:
            payload = self._db.get(oid).payload or b""
            self._write_breaking_links(
                path, corruption_point("staging.file", payload)
            )
            # the staged file exists but is not yet recorded — a crash
            # here leaves a staging orphan for recovery to reclaim
            fault_point("staging.write")
            self._db.clock.charge_copy(len(payload), files=1)
            self.bytes_exported += len(payload)
            self.files_exported += 1
        staged = StagedFile(oid=oid, path=path, size=stat.size, digest=stat.digest)
        self._record(staged)
        return staged

    @_synchronized
    def export_objects(
        self,
        oids: Sequence[str],
        filenames: Optional[Sequence[Optional[str]]] = None,
        writable: bool = True,
    ) -> List[StagedFile]:
        """Stage many objects with one batched charge.

        The whole batch pays a single metadata operation (one request to
        OMS) plus one aggregated copy charge covering only the objects
        that actually had to be written — the per-file overhead of digest
        hits is amortized away entirely.  ``writable=False`` additionally
        enables the hard-link fast path (see :meth:`export_object`).
        """
        if filenames is not None and len(filenames) != len(oids):
            raise OMSError("export_objects: filenames must match oids 1:1")
        results: List[StagedFile] = []
        miss_bytes = 0
        misses = 0
        self._db.clock.charge_metadata_op()
        for index, oid in enumerate(oids):
            filename = filenames[index] if filenames is not None else None
            path = self._claim_path(oid, filename)
            stat = self._payload_stat(oid)
            if self._export_is_hit(path, stat, writable):
                self.export_hits += 1
            elif not writable and self._link_from_peer(path, stat):
                fault_point("staging.write")
                self.export_links += 1
            elif writable and (
                clone_method := self._clone_from_peer(path, stat)
            ) is not None:
                fault_point("staging.write")
                if clone_method != METHOD_REFLINK:
                    miss_bytes += stat.size
                    misses += 1
                    self.bytes_exported += stat.size
                    self.files_exported += 1
                self.export_reflinks += 1
            else:
                payload = self._db.get(oid).payload or b""
                self._write_breaking_links(
                    path, corruption_point("staging.file", payload)
                )
                fault_point("staging.write")
                miss_bytes += len(payload)
                misses += 1
                self.bytes_exported += len(payload)
                self.files_exported += 1
            staged = StagedFile(oid=oid, path=path, size=stat.size, digest=stat.digest)
            self._record(staged)
            results.append(staged)
        if misses:
            self._db.clock.charge_copy(miss_bytes, files=misses)
        return results

    # -- import: file system -> OMS (checkin after tool run) ----------------------

    @_synchronized
    def import_object(self, oid: str, path: Optional[pathlib.Path] = None) -> int:
        """Copy a staging file back into the payload of *oid*.

        Returns the number of bytes imported.  When *path* is omitted the
        file previously exported for *oid* is used.  With copy-on-write
        enabled, a file whose digest still matches the stored payload is
        recognised in one metadata operation and the database write is
        skipped — the common case after a read-only tool run.
        """
        path = self._resolve_import_path(oid, path)
        fault_point("staging.import")
        payload = path.read_bytes()
        digest = digest_bytes(payload)
        stat = self._payload_stat(oid)
        if self.copy_on_write and digest == stat.digest:
            self._db.clock.charge_metadata_op()
            self.import_hits += 1
        else:
            self._db.set_payload(oid, payload, payload_delta_base=stat.digest)
            self._db.clock.charge_copy(len(payload), files=1)
            self.bytes_imported += len(payload)
            self.files_imported += 1
        self._record(
            StagedFile(oid=oid, path=path, size=len(payload), digest=digest)
        )
        return len(payload)

    @_synchronized
    def import_objects(self, oids: Sequence[str]) -> Dict[str, int]:
        """Import many previously-staged objects with one batched charge.

        Returns ``{oid: bytes}`` for every object in the batch.  Like
        :meth:`export_objects`, the batch pays one metadata operation plus
        a single aggregated copy charge for the files that changed.
        """
        sizes: Dict[str, int] = {}
        miss_bytes = 0
        misses = 0
        self._db.clock.charge_metadata_op()
        for oid in oids:
            path = self._resolve_import_path(oid, None)
            fault_point("staging.import")
            payload = path.read_bytes()
            digest = digest_bytes(payload)
            stat = self._payload_stat(oid)
            if self.copy_on_write and digest == stat.digest:
                self.import_hits += 1
            else:
                self._db.set_payload(oid, payload, payload_delta_base=stat.digest)
                miss_bytes += len(payload)
                misses += 1
                self.bytes_imported += len(payload)
                self.files_imported += 1
            self._record(
                StagedFile(oid=oid, path=path, size=len(payload), digest=digest)
            )
            sizes[oid] = len(payload)
        if misses:
            self._db.clock.charge_copy(miss_bytes, files=misses)
        return sizes

    # -- bookkeeping ----------------------------------------------------------------

    @_synchronized
    def staged(self) -> List[StagedFile]:
        """All files currently staged, ordered by (numeric) object id."""
        return [
            self._staged[oid] for oid in sorted(self._staged, key=sort_key)
        ]

    def is_staged(self, oid: str) -> bool:
        return oid in self._staged

    @_synchronized
    def release(self, oid: str) -> None:
        """Remove the staged copy of *oid* from the file system.

        Tolerates a file some tool already unlinked — the staging record
        and path claim are dropped either way, so accounting never drifts
        from what is actually on disk.
        """
        staged = self._staged.pop(oid, None)
        if staged is None:
            return
        if self._by_path.get(staged.path) == oid:
            del self._by_path[staged.path]
        if self._by_digest.get(staged.digest) == staged.path:
            del self._by_digest[staged.digest]
        try:
            staged.path.unlink()
        except FileNotFoundError:
            pass

    @_synchronized
    def clear(self) -> None:
        """Remove every staged file."""
        for oid in list(self._staged):
            self.release(oid)

    @_synchronized
    def orphan_files(self) -> List[pathlib.Path]:
        """Files under the staging root that no staging record claims.

        These are the leavings of a crash between writing a staged file
        and recording it (the ``staging.write`` window) — the bytes are
        all safely in OMS, so the files are pure waste.
        """
        claimed = set(self._by_path)
        return sorted(
            p for p in self.root.iterdir()
            if p.is_file() and p not in claimed
        )

    @_synchronized
    def adopt_existing(self) -> List[pathlib.Path]:
        """Re-record staged files a previous process left behind.

        Staged files are a durable copy-on-write cache, but the records
        claiming them live in memory — after a restart every file under
        the root looks like an orphan.  A file whose name maps back to a
        live object and whose content matches that object's payload
        digest is re-adopted (the next export of that object is a free
        hit); anything else stays orphaned for recovery to reclaim.
        """
        adopted: List[pathlib.Path] = []
        for path in self.orphan_files():
            head, sep, tail = path.name.rpartition("_")
            oid = f"{head}:{tail}" if sep else path.name
            if not self._db.exists(oid):
                continue
            stat = self._payload_stat(oid)
            if digest_bytes(path.read_bytes()) != stat.digest:
                continue
            self._record(
                StagedFile(
                    oid=oid, path=path, size=stat.size, digest=stat.digest
                )
            )
            adopted.append(path)
        return adopted

    @_synchronized
    def reclaim_orphans(self) -> List[pathlib.Path]:
        """Delete and return every orphaned staging file."""
        orphans = self.orphan_files()
        for path in orphans:
            try:
                path.unlink()
            except FileNotFoundError:  # pragma: no cover - race tolerance
                pass
        return orphans

    @_synchronized
    def accounting(self) -> Dict[str, int]:
        """Cumulative staging traffic (bytes, file counts, CoW hits)."""
        return {
            "bytes_exported": self.bytes_exported,
            "bytes_imported": self.bytes_imported,
            "files_exported": self.files_exported,
            "files_imported": self.files_imported,
            "export_hits": self.export_hits,
            "export_links": self.export_links,
            "export_reflinks": self.export_reflinks,
            "import_hits": self.import_hits,
        }

    # -- storage integrity -----------------------------------------------------------

    def read_staged(self, oid: str) -> bytes:
        """Verified read of the staged copy of *oid*.

        This is the path that feeds staged bytes to encapsulated tools:
        the file is re-hashed against the digest recorded when it was
        staged, so a tool can never be served bytes that rotted (or were
        torn) after the export.  Raises :class:`IntegrityError` with the
        damage classification instead of returning garbage.

        Only the record snapshot happens under the area lock —
        :class:`StagedFile` is frozen, so the file read and the re-hash
        (the expensive part) run outside it and concurrent exports of
        other objects are never stalled behind a slow read.
        """
        with self._lock:
            staged = self._staged.get(oid)
        if staged is None:
            raise OMSError(
                f"object {oid!r} has no staged file; export it first"
            )
        try:
            data = staged.path.read_bytes()
        except FileNotFoundError:
            raise IntegrityError(
                f"staged file vanished: {staged.path}",
                location=str(staged.path),
                classification=CLASS_MISSING,
            ) from None
        problem = classify_damage(staged.size, data, staged.digest)
        if problem is not None:
            raise IntegrityError(
                f"staged file {staged.path} fails verification ({problem})",
                location=str(staged.path),
                classification=problem,
            )
        return data

    def verify_staged(self) -> List[Tuple[str, pathlib.Path, str]]:
        """Re-hash every staged file against its recorded digest.

        Returns ``(oid, path, classification)`` for each staged file whose
        bytes no longer match what was recorded at export/import time —
        bit-rot, truncation, a torn write, or a file that vanished
        outright.  Clean files are left untouched; nothing is repaired
        here (see :meth:`repair_staged`).  Hashing runs outside the area
        lock (:meth:`staged` snapshots the records under it).
        """
        findings: List[Tuple[str, pathlib.Path, str]] = []
        for staged in self.staged():
            try:
                data = staged.path.read_bytes()
            except FileNotFoundError:
                findings.append((staged.oid, staged.path, CLASS_MISSING))
                continue
            problem = classify_damage(staged.size, data, staged.digest)
            if problem is not None:
                findings.append((staged.oid, staged.path, problem))
        return findings

    @_synchronized
    def repair_staged(self, oid: str) -> bool:
        """Rewrite the staged copy of *oid* from its verified OMS payload.

        The database is the repair source: the payload is materialized
        through the verified read path, so a corrupt staged file is only
        ever overwritten with bytes that prove their own digest.  Returns
        ``False`` when the object no longer exists or has no staged
        record (the record is dropped instead — re-exporting is free).
        """
        staged = self._staged.get(oid)
        if staged is None:
            return False
        if not self._db.exists(oid):
            self.forget(oid)
            return False
        payload = self._db.get(oid).payload or b""
        self._write_breaking_links(staged.path, payload)
        stat = self._payload_stat(oid)
        self._record(
            StagedFile(oid=oid, path=staged.path, size=stat.size, digest=stat.digest)
        )
        return True

    @_synchronized
    def forget(self, oid: str) -> None:
        """Drop the staging record/claim for *oid* without touching disk.

        Synchronized like every other record mutator: the recovery sweep
        calls this while scheduler workers may still be staging, and an
        unlocked pop can interleave with :meth:`_record` so the path claim
        outlives the record it belonged to (a permanent phantom collision).
        """
        staged = self._staged.pop(oid, None)
        if staged is None:
            return
        if self._by_path.get(staged.path) == oid:
            del self._by_path[staged.path]
        if self._by_digest.get(staged.digest) == staged.path:
            del self._by_digest[staged.digest]

    def _sweep_stale_temps(self) -> List[pathlib.Path]:
        """Remove half-written ``.partial``/``.tmp`` files under the root.

        Crashed writers (and interrupted atomic renames) leave these
        behind; they are never valid staged data, so the constructor
        clears them before any record can claim their names.
        """
        swept: List[pathlib.Path] = []
        for path in sorted(self.root.iterdir()):
            if path.is_file() and path.suffix in _STALE_SUFFIXES:
                try:
                    path.unlink()
                except FileNotFoundError:  # pragma: no cover - race tolerance
                    continue
                swept.append(path)
        return swept

    # -- internals -------------------------------------------------------------------

    def _record(self, staged: StagedFile) -> None:
        """Register a staged file, retiring any claim on a previous path."""
        prev = self._staged.get(staged.oid)
        if (
            prev is not None
            and prev.path != staged.path
            and self._by_path.get(prev.path) == staged.oid
        ):
            del self._by_path[prev.path]
        self._staged[staged.oid] = staged
        self._by_path[staged.path] = staged.oid
        if staged.digest != EMPTY_DIGEST:
            self._by_digest[staged.digest] = staged.path

    def _claim_path(self, oid: str, filename: Optional[str]) -> pathlib.Path:
        name = filename or oid.replace(":", "_")
        path = self.root / name
        owner = self._by_path.get(path)
        if owner is not None and owner != oid:
            raise OMSError(
                f"staging collision: {path.name!r} is already staged for "
                f"{owner!r}; export of {oid!r} would overwrite it"
            )
        return path

    def _resolve_import_path(
        self, oid: str, path: Optional[pathlib.Path]
    ) -> pathlib.Path:
        if path is None:
            staged = self._staged.get(oid)
            if staged is None:
                raise OMSError(
                    f"object {oid!r} has no staged file; export it first or "
                    "pass an explicit path"
                )
            path = staged.path
        path = pathlib.Path(path)
        owner = self._by_path.get(path)
        if owner is not None and owner != oid:
            raise OMSError(
                f"staging collision: {path.name!r} is staged for {owner!r}, "
                f"cannot import it into {oid!r}"
            )
        if not path.exists():
            raise OMSError(f"staging file missing: {path}")
        return path

    def _payload_stat(self, oid: str) -> BlobStat:
        stat = self._db.payload_stat(oid)
        if stat is None:
            return BlobStat(digest=EMPTY_DIGEST, size=0)
        return stat

    def _link_from_peer(self, path: pathlib.Path, stat: BlobStat) -> bool:
        """Hard-link *path* to a staged file already holding the payload.

        The zero-copy export fast path: when any staged file's recorded
        digest matches the payload being exported, the new staging path
        becomes a hard link to it and no payload bytes are copied at all.
        PR 5's verified-read semantics are preserved — the source is
        re-hashed immediately before linking (a tool may have rewritten
        it in place), and every later :meth:`read_staged` re-hashes
        again, so an aliased mutation surfaces as an
        :class:`IntegrityError` rather than silently shared garbage.
        Returns ``False`` (caller copies) whenever linking is unsafe or
        unsupported.
        """
        if not self.copy_on_write or stat.digest == EMPTY_DIGEST:
            return False
        source = self._by_digest.get(stat.digest)
        if source is None or source == path or not source.exists():
            return False
        if digest_bytes(source.read_bytes()) != stat.digest:
            # the index went stale (in-place rewrite); drop the entry so
            # later exports stop probing it
            del self._by_digest[stat.digest]
            return False
        try:
            if path.exists():
                path.unlink()
            os.link(source, path)
        except OSError:  # pragma: no cover - filesystem without links
            return False
        return True

    def _clone_from_peer(
        self, path: pathlib.Path, stat: BlobStat
    ) -> Optional[str]:
        """Clone a peer staged file's bytes onto a private inode at *path*.

        The writable-export sibling of :meth:`_link_from_peer`: the same
        advisory digest index and the same re-hash guard, but instead of
        aliasing the peer's inode the bytes are cloned in-kernel
        (reflink where the filesystem supports it, ``copy_file_range``
        otherwise), so the caller gets a file it can edit in place
        without bleeding into the peer.  Returns the clone method, or
        ``None`` when the caller should fall back to the databased
        write — no usable peer, stale index, or a filesystem that offers
        nothing better than a userspace copy.
        """
        if not self.copy_on_write or stat.digest == EMPTY_DIGEST:
            return None
        caps = probe_capabilities(self.root)
        if not (caps.reflink or caps.copy_range):
            return None
        source = self._by_digest.get(stat.digest)
        if source is None or source == path or not source.exists():
            return None
        if digest_bytes(source.read_bytes()) != stat.digest:
            # the index went stale (in-place rewrite); drop the entry so
            # later exports stop probing it
            del self._by_digest[stat.digest]
            return None
        try:
            method = clone_file(source, path, caps)
        except OSError:  # pragma: no cover - clone refused mid-flight
            return None
        if active_plan() is not None:
            # model damage landing on the cloned bytes at rest; the
            # destination is a private inode, so rewriting it can never
            # touch the peer
            self._write_breaking_links(
                path, corruption_point("staging.reflink", path.read_bytes())
            )
        return method

    def _write_breaking_links(self, path: pathlib.Path, data: bytes) -> None:
        """Write *data* to *path* without mutating hard-link peers.

        An in-place ``write_bytes`` truncates the shared inode, which
        would rewrite every staged file linked to it; unlinking first
        gives this path a private inode and leaves peers untouched.
        """
        try:
            path.unlink()
        except FileNotFoundError:
            pass
        path.write_bytes(data)

    def _export_is_hit(
        self, path: pathlib.Path, stat: BlobStat, writable: bool = True
    ) -> bool:
        """True when the on-disk staged file already holds the payload.

        The file is always re-hashed rather than trusted from cached
        metadata — a tool may have rewritten it in place — so a hit can
        never serve stale bytes.  A writable export never hits on a
        hard-linked file (a previous read-only export may have aliased
        it): the caller falls through to a private rewrite instead, so
        in-place edits stay confined to this staging path.
        """
        if not self.copy_on_write or not path.exists():
            return False
        if writable:
            try:
                if path.stat().st_nlink > 1:
                    return False
            except OSError:  # pragma: no cover - stat race
                return False
        return digest_bytes(path.read_bytes()) == stat.digest
