"""File-system staging between OMS and encapsulated tools.

Paper Section 2.1: "In case of encapsulation, the required data are copied
to and from the database via the UNIX file system."  The staging area is
that copy path.  Every export/import writes or reads a real file under the
staging root and charges the simulated clock per byte plus a per-file
overhead — including for read-only accesses, which Section 3.6 identifies
as the dominant cost on realistic design sizes.
"""

from __future__ import annotations

import dataclasses
import pathlib
from typing import Dict, List, Optional

from repro.errors import OMSError
from repro.ids import sort_key
from repro.oms.database import OMSDatabase


@dataclasses.dataclass(frozen=True)
class StagedFile:
    """Record of one file currently present in the staging area."""

    oid: str
    path: pathlib.Path
    size: int


class StagingArea:
    """A UNIX directory through which design data enters and leaves OMS."""

    def __init__(self, database: OMSDatabase, root: pathlib.Path) -> None:
        self._db = database
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._staged: Dict[str, StagedFile] = {}
        #: cumulative accounting for the Section 3.6 experiment
        self.bytes_exported = 0
        self.bytes_imported = 0
        self.files_exported = 0
        self.files_imported = 0

    # -- export: OMS -> file system (checkout for tool use) ---------------------

    def export_object(self, oid: str, filename: Optional[str] = None) -> StagedFile:
        """Copy the payload of *oid* out of OMS into a staging file.

        This is charged even when the caller only intends to read — OMS
        offers no in-place access (Section 2.1), which is exactly the
        read-only penalty measured in ``bench_performance``.
        """
        obj = self._db.get(oid)
        payload = obj.payload if obj.payload is not None else b""
        name = filename or oid.replace(":", "_")
        path = self.root / name
        path.write_bytes(payload)
        self._db.clock.charge_copy(len(payload), files=1)
        staged = StagedFile(oid=oid, path=path, size=len(payload))
        self._staged[oid] = staged
        self.bytes_exported += len(payload)
        self.files_exported += 1
        return staged

    # -- import: file system -> OMS (checkin after tool run) ----------------------

    def import_object(self, oid: str, path: Optional[pathlib.Path] = None) -> int:
        """Copy a staging file back into the payload of *oid*.

        Returns the number of bytes imported.  When *path* is omitted the
        file previously exported for *oid* is used.
        """
        if path is None:
            staged = self._staged.get(oid)
            if staged is None:
                raise OMSError(
                    f"object {oid!r} has no staged file; export it first or "
                    "pass an explicit path"
                )
            path = staged.path
        path = pathlib.Path(path)
        if not path.exists():
            raise OMSError(f"staging file missing: {path}")
        payload = path.read_bytes()
        self._db.set_payload(oid, payload)
        self._db.clock.charge_copy(len(payload), files=1)
        self._staged[oid] = StagedFile(oid=oid, path=path, size=len(payload))
        self.bytes_imported += len(payload)
        self.files_imported += 1
        return len(payload)

    # -- bookkeeping ----------------------------------------------------------------

    def staged(self) -> List[StagedFile]:
        """All files currently staged, ordered by (numeric) object id."""
        return [
            self._staged[oid] for oid in sorted(self._staged, key=sort_key)
        ]

    def is_staged(self, oid: str) -> bool:
        return oid in self._staged

    def release(self, oid: str) -> None:
        """Remove the staged copy of *oid* from the file system."""
        staged = self._staged.pop(oid, None)
        if staged is not None and staged.path.exists():
            staged.path.unlink()

    def clear(self) -> None:
        """Remove every staged file."""
        for oid in list(self._staged):
            self.release(oid)

    def accounting(self) -> Dict[str, int]:
        """Cumulative staging traffic (bytes and file counts)."""
        return {
            "bytes_exported": self.bytes_exported,
            "bytes_imported": self.bytes_imported,
            "files_exported": self.files_exported,
            "files_imported": self.files_imported,
        }
