"""OMS — a re-implementation of the CADLAB object-oriented database kernel.

JCF 3.0 stores both metadata and design data in a common object-oriented
database called OMS (paper Section 2.1, [Meck92]).  Two architectural
properties matter for the reproduction and are enforced here:

* **Typed schema.**  Metadata lives as schema-checked objects with typed
  attributes and cardinality-checked relationships (the Figure 1 model is
  expressed on top of this kernel by :mod:`repro.jcf`).
* **Closed interface.**  There is no public procedural interface; design
  data enters and leaves the database only by whole-file copies through a
  UNIX staging directory (:class:`~repro.oms.storage.StagingArea`).  This
  is the property that makes read-only access to large designs expensive
  (paper Section 3.6).
"""

from repro.oms.schema import AttributeDef, EntityType, RelationshipDef, Schema
from repro.oms.blobs import BlobStat, BlobStore, PayloadHandle, digest_bytes
from repro.oms.objects import OMSObject
from repro.oms.database import OMSDatabase
from repro.oms.transactions import Transaction
from repro.oms.query import QueryEngine
from repro.oms.storage import StagingArea, StagedFile
from repro.oms.snapshot import dump_snapshot, restore_snapshot

__all__ = [
    "AttributeDef",
    "EntityType",
    "RelationshipDef",
    "Schema",
    "BlobStat",
    "BlobStore",
    "PayloadHandle",
    "digest_bytes",
    "OMSObject",
    "OMSDatabase",
    "Transaction",
    "QueryEngine",
    "StagingArea",
    "StagedFile",
    "dump_snapshot",
    "restore_snapshot",
]
