"""Graph queries over the OMS store.

The JCF desktop needs reachability questions ("which design-object
versions belong to this cell version's variant?", "what derives from this
schematic version?").  ``QueryEngine`` provides typed traversals on top of
the primitive link tables.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.errors import QueryError
from repro.ids import sort_key
from repro.oms.database import OMSDatabase
from repro.oms.objects import OMSObject


class QueryEngine:
    """Read-only traversal helpers over an :class:`OMSDatabase`."""

    def __init__(self, database: OMSDatabase) -> None:
        self._db = database

    # -- single-hop ------------------------------------------------------------

    def children(self, rel_name: str, oid: str) -> List[OMSObject]:
        """Alias for :meth:`OMSDatabase.targets` with query semantics."""
        return self._db.targets(rel_name, oid)

    def parents(self, rel_name: str, oid: str) -> List[OMSObject]:
        """Alias for :meth:`OMSDatabase.sources`."""
        return self._db.sources(rel_name, oid)

    def only_child(self, rel_name: str, oid: str) -> Optional[OMSObject]:
        """The unique target over *rel_name*, or None.

        Raises :class:`~repro.errors.QueryError` on ambiguity, so callers
        can catch the typed OMS hierarchy instead of a bare ValueError.
        """
        found = self._db.targets(rel_name, oid)
        if not found:
            return None
        if len(found) > 1:
            raise QueryError(
                f"{rel_name}: expected at most one target of {oid}, "
                f"found {len(found)}"
            )
        return found[0]

    # -- reachability -----------------------------------------------------------

    def reachable(
        self,
        start_oid: str,
        rel_names: Sequence[str],
        max_depth: Optional[int] = None,
    ) -> List[OMSObject]:
        """Breadth-first closure from *start_oid* over the given link types.

        The start object itself is not included.  Order is breadth-first
        with deterministic (sorted-id) tie-breaking.
        """
        seen: Set[str] = {start_oid}
        order: List[OMSObject] = []
        frontier = deque([(start_oid, 0)])
        while frontier:
            oid, depth = frontier.popleft()
            if max_depth is not None and depth >= max_depth:
                continue
            next_oids: List[str] = []
            for rel_name in rel_names:
                next_oids.extend(self._db.target_oids(rel_name, oid))
            for next_oid in sorted(set(next_oids), key=sort_key):
                if next_oid in seen:
                    continue
                seen.add(next_oid)
                order.append(self._db.get(next_oid))
                frontier.append((next_oid, depth + 1))
        return order

    def ancestors(
        self, start_oid: str, rel_names: Sequence[str]
    ) -> List[OMSObject]:
        """Breadth-first closure following links *backwards*."""
        seen: Set[str] = {start_oid}
        order: List[OMSObject] = []
        frontier = deque([start_oid])
        while frontier:
            oid = frontier.popleft()
            prev_oids: List[str] = []
            for rel_name in rel_names:
                prev_oids.extend(self._db.source_oids(rel_name, oid))
            for prev_oid in sorted(set(prev_oids), key=sort_key):
                if prev_oid in seen:
                    continue
                seen.add(prev_oid)
                order.append(self._db.get(prev_oid))
                frontier.append(prev_oid)
        return order

    def path_exists(
        self, source_oid: str, target_oid: str, rel_names: Sequence[str]
    ) -> bool:
        """True when *target_oid* is forward-reachable from *source_oid*."""
        return any(
            obj.oid == target_oid
            for obj in self.reachable(source_oid, rel_names)
        )

    # -- aggregation ---------------------------------------------------------------

    def group_by(
        self,
        type_name: str,
        key: Callable[[OMSObject], str],
    ) -> Dict[str, List[OMSObject]]:
        """Group all objects of *type_name* by a computed key."""
        groups: Dict[str, List[OMSObject]] = {}
        for obj in self._db.select(type_name):
            groups.setdefault(key(obj), []).append(obj)
        return groups
