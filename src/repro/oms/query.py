"""Graph queries over the OMS store.

The JCF desktop needs reachability questions ("which design-object
versions belong to this cell version's variant?", "what derives from this
schematic version?").  ``QueryEngine`` provides typed traversals on top of
the primitive link tables.

Traversal closures are memoized: the same reachability question asked
twice against an unchanged store answers from a memo of oids instead of
re-walking the graph.  Validity is epoch-based — every structural
mutation (and every transaction commit/abort) bumps
:attr:`OMSDatabase.mutation_epoch`, and a memo entry is only served
while its recorded epoch still matches, so a cached traversal can never
survive a mutation it did not see.  Objects are re-fetched from the
database on every hit (never cached), so a deleted oid raises exactly
as an uncached walk would.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import QueryError
from repro.ids import sort_key
from repro.oms.database import OMSDatabase
from repro.oms.objects import OMSObject

#: memo entries kept per engine; LRU beyond this (bounds memory on
#: workloads that sweep many distinct start points)
_MEMO_LIMIT = 1024

#: (operation, start oid, relation names, max depth)
_MemoKey = Tuple[str, str, Tuple[str, ...], Optional[int]]


class QueryEngine:
    """Read-only traversal helpers over an :class:`OMSDatabase`."""

    def __init__(self, database: OMSDatabase) -> None:
        self._db = database
        #: memo key -> (epoch the traversal ran at, resulting oids)
        self._memo: "OrderedDict[_MemoKey, Tuple[int, Tuple[str, ...]]]" = (
            OrderedDict()
        )
        self._memo_lock = threading.Lock()
        self.memo_hits = 0
        self.memo_misses = 0

    # -- traversal memo --------------------------------------------------------

    def _memo_get(self, key: _MemoKey, epoch: int) -> Optional[Tuple[str, ...]]:
        with self._memo_lock:
            entry = self._memo.get(key)
            if entry is not None and entry[0] == epoch:
                self._memo.move_to_end(key)
                self.memo_hits += 1
                return entry[1]
            if entry is not None:
                del self._memo[key]  # stale epoch: drop eagerly
            self.memo_misses += 1
            return None

    def _memo_put(
        self, key: _MemoKey, epoch: int, oids: Tuple[str, ...]
    ) -> None:
        # only store if the epoch did not move while we traversed — a
        # result computed across a concurrent mutation may mix old and
        # new graph state, which must not be replayable
        if self._db.mutation_epoch != epoch:
            return
        with self._memo_lock:
            self._memo[key] = (epoch, oids)
            self._memo.move_to_end(key)
            while len(self._memo) > _MEMO_LIMIT:
                self._memo.popitem(last=False)

    def memo_stats(self) -> Dict[str, int]:
        with self._memo_lock:
            return {
                "entries": len(self._memo),
                "hits": self.memo_hits,
                "misses": self.memo_misses,
            }

    # -- single-hop ------------------------------------------------------------

    def children(self, rel_name: str, oid: str) -> List[OMSObject]:
        """Alias for :meth:`OMSDatabase.targets` with query semantics."""
        return self._db.targets(rel_name, oid)

    def parents(self, rel_name: str, oid: str) -> List[OMSObject]:
        """Alias for :meth:`OMSDatabase.sources`."""
        return self._db.sources(rel_name, oid)

    def only_child(self, rel_name: str, oid: str) -> Optional[OMSObject]:
        """The unique target over *rel_name*, or None.

        Raises :class:`~repro.errors.QueryError` on ambiguity, so callers
        can catch the typed OMS hierarchy instead of a bare ValueError.
        """
        found = self._db.targets(rel_name, oid)
        if not found:
            return None
        if len(found) > 1:
            raise QueryError(
                f"{rel_name}: expected at most one target of {oid}, "
                f"found {len(found)}"
            )
        return found[0]

    # -- reachability -----------------------------------------------------------

    def reachable(
        self,
        start_oid: str,
        rel_names: Sequence[str],
        max_depth: Optional[int] = None,
    ) -> List[OMSObject]:
        """Breadth-first closure from *start_oid* over the given link types.

        The start object itself is not included.  Order is breadth-first
        with deterministic (sorted-id) tie-breaking.
        """
        key: _MemoKey = ("reachable", start_oid, tuple(rel_names), max_depth)
        epoch = self._db.mutation_epoch
        memo = self._memo_get(key, epoch)
        if memo is not None:
            return [self._db.get(oid) for oid in memo]
        seen: Set[str] = {start_oid}
        order: List[OMSObject] = []
        frontier = deque([(start_oid, 0)])
        while frontier:
            oid, depth = frontier.popleft()
            if max_depth is not None and depth >= max_depth:
                continue
            next_oids: List[str] = []
            for rel_name in rel_names:
                next_oids.extend(self._db.target_oids(rel_name, oid))
            for next_oid in sorted(set(next_oids), key=sort_key):
                if next_oid in seen:
                    continue
                seen.add(next_oid)
                order.append(self._db.get(next_oid))
                frontier.append((next_oid, depth + 1))
        self._memo_put(key, epoch, tuple(obj.oid for obj in order))
        return order

    def ancestors(
        self, start_oid: str, rel_names: Sequence[str]
    ) -> List[OMSObject]:
        """Breadth-first closure following links *backwards*."""
        key: _MemoKey = ("ancestors", start_oid, tuple(rel_names), None)
        epoch = self._db.mutation_epoch
        memo = self._memo_get(key, epoch)
        if memo is not None:
            return [self._db.get(oid) for oid in memo]
        seen: Set[str] = {start_oid}
        order: List[OMSObject] = []
        frontier = deque([start_oid])
        while frontier:
            oid = frontier.popleft()
            prev_oids: List[str] = []
            for rel_name in rel_names:
                prev_oids.extend(self._db.source_oids(rel_name, oid))
            for prev_oid in sorted(set(prev_oids), key=sort_key):
                if prev_oid in seen:
                    continue
                seen.add(prev_oid)
                order.append(self._db.get(prev_oid))
                frontier.append(prev_oid)
        self._memo_put(key, epoch, tuple(obj.oid for obj in order))
        return order

    def path_exists(
        self, source_oid: str, target_oid: str, rel_names: Sequence[str]
    ) -> bool:
        """True when *target_oid* is forward-reachable from *source_oid*."""
        return any(
            obj.oid == target_oid
            for obj in self.reachable(source_oid, rel_names)
        )

    # -- aggregation ---------------------------------------------------------------

    def group_by(
        self,
        type_name: str,
        key: Callable[[OMSObject], str],
    ) -> Dict[str, List[OMSObject]]:
        """Group all objects of *type_name* by a computed key."""
        groups: Dict[str, List[OMSObject]] = {}
        for obj in self._db.select(type_name):
            groups.setdefault(key(obj), []).append(obj)
        return groups
