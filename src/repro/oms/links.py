"""Adjacency-indexed link storage for the OMS kernel.

The original store kept one flat ``Set[(source, target)]`` per relation,
which made every metadata query — ``targets()``, ``sources()`` and the
cardinality guard inside ``link()`` — a full O(E) scan of the relation.
Those scans sit on the hot path of every JCF desktop operation the paper
times in Section 3.6, so :class:`LinkStore` replaces them with a
per-relation adjacency index:

* ``pairs`` — the authoritative membership set, O(1) containment;
* ``forward`` — ``source → [targets]``, kept sorted by the numeric
  :func:`repro.ids.sort_key` so listings stay ordered past ``:999999``;
* ``reverse`` — ``target → [sources]``, same ordering.

Every query is O(degree); cardinality lookups (`first_target`,
`first_source`) are O(1).  All three structures are mutated **only**
through :meth:`add` and :meth:`remove`, so they can never drift apart —
transaction undo closures must call back into these primitives instead
of poking captured sets (the bug class that motivated this store).

Threading contract: ``LinkStore`` itself is **not** internally locked.
Every call — reads included, because they copy adjacency lists that a
concurrent ``_insort`` would resize underneath them — must arrive
through :class:`repro.oms.database.OMSDatabase`, whose reentrant store
mutex serialises all primitive operations.  Queries return fresh list
copies, so results stay valid after the mutex is released; run-level
isolation on top of that is the scheduler's
:class:`~repro.oms.locks.LockManager`'s job.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.ids import sort_key

#: one directed link: (source_oid, target_oid)
Pair = Tuple[str, str]


def _insort(ordered: List[str], oid: str) -> None:
    """Insert *oid* into a sort_key-ordered list (python3.9-safe bisect)."""
    key = sort_key(oid)
    lo, hi = 0, len(ordered)
    while lo < hi:
        mid = (lo + hi) // 2
        if sort_key(ordered[mid]) < key:
            lo = mid + 1
        else:
            hi = mid
    ordered.insert(lo, oid)


def _remove_sorted(ordered: List[str], oid: str) -> None:
    """Remove *oid* from a sort_key-ordered list via bisect."""
    key = sort_key(oid)
    lo, hi = 0, len(ordered)
    while lo < hi:
        mid = (lo + hi) // 2
        if sort_key(ordered[mid]) < key:
            lo = mid + 1
        else:
            hi = mid
    if lo < len(ordered) and ordered[lo] == oid:
        ordered.pop(lo)
    else:  # pragma: no cover - defensive; keys are unique per oid
        ordered.remove(oid)


class _RelationIndex:
    """The three views of one relation's link set (always in lockstep)."""

    __slots__ = ("pairs", "forward", "reverse")

    def __init__(self) -> None:
        self.pairs: Set[Pair] = set()
        self.forward: Dict[str, List[str]] = {}
        self.reverse: Dict[str, List[str]] = {}

    def add(self, source_oid: str, target_oid: str) -> bool:
        pair = (source_oid, target_oid)
        if pair in self.pairs:
            return False
        self.pairs.add(pair)
        _insort(self.forward.setdefault(source_oid, []), target_oid)
        _insort(self.reverse.setdefault(target_oid, []), source_oid)
        return True

    def remove(self, source_oid: str, target_oid: str) -> bool:
        pair = (source_oid, target_oid)
        if pair not in self.pairs:
            return False
        self.pairs.discard(pair)
        forward = self.forward[source_oid]
        _remove_sorted(forward, target_oid)
        if not forward:
            del self.forward[source_oid]
        reverse = self.reverse[target_oid]
        _remove_sorted(reverse, source_oid)
        if not reverse:
            del self.reverse[target_oid]
        return True


class LinkStore:
    """All typed links of one database, adjacency-indexed per relation."""

    def __init__(self) -> None:
        self._relations: Dict[str, _RelationIndex] = {}

    # -- mutation primitives (the ONLY writers of the indexes) ---------------

    def add(self, rel_name: str, source_oid: str, target_oid: str) -> bool:
        """Insert one link; returns False when it already existed."""
        index = self._relations.get(rel_name)
        if index is None:
            index = self._relations[rel_name] = _RelationIndex()
        return index.add(source_oid, target_oid)

    def remove(self, rel_name: str, source_oid: str, target_oid: str) -> bool:
        """Remove one link; returns False when it was absent."""
        index = self._relations.get(rel_name)
        if index is None:
            return False
        return index.remove(source_oid, target_oid)

    def remove_touching(self, oid: str) -> List[Tuple[str, Pair]]:
        """Remove every link with *oid* at either end, across relations.

        O(degree of *oid*), not O(E): the adjacency indexes name exactly
        the pairs to drop.  Returns ``[(rel_name, pair), ...]`` so object
        deletion can journal an exact inverse.
        """
        removed: List[Tuple[str, Pair]] = []
        # sorted by relation name: the removal (and hence undo-journal)
        # order must not depend on relation registration order, which can
        # differ between otherwise-identical runs of a scheduled batch
        for rel_name in sorted(self._relations):
            index = self._relations[rel_name]
            touching = [(oid, dst) for dst in index.forward.get(oid, ())]
            touching += [
                (src, oid)
                for src in index.reverse.get(oid, ())
                if src != oid  # self-link already captured by forward
            ]
            for pair in touching:
                index.remove(*pair)
                removed.append((rel_name, pair))
        return removed

    # -- queries (all O(degree) or O(1)) -------------------------------------

    def contains(self, rel_name: str, source_oid: str, target_oid: str) -> bool:
        index = self._relations.get(rel_name)
        return index is not None and (source_oid, target_oid) in index.pairs

    def targets_of(self, rel_name: str, source_oid: str) -> List[str]:
        """Target oids of *source_oid*, numeric-sorted (a fresh list)."""
        index = self._relations.get(rel_name)
        if index is None:
            return []
        return list(index.forward.get(source_oid, ()))

    def sources_of(self, rel_name: str, target_oid: str) -> List[str]:
        """Source oids pointing at *target_oid*, numeric-sorted."""
        index = self._relations.get(rel_name)
        if index is None:
            return []
        return list(index.reverse.get(target_oid, ()))

    def first_target(self, rel_name: str, source_oid: str) -> Optional[str]:
        """Lowest-keyed target of *source_oid*, O(1) (cardinality guard)."""
        index = self._relations.get(rel_name)
        if index is None:
            return None
        ordered = index.forward.get(source_oid)
        return ordered[0] if ordered else None

    def first_source(self, rel_name: str, target_oid: str) -> Optional[str]:
        """Lowest-keyed source of *target_oid*, O(1) (cardinality guard)."""
        index = self._relations.get(rel_name)
        if index is None:
            return None
        ordered = index.reverse.get(target_oid)
        return ordered[0] if ordered else None

    def out_degree(self, rel_name: str, source_oid: str) -> int:
        index = self._relations.get(rel_name)
        if index is None:
            return 0
        return len(index.forward.get(source_oid, ()))

    def in_degree(self, rel_name: str, target_oid: str) -> int:
        index = self._relations.get(rel_name)
        if index is None:
            return 0
        return len(index.reverse.get(target_oid, ()))

    def count(self, rel_name: str) -> int:
        index = self._relations.get(rel_name)
        return len(index.pairs) if index is not None else 0

    def pairs(self, rel_name: str) -> Set[Pair]:
        """A copy of the relation's pair set (naive-scan baselines, dumps)."""
        index = self._relations.get(rel_name)
        return set(index.pairs) if index is not None else set()

    def iter_pairs(self, rel_name: str) -> Iterator[Pair]:
        """Iterate the relation's pairs without copying (read-only)."""
        index = self._relations.get(rel_name)
        if index is not None:
            yield from index.pairs

    def relation_names(self) -> List[str]:
        """Relations that currently hold at least one link, sorted."""
        return sorted(
            name for name, index in self._relations.items() if index.pairs
        )

    # -- invariants (test hook) ----------------------------------------------

    def check_integrity(self) -> List[str]:
        """Cross-check the three views of every relation; [] when healthy."""
        problems: List[str] = []
        for rel_name, index in self._relations.items():
            from_forward = {
                (src, dst)
                for src, dsts in index.forward.items()
                for dst in dsts
            }
            from_reverse = {
                (src, dst)
                for dst, srcs in index.reverse.items()
                for src in srcs
            }
            if from_forward != index.pairs:
                problems.append(
                    f"{rel_name}: forward index desynced "
                    f"({len(from_forward)} vs {len(index.pairs)} pairs)"
                )
            if from_reverse != index.pairs:
                problems.append(
                    f"{rel_name}: reverse index desynced "
                    f"({len(from_reverse)} vs {len(index.pairs)} pairs)"
                )
            for owner, ordered in list(index.forward.items()) + list(
                index.reverse.items()
            ):
                keys = [sort_key(oid) for oid in ordered]
                if keys != sorted(keys):
                    problems.append(
                        f"{rel_name}: adjacency list of {owner!r} out of order"
                    )
                if not ordered:
                    problems.append(
                        f"{rel_name}: empty adjacency list kept for {owner!r}"
                    )
        return problems
