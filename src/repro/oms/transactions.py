"""Transactions over the OMS object store.

OMS is described as a distributed object-oriented database kernel
[Meck92]; for the behaviours the paper evaluates, what matters is that
JCF metadata updates are atomic — a failed desktop operation must not
leave half-linked cells behind.  ``Transaction`` records inverse
operations and plays them back on abort.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional

from repro.errors import TransactionError


class Transaction:
    """An undo-journal transaction.

    Used as a context manager via :meth:`repro.oms.database.OMSDatabase.
    transaction`; commits on clean exit and rolls back when the body
    raises.  Journal entries are zero-argument callables that undo one
    primitive database mutation.
    """

    def __init__(self, txn_id: str) -> None:
        self.txn_id = txn_id
        self._journal: List[Callable[[], None]] = []
        #: redo side of the journal: WAL ops buffered until commit, so
        #: an aborted transaction never reaches the log
        self.wal_ops: List[Dict[str, Any]] = []
        self._state = "active"

    # -- journal -------------------------------------------------------------

    def record_undo(self, undo: Callable[[], None]) -> None:
        """Register the inverse of one primitive mutation."""
        if self._state != "active":
            raise TransactionError(
                f"transaction {self.txn_id} is {self._state}; cannot record"
            )
        self._journal.append(undo)

    def record_wal(self, op: Dict[str, Any]) -> None:
        """Buffer one primitive's WAL op for the commit-time record."""
        if self._state != "active":
            raise TransactionError(
                f"transaction {self.txn_id} is {self._state}; cannot record"
            )
        self.wal_ops.append(op)

    # -- lifecycle -----------------------------------------------------------

    @property
    def state(self) -> str:
        """``"active"``, ``"committed"`` or ``"aborted"``."""
        return self._state

    @property
    def journal_length(self) -> int:
        return len(self._journal)

    def commit(self) -> None:
        if self._state != "active":
            raise TransactionError(
                f"transaction {self.txn_id} is {self._state}; cannot commit"
            )
        self._journal.clear()
        self._state = "committed"

    def abort(self) -> None:
        """Undo every journalled mutation, most recent first.

        A raising undo step must not leave the store half rolled back:
        every remaining journal entry still runs, the transaction always
        ends ``"aborted"``, and the failures are then re-raised as one
        :class:`TransactionError` carrying (and chained from) the first.
        """
        if self._state != "active":
            raise TransactionError(
                f"transaction {self.txn_id} is {self._state}; cannot abort"
            )
        self.wal_ops.clear()  # an aborted change set must never be logged
        first_failure: Optional[BaseException] = None
        failed = 0
        while self._journal:
            undo = self._journal.pop()
            try:
                undo()
            except BaseException as exc:
                failed += 1
                if first_failure is None:
                    first_failure = exc
        self._state = "aborted"
        if first_failure is not None:
            raise TransactionError(
                f"transaction {self.txn_id}: {failed} undo step(s) raised "
                f"during rollback; first failure: {first_failure!r}"
            ) from first_failure


class GroupCommit:
    """One open commit group: top-level commits flushed together.

    Opened by :meth:`repro.oms.database.OMSDatabase.group_commit`.  While
    a group is open, every top-level transaction commit registers here
    instead of charging its own durable flush; when the group closes, the
    whole batch pays **one** flush.  This is the classic group-commit
    amortisation — the parallel scheduler opens one group per wave, so a
    wave of N runs costs one flush, not N.

    Thread-safe: worker threads of one wave commit concurrently.
    """

    def __init__(self, group_id: str) -> None:
        self.group_id = group_id
        self._lock = threading.Lock()
        self.commits = 0
        self._closed = False
        #: WAL ops of every joined commit; drained by the group closer
        #: into ONE log record (one append, one fsync — the WAL face of
        #: the same amortisation)
        self._wal_ops: List[Dict[str, Any]] = []

    @property
    def closed(self) -> bool:
        return self._closed

    def note_commit(self) -> None:
        """Register one top-level commit into this group."""
        with self._lock:
            if self._closed:
                raise TransactionError(
                    f"commit group {self.group_id} is closed; cannot join"
                )
            self.commits += 1

    def buffer_wal(self, ops: List[Dict[str, Any]]) -> None:
        """Defer one committed change set to the group's single record."""
        with self._lock:
            if self._closed:
                raise TransactionError(
                    f"commit group {self.group_id} is closed; cannot buffer"
                )
            self._wal_ops.extend(ops)

    def drain_wal(self) -> List[Dict[str, Any]]:
        """Hand the buffered change sets to whoever writes the record."""
        with self._lock:
            ops, self._wal_ops = self._wal_ops, []
            return ops

    def close(self) -> int:
        """Seal the group; returns the number of coalesced commits."""
        with self._lock:
            self._closed = True
            return self.commits
