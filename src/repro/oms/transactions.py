"""Transactions over the OMS object store.

OMS is described as a distributed object-oriented database kernel
[Meck92]; for the behaviours the paper evaluates, what matters is that
JCF metadata updates are atomic — a failed desktop operation must not
leave half-linked cells behind.  ``Transaction`` records inverse
operations and plays them back on abort.
"""

from __future__ import annotations

from typing import Callable, List

from repro.errors import TransactionError


class Transaction:
    """An undo-journal transaction.

    Used as a context manager via :meth:`repro.oms.database.OMSDatabase.
    transaction`; commits on clean exit and rolls back when the body
    raises.  Journal entries are zero-argument callables that undo one
    primitive database mutation.
    """

    def __init__(self, txn_id: str) -> None:
        self.txn_id = txn_id
        self._journal: List[Callable[[], None]] = []
        self._state = "active"

    # -- journal -------------------------------------------------------------

    def record_undo(self, undo: Callable[[], None]) -> None:
        """Register the inverse of one primitive mutation."""
        if self._state != "active":
            raise TransactionError(
                f"transaction {self.txn_id} is {self._state}; cannot record"
            )
        self._journal.append(undo)

    # -- lifecycle -----------------------------------------------------------

    @property
    def state(self) -> str:
        """``"active"``, ``"committed"`` or ``"aborted"``."""
        return self._state

    @property
    def journal_length(self) -> int:
        return len(self._journal)

    def commit(self) -> None:
        if self._state != "active":
            raise TransactionError(
                f"transaction {self.txn_id} is {self._state}; cannot commit"
            )
        self._journal.clear()
        self._state = "committed"

    def abort(self) -> None:
        """Undo every journalled mutation, most recent first."""
        if self._state != "active":
            raise TransactionError(
                f"transaction {self.txn_id} is {self._state}; cannot abort"
            )
        while self._journal:
            undo = self._journal.pop()
            undo()
        self._state = "aborted"
