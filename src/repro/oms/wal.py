"""Write-ahead log persistence for the OMS database.

The seed reproduced the paper's Section 3.6 flaw faithfully: every
``save_state()`` serialised the **entire** object graph, so durability
cost grew with the database, not with the change set.  This module is
the engineered fix (ROADMAP item 2): every committed transaction
appends one checksummed, fsync'd change record to ``wal.log``; restart
replays the log over the last good checkpoint.  Persistence cost per
commit is O(change set).

Layout (all under one WAL directory)::

    wal.log               append-only JSON-line commit records
    wal.log.prev          pre-rotation log, kept until the new
                          checkpoint re-verifies from disk
    checkpoint.json       last compacted snapshot (dump_snapshot bytes)
    checkpoint.json.prev  previous checkpoint, same retention rule
    blobs/<digest>        payload sidecars, content-addressed; written
                          once per digest between checkpoints

Record format — one JSON object per line::

    {"format": "repro-oms-wal-1", "lsn": N, "ops": [...], "sha256": H}

``H`` is the SHA-256 of the canonical serialisation of the record body
(everything but ``sha256``), so a flipped bit anywhere in the line is
detected before replay.  Payload bytes never ride inside records; an op
carries ``payload_digest`` and the bytes live in a ``blobs/`` sidecar
(written before the record that references it, and verified against its
file name on read).  Re-committing a payload the log already made
durable — the common case under delta harvest — appends a digest-only
record: zero payload bytes rewritten.

Replay is **idempotent**: ``create`` of an existing oid is a no-op,
``set_attr``/``set_payload`` overwrite, ``link`` is an idempotent add,
``unlink``/``delete`` tolerate absence.  Replaying a log twice (or
replaying a pre-checkpoint log over the checkpoint that already folded
it in, which is exactly what a crash inside the checkpoint protocol can
force) converges to the same state.  A torn final record — the expected
residue of a crash mid-append — is dropped and reported; damage
*before* the tail is at-rest corruption and raises
:class:`~repro.errors.WALIntegrityError` instead of replaying garbage.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import threading
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.clock import SimClock
from repro.errors import OMSError, WALError, WALIntegrityError
from repro.faults import corruption_point, fault_point
from repro.oms import durable
from repro.oms.blobs import digest_bytes
from repro.oms.database import OMSDatabase
from repro.oms.objects import OMSObject
from repro.oms.schema import Schema
from repro.oms.snapshot import (
    dump_snapshot,
    restore_snapshot,
    verify_snapshot_bytes,
)

FORMAT = "repro-oms-wal-1"

LOG_NAME = "wal.log"
PREV_LOG_NAME = "wal.log.prev"
CHECKPOINT_NAME = "checkpoint.json"
PREV_CHECKPOINT_NAME = "checkpoint.json.prev"
CHECKPOINT_TMP_NAME = "checkpoint.json.tmp"
BLOB_DIR_NAME = "blobs"

#: ops that reference an object that must already exist; replay skips
#: (and counts) them when it does not — the tolerant half of idempotency
_NEEDS_OBJECT = ("set_attr", "set_payload")


@dataclasses.dataclass
class WALRecoveryInfo:
    """What :meth:`WriteAheadLog.recover` found and did."""

    #: which base state replay started from: ``"checkpoint"``,
    #: ``"previous-checkpoint"`` or ``"none"`` (empty database)
    base: str = "none"
    records_applied: int = 0
    ops_applied: int = 0
    #: ops tolerated as inapplicable (object vanished earlier in the
    #: log) — nonzero only on double replay over a delete
    ops_skipped: int = 0
    #: torn tail records dropped from the live log
    torn_records_dropped: int = 0
    #: housekeeping performed (completed truncations, dropped temps)
    cleaned: List[str] = dataclasses.field(default_factory=list)

    @property
    def fresh(self) -> bool:
        """True when nothing was recovered — a brand-new workspace."""
        return self.base == "none" and self.records_applied == 0

    def summary(self) -> str:
        return (
            f"wal-recovery: base={self.base} records={self.records_applied} "
            f"ops={self.ops_applied} skipped={self.ops_skipped} "
            f"torn-dropped={self.torn_records_dropped} "
            f"cleaned={len(self.cleaned)}"
        )


class WriteAheadLog:
    """Append-only commit log with periodic compaction.

    Attach to a database via ``db.attach_wal(wal)`` **after** recovery —
    replay must run against an unattached database or the replayed
    primitives would be logged again.
    """

    def __init__(
        self,
        root: Union[str, pathlib.Path],
        durability_mode: Optional[str] = None,
    ) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.blob_dir.mkdir(exist_ok=True)
        #: per-call-site durability override (None = process default)
        self.durability_mode = durability_mode
        self._lock = threading.RLock()
        self._lsn = 0
        #: digests already durable (blob sidecar or folded checkpoint);
        #: commits referencing them skip the sidecar write entirely
        self._durable_digests: Set[str] = set()
        # -- counters (bench/stats surface) --
        self.records_appended = 0
        self.ops_appended = 0
        self.bytes_appended = 0
        self.blob_writes = 0
        self.blob_bytes_written = 0
        self.blob_dedup_hits = 0
        self.checkpoints = 0
        self._scan_existing()

    # -- paths ----------------------------------------------------------------

    @property
    def log_path(self) -> pathlib.Path:
        return self.root / LOG_NAME

    @property
    def prev_log_path(self) -> pathlib.Path:
        return self.root / PREV_LOG_NAME

    @property
    def checkpoint_path(self) -> pathlib.Path:
        return self.root / CHECKPOINT_NAME

    @property
    def prev_checkpoint_path(self) -> pathlib.Path:
        return self.root / PREV_CHECKPOINT_NAME

    @property
    def checkpoint_tmp_path(self) -> pathlib.Path:
        return self.root / CHECKPOINT_TMP_NAME

    @property
    def blob_dir(self) -> pathlib.Path:
        return self.root / BLOB_DIR_NAME

    @classmethod
    def present_at(cls, root: Union[str, pathlib.Path]) -> bool:
        """Does *root* look like a WAL directory? (reopen auto-detect)"""
        root = pathlib.Path(root)
        return any(
            (root / name).exists()
            for name in (LOG_NAME, PREV_LOG_NAME, CHECKPOINT_NAME,
                         PREV_CHECKPOINT_NAME)
        )

    def _scan_existing(self) -> None:
        """Fast-forward the lsn counter and durable-digest set on open."""
        for path in (self.prev_log_path, self.log_path):
            for record, _, _ in self._iter_lines(path):
                if record is not None:
                    self._lsn = max(self._lsn, int(record.get("lsn", 0)))
        for entry in self.blob_dir.iterdir():
            if entry.is_file():
                self._durable_digests.add(entry.name)

    # -- record encoding ------------------------------------------------------

    @staticmethod
    def _record_digest(body: Dict[str, Any]) -> str:
        canonical = {k: v for k, v in body.items() if k != "sha256"}
        return hashlib.sha256(
            json.dumps(canonical, sort_keys=True).encode("utf-8")
        ).hexdigest()

    @classmethod
    def _decode_line(cls, line: bytes) -> Optional[Dict[str, Any]]:
        """Parse and verify one record line; ``None`` when damaged."""
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(record, dict) or record.get("format") != FORMAT:
            return None
        recorded = record.get("sha256")
        if recorded is None or cls._record_digest(record) != recorded:
            return None
        if not isinstance(record.get("ops"), list):
            return None
        return record

    def _iter_lines(
        self, path: pathlib.Path
    ) -> List[Tuple[Optional[Dict[str, Any]], int, bytes]]:
        """``(decoded_or_None, byte_offset, raw_line)`` per non-empty line."""
        if not path.exists():
            return []
        raw = path.read_bytes()
        out: List[Tuple[Optional[Dict[str, Any]], int, bytes]] = []
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline == -1:
                line, end = raw[offset:], len(raw)
            else:
                line, end = raw[offset:newline], newline + 1
            if line.strip():
                out.append((self._decode_line(line), offset, line))
            offset = end
        return out

    def _scan_log(
        self, path: pathlib.Path, location: str
    ) -> Tuple[List[Dict[str, Any]], Optional[int], int]:
        """Read a log, separating good records from a torn tail.

        Returns ``(records, torn_offset, torn_count)``.  Damage followed
        by *more* well-formed records cannot be a torn append — that is
        at-rest corruption and raises :class:`WALIntegrityError`.
        """
        records: List[Dict[str, Any]] = []
        torn_offset: Optional[int] = None
        torn_count = 0
        for decoded, offset, _ in self._iter_lines(path):
            if decoded is None:
                if torn_offset is None:
                    torn_offset = offset
                torn_count += 1
            elif torn_offset is not None:
                raise WALIntegrityError(
                    f"{location}: damaged record at byte {torn_offset} is "
                    f"followed by well-formed records — at-rest corruption, "
                    f"not a torn append",
                    location=location,
                    classification="bit-rot",
                )
            else:
                records.append(decoded)
        return records, torn_offset, torn_count

    # -- appending ------------------------------------------------------------

    def _ensure_blob(self, data: bytes) -> str:
        """Make payload bytes durable in a sidecar; returns the digest.

        Digest-addressed and written at most once per digest between
        checkpoints — the second commit of identical bytes is free.
        """
        digest = digest_bytes(data)
        if digest in self._durable_digests:
            self.blob_dedup_hits += 1
            return digest
        durable.atomic_replace(
            self.blob_dir / digest, data, mode=self.durability_mode
        )
        self._durable_digests.add(digest)
        self.blob_writes += 1
        self.blob_bytes_written += len(data)
        return digest

    def _encode_ops(self, ops: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Strip payload bytes out of ops into sidecars."""
        encoded = []
        for op in ops:
            if "payload" in op:
                op = dict(op)
                payload = op.pop("payload")
                if payload is None:
                    op["payload_digest"] = None
                    op["payload_size"] = 0
                else:
                    op["payload_digest"] = self._ensure_blob(payload)
                    op["payload_size"] = len(payload)
            encoded.append(op)
        return encoded

    def commit(self, ops: List[Dict[str, Any]]) -> Optional[int]:
        """Append one committed change set; returns its lsn.

        The record (not the whole database) is what pays the durable
        write: cost is O(change set).  The fsync honours the WAL's
        durability mode.
        """
        if not ops:
            return None
        with self._lock:
            encoded = self._encode_ops(ops)
            self._lsn += 1
            body: Dict[str, Any] = {
                "format": FORMAT,
                "lsn": self._lsn,
                "ops": encoded,
            }
            body["sha256"] = self._record_digest(body)
            line = corruption_point(
                "wal.record",
                json.dumps(body, sort_keys=True).encode("utf-8"),
            )
            # crash here: the record is lost whole, the tail stays clean
            fault_point("wal.append")
            with open(self.log_path, "ab") as handle:
                handle.write(line + b"\n")
                handle.flush()
                durable.fsync_file_handle(handle, mode=self.durability_mode)
            self.records_appended += 1
            self.ops_appended += len(ops)
            self.bytes_appended += len(line) + 1
            return self._lsn

    # -- checkpoint / compaction ----------------------------------------------

    def checkpoint(self, database: OMSDatabase) -> pathlib.Path:
        """Compact: snapshot the database, then truncate the log.

        Crash-window protocol (each ``wal.checkpoint`` fault traversal
        marks the start of one window; recovery handles all of them):

        1. dump + verify the snapshot in memory, durably write it to a
           temp file — crash leaves old checkpoint + old log intact;
        2. demote the current checkpoint to ``.prev`` and rename the
           temp into place — crash recovers from ``.prev`` + unrotated
           log, or from the new checkpoint + (idempotently replayed)
           unrotated log;
        3. rotate ``wal.log`` to ``wal.log.prev`` — crash recovers from
           the new checkpoint; the prev log is redundant but harmless;
        4. re-read and re-verify the published checkpoint from disk,
           and only then garbage-collect ``.prev`` artifacts and blob
           sidecars.  The previous state is never destroyed before the
           new one has proven itself on disk.
        """
        with self._lock:
            fault_point("wal.checkpoint")  # window 1
            data = dump_snapshot(database)
            problem = verify_snapshot_bytes(data)
            if problem is not None:
                raise WALIntegrityError(
                    f"checkpoint aborted: fresh snapshot fails verification "
                    f"({problem})",
                    location=str(self.checkpoint_path),
                    classification=problem,
                )
            durable.write_bytes(
                self.checkpoint_tmp_path, data, mode=self.durability_mode
            )
            if self.checkpoint_path.exists():
                durable.replace(
                    self.checkpoint_path,
                    self.prev_checkpoint_path,
                    mode=self.durability_mode,
                )
            fault_point("wal.checkpoint")  # window 2
            durable.replace(
                self.checkpoint_tmp_path,
                self.checkpoint_path,
                mode=self.durability_mode,
            )
            fault_point("wal.checkpoint")  # window 3
            if self.log_path.exists():
                durable.replace(
                    self.log_path, self.prev_log_path,
                    mode=self.durability_mode,
                )
            fault_point("wal.checkpoint")  # window 4
            ondisk = self.checkpoint_path.read_bytes()
            problem = verify_snapshot_bytes(ondisk)
            if problem is not None:
                raise WALIntegrityError(
                    f"checkpoint readback failed verification ({problem}); "
                    f"previous state retained",
                    location=str(self.checkpoint_path),
                    classification=problem,
                )
            self._gc_after_checkpoint(database)
            self.checkpoints += 1
            return self.checkpoint_path

    def _gc_after_checkpoint(self, database: OMSDatabase) -> None:
        """Drop superseded artifacts once the new checkpoint verified."""
        for stale in (self.prev_log_path, self.prev_checkpoint_path):
            if stale.exists():
                stale.unlink()
        for entry in self.blob_dir.iterdir():
            if entry.is_file():
                entry.unlink()
        durable.fsync_dir(self.root, mode=self.durability_mode)
        durable.fsync_dir(self.blob_dir, mode=self.durability_mode)
        # everything the checkpoint holds is durable by definition
        self._durable_digests = set(database.payload_digests())

    # -- recovery -------------------------------------------------------------

    def recover(
        self,
        schema: Schema,
        clock: Optional[SimClock] = None,
        enable_procedural_interface: bool = False,
        policy: Optional[Dict[str, bool]] = None,
    ) -> Tuple[OMSDatabase, WALRecoveryInfo]:
        """Rebuild the database: last good checkpoint + log replay.

        Returns the recovered database and a report.  The database is
        **not** attached to this WAL yet — call ``db.attach_wal(wal)``
        after, so replayed primitives are not re-logged.
        """
        with self._lock:
            info = WALRecoveryInfo()
            if self.checkpoint_tmp_path.exists():
                # an unpublished checkpoint temp is as good as absent
                self.checkpoint_tmp_path.unlink()
                info.cleaned.append("dropped unpublished checkpoint temp")

            base_bytes = self._pick_base(info)
            if base_bytes is not None:
                database = restore_snapshot(
                    schema,
                    base_bytes,
                    clock=clock,
                    enable_procedural_interface=enable_procedural_interface,
                )
            else:
                database = OMSDatabase(
                    schema,
                    clock=clock,
                    enable_procedural_interface=enable_procedural_interface,
                    policy=policy,
                )

            logs: List[Tuple[pathlib.Path, bool]] = []
            if info.base == "previous-checkpoint" or info.base == "none":
                if self.prev_log_path.exists():
                    logs.append((self.prev_log_path, False))
            logs.append((self.log_path, True))

            all_records: List[Dict[str, Any]] = []
            for path, is_live in logs:
                records, torn_offset, torn_count = self._scan_log(
                    path, location=str(path)
                )
                if torn_offset is not None:
                    if not is_live:
                        raise WALIntegrityError(
                            f"{path}: rotated log has a damaged tail — "
                            f"at-rest corruption",
                            location=str(path),
                            classification="torn-write",
                        )
                    # drop the torn tail: the interrupted append never
                    # committed, so truncating is the repair
                    with open(path, "r+b") as handle:
                        handle.truncate(torn_offset)
                        durable.fsync_file_handle(
                            handle, mode=self.durability_mode
                        )
                    info.torn_records_dropped += torn_count
                    info.cleaned.append(
                        f"truncated torn tail of {path.name} "
                        f"({torn_count} record(s))"
                    )
                all_records.extend(records)

            self._check_lsn_order(all_records)
            applied, skipped = self.replay_into(database, all_records)
            info.records_applied = len(all_records)
            info.ops_applied = applied
            info.ops_skipped = skipped

            if all_records:
                self._lsn = max(
                    self._lsn, max(int(r["lsn"]) for r in all_records)
                )
            # a verified current checkpoint supersedes the .prev pair:
            # finish any truncation a crash interrupted
            if info.base == "checkpoint":
                for stale in (self.prev_log_path, self.prev_checkpoint_path):
                    if stale.exists():
                        stale.unlink()
                        info.cleaned.append(f"completed truncation of {stale.name}")
                durable.fsync_dir(self.root, mode=self.durability_mode)
            self._durable_digests.update(database.payload_digests())
            return database, info

    def _pick_base(self, info: WALRecoveryInfo) -> Optional[bytes]:
        """Choose the newest checkpoint that verifies, or none."""
        current = self._verified_checkpoint(self.checkpoint_path)
        if current is not None:
            info.base = "checkpoint"
            return current
        previous = self._verified_checkpoint(self.prev_checkpoint_path)
        if previous is not None:
            info.base = "previous-checkpoint"
            if self.checkpoint_path.exists():
                info.cleaned.append(
                    "current checkpoint failed verification; recovered "
                    "from previous checkpoint"
                )
            return previous
        if self.checkpoint_path.exists() or self.prev_checkpoint_path.exists():
            raise WALIntegrityError(
                "no checkpoint verifies and the log does not reach back "
                "to an empty database — refusing to silently lose state",
                location=str(self.checkpoint_path),
                classification="bit-rot",
            )
        info.base = "none"
        return None

    @staticmethod
    def _verified_checkpoint(path: pathlib.Path) -> Optional[bytes]:
        if not path.exists():
            return None
        data = path.read_bytes()
        if verify_snapshot_bytes(data) is not None:
            return None
        return data

    @staticmethod
    def _check_lsn_order(records: List[Dict[str, Any]]) -> None:
        previous = 0
        for record in records:
            lsn = int(record["lsn"])
            if lsn <= previous:
                raise WALIntegrityError(
                    f"log sequence numbers out of order ({lsn} after "
                    f"{previous}) — mixed or rewound log files",
                    location="wal",
                    classification="bit-rot",
                )
            previous = lsn

    # -- replay ---------------------------------------------------------------

    def replay_into(
        self, database: OMSDatabase, records: List[Dict[str, Any]]
    ) -> Tuple[int, int]:
        """Apply decoded records to *database*; ``(applied, skipped)``.

        Idempotent and restartable: applying the same records again
        converges to the same state (the double-replay fixpoint the
        crash matrix asserts).  The database must not have this WAL
        attached, or replayed ops would be logged again.
        """
        if getattr(database, "wal", None) is self:
            raise WALError(
                "replay_into: detach the WAL before replaying into the "
                "database (replayed ops must not be re-logged)"
            )
        cache = self._seed_payload_cache(database, records)
        applied = 0
        skipped = 0
        for record in records:
            for op in record["ops"]:
                if self._apply_op(database, op, cache):
                    applied += 1
                else:
                    skipped += 1
        return applied, skipped

    def _seed_payload_cache(
        self, database: OMSDatabase, records: List[Dict[str, Any]]
    ) -> Dict[str, bytes]:
        """Resolve every referenced payload digest up front.

        A digest may be durable only inside the checkpoint (its sidecar
        was GC'd); if a replayed ``delete`` later drops its last
        reference and a subsequent ``create`` re-interns it, the bytes
        must come from somewhere — this cache pins them for the whole
        replay.
        """
        cache: Dict[str, bytes] = {}
        for record in records:
            for op in record["ops"]:
                digest = op.get("payload_digest")
                if not digest or digest in cache:
                    continue
                data = self._resolve_payload(database, digest)
                if data is not None:
                    cache[digest] = data
        return cache

    def _resolve_payload(
        self, database: OMSDatabase, digest: str
    ) -> Optional[bytes]:
        sidecar = self.blob_dir / digest
        if sidecar.is_file():
            data = sidecar.read_bytes()
            if digest_bytes(data) != digest:
                raise WALIntegrityError(
                    f"payload sidecar {digest} fails its digest",
                    location=str(sidecar),
                    classification="bit-rot",
                )
            return data
        try:
            return database.materialize_payload(digest, verify=True)
        except OMSError:
            return None

    def _payload_for(
        self, op: Dict[str, Any], cache: Dict[str, bytes]
    ) -> Optional[bytes]:
        digest = op.get("payload_digest")
        if digest is None:
            return None
        data = cache.get(digest)
        if data is None:
            raise WALError(
                f"replay: payload {digest} referenced by op "
                f"{op.get('op')!r} is not durable anywhere (sidecar, "
                f"checkpoint, or earlier in this replay)"
            )
        return data

    def _apply_op(
        self,
        database: OMSDatabase,
        op: Dict[str, Any],
        cache: Dict[str, bytes],
    ) -> bool:
        kind = op.get("op")
        if kind == "create":
            oid = op["oid"]
            if database.exists(oid):
                return True  # idempotent re-create
            entity = database.schema.entity(op["type"])
            values = entity.validate_values({
                k: v for k, v in op.get("values", {}).items() if v is not None
            })
            obj = OMSObject(oid, entity, values)
            database._attach_payload(obj, self._payload_for(op, cache))
            database._objects[oid] = obj
            database._allocator.observe(oid)
            return True
        if kind == "delete":
            oid = op["oid"]
            if not database.exists(oid):
                return True  # idempotent re-delete
            payload = database.get(oid).payload
            if payload is not None:
                # pin the bytes: a later create may re-intern this digest
                cache.setdefault(digest_bytes(payload), payload)
            database.delete(oid)
            return True
        if kind == "set_attr":
            oid = op["oid"]
            if not database.exists(oid):
                return False
            database.set_attr(oid, op["name"], op["value"])
            return True
        if kind == "set_payload":
            oid = op["oid"]
            if not database.exists(oid):
                return False
            previous = database.get(oid).payload
            if previous is not None:
                cache.setdefault(digest_bytes(previous), previous)
            database.set_payload(oid, self._payload_for(op, cache))
            return True
        if kind == "link":
            source, target = op["source"], op["target"]
            if not (database.exists(source) and database.exists(target)):
                return False
            database._link_add(op["rel"], source, target)
            return True
        if kind == "unlink":
            database._link_remove(op["rel"], op["source"], op["target"])
            return True
        raise WALError(f"replay: unknown op kind {kind!r}")

    # -- verification / repair (audit and recovery sweeps) --------------------

    def verify(self) -> List[Tuple[str, str]]:
        """Non-mutating damage sweep: ``(location, classification)`` list.

        A healthy (or freshly recovered) WAL reports nothing; a torn
        tail shows up as ``torn-tail`` until :meth:`repair` drops it.
        """
        findings: List[Tuple[str, str]] = []
        for path in (self.checkpoint_path, self.prev_checkpoint_path):
            if path.exists():
                problem = verify_snapshot_bytes(path.read_bytes())
                if problem is not None:
                    findings.append((str(path), problem))
        for path in (self.prev_log_path, self.log_path):
            try:
                _, torn_offset, _ = self._scan_log(path, location=str(path))
            except WALIntegrityError as exc:
                findings.append((str(path), exc.classification or "bit-rot"))
                continue
            if torn_offset is not None:
                findings.append((str(path), "torn-tail"))
        for entry in sorted(self.blob_dir.iterdir()):
            if entry.is_file() and digest_bytes(entry.read_bytes()) != entry.name:
                findings.append((str(entry), "bit-rot"))
        return findings

    def repair(self) -> List[str]:
        """Drop the live log's torn tail, if any; returns repair notes.

        Safe to call whenever the database is quiesced (the recovery
        sweep calls it); damage it cannot repair is left for
        :meth:`verify` / the audit to report.
        """
        notes: List[str] = []
        with self._lock:
            try:
                _, torn_offset, torn_count = self._scan_log(
                    self.log_path, location=str(self.log_path)
                )
            except WALIntegrityError:
                return notes  # not a tail problem; audit reports it
            if torn_offset is not None:
                with open(self.log_path, "r+b") as handle:
                    handle.truncate(torn_offset)
                    durable.fsync_file_handle(
                        handle, mode=self.durability_mode
                    )
                notes.append(
                    f"wal: truncated torn tail of {LOG_NAME} "
                    f"({torn_count} record(s))"
                )
        return notes

    # -- stats ----------------------------------------------------------------

    def log_size(self) -> int:
        """Current live-log size in bytes."""
        try:
            return self.log_path.stat().st_size
        except OSError:
            return 0

    def stats(self) -> Dict[str, int]:
        return {
            "lsn": self._lsn,
            "records_appended": self.records_appended,
            "ops_appended": self.ops_appended,
            "bytes_appended": self.bytes_appended,
            "blob_writes": self.blob_writes,
            "blob_bytes_written": self.blob_bytes_written,
            "blob_dedup_hits": self.blob_dedup_hits,
            "checkpoints": self.checkpoints,
            "log_size": self.log_size(),
        }
