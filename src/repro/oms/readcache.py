"""Byte-budgeted, digest-keyed cache of verified payload bytes.

One :class:`MaterializationCache` is shared by every read path of a
hybrid workspace — blob materialization, FMCAD ``read_version``, the
coupled-run harvest — because all of them address bytes by the same
SHA-256 content digest.  The keying carries the coherence argument:

* a digest **names its bytes**, so a cached entry can never be stale in
  the bit-rot sense — repair writes back the *same* bytes the digest
  always named;
* the one way a digest's bytes become unservable is **quarantine**
  (known-bad, never to be served again) — so quarantine and repair both
  :meth:`invalidate` the digest, and every consumer re-checks its own
  quarantine state *before* consulting the cache.

Entries are verified-once by construction: consumers only ``put`` bytes
that just proved their digest (or were served by a verified-once fast
path), so a hit skips reconstruction *and* re-verification.  Eviction
is LRU by bytes against a fixed budget; a payload larger than the whole
budget is simply never cached.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional

#: default budget wired by HybridFramework (overridable per instance
#: and via the REPRO_READ_CACHE_BYTES env knob)
DEFAULT_BUDGET_BYTES = 64 * 1024 * 1024


class MaterializationCache:
    """LRU cache of ``digest -> verified payload bytes`` with a byte budget."""

    def __init__(self, budget_bytes: int = DEFAULT_BUDGET_BYTES) -> None:
        if budget_bytes < 0:
            raise ValueError(f"negative cache budget: {budget_bytes!r}")
        self.budget_bytes = budget_bytes
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, digest: str) -> Optional[bytes]:
        """The cached bytes for *digest*, or ``None`` (counted either way)."""
        with self._lock:
            data = self._entries.get(digest)
            if data is None:
                self.misses += 1
                return None
            self._entries.move_to_end(digest)
            self.hits += 1
            return data

    def put(self, digest: str, data: bytes) -> bool:
        """Cache verified *data* under *digest*; False when it cannot fit.

        Only bytes that have just proven their digest belong here — the
        cache itself never re-hashes, that is the whole saving.
        """
        size = len(data)
        if size > self.budget_bytes:
            return False
        with self._lock:
            previous = self._entries.pop(digest, None)
            if previous is not None:
                self._bytes -= len(previous)
            self._entries[digest] = data
            self._bytes += size
            while self._bytes > self.budget_bytes:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= len(evicted)
                self.evictions += 1
            return True

    def invalidate(self, digest: str) -> bool:
        """Drop *digest* (quarantine/repair coherence); True if present."""
        with self._lock:
            data = self._entries.pop(digest, None)
            if data is None:
                return False
            self._bytes -= len(data)
            self.invalidations += 1
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def cached_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "cached_bytes": self._bytes,
                "budget_bytes": self.budget_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
