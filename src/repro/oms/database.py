"""The OMS database: object storage, links, transactions, closed interface."""

from __future__ import annotations

import contextlib
import functools
import threading
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.clock import SimClock
from repro.errors import (
    ClosedInterfaceError,
    OMSError,
    RelationshipError,
    TransactionError,
    UnknownObjectError,
)
from repro.ids import IdAllocator, sort_key
from repro.oms.blobs import BlobStat, BlobStore, PayloadHandle
from repro.oms.links import LinkStore
from repro.oms.locks import LockManager, ShardedLockManager
from repro.oms.objects import OMSObject
from repro.oms.schema import RelationshipDef, Schema
from repro.oms.transactions import GroupCommit, Transaction


class DirectAccess:
    """Procedural access to stored payloads, bypassing file staging.

    JCF 3.0 does **not** offer this ("Direct access to the internal
    structure of the stored data by an appropriate interface is not
    possible", Section 2.1); the paper's future work (Section 3.3)
    envisages exactly such a procedural interface.  It exists here purely
    as the ablation arm of the Section 3.6 performance experiment and is
    only reachable when the database was built with
    ``enable_procedural_interface=True``.
    """

    def __init__(self, database: "OMSDatabase") -> None:
        self._database = database

    def read_payload(self, oid: str) -> Optional[bytes]:
        """Read a design-data payload in place — no copy, metadata cost only."""
        obj = self._database.get(oid)
        self._database.clock.charge_metadata_op()
        return obj.payload

    def write_payload(self, oid: str, payload: bytes) -> None:
        """Write a design-data payload in place."""
        self._database.set_payload(oid, payload)
        self._database.clock.charge_metadata_op()


def _synchronized(method):
    """Serialise one public store operation on the database mutex.

    Primitive reads and writes become atomic with respect to each other;
    the mutex is reentrant, so journalled undos (which call mutating
    primitives back during an abort) and predicate callbacks that issue
    further queries are safe.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._mutex:
            return method(self, *args, **kwargs)

    return wrapper


class OMSDatabase:
    """Schema-checked object store with links, transactions and staging.

    All mutating primitives journal their inverses into the active
    transaction (if any), so a JCF desktop operation that fails midway
    rolls back atomically.

    Thread-safety is layered: the internal reentrant mutex makes every
    primitive operation atomic (no torn index updates), per-thread
    transactions keep undo journals private to their worker, and the
    :class:`~repro.oms.locks.LockManager` in :attr:`locks` gives the
    scheduler run-level isolation on top.
    """

    def __init__(
        self,
        schema: Schema,
        clock: Optional[SimClock] = None,
        allocator: Optional[IdAllocator] = None,
        enable_procedural_interface: bool = False,
        policy: Optional[Dict[str, bool]] = None,
    ) -> None:
        self.schema = schema
        self.clock = clock or SimClock()
        self._allocator = allocator or IdAllocator()
        self._objects: Dict[str, OMSObject] = {}
        #: content-addressed payload table; every stored payload is
        #: interned here, so identical design data is held exactly once
        self._blobs = BlobStore()
        #: adjacency-indexed link store; mutated ONLY via _link_add/_link_remove
        self._link_index = LinkStore()
        #: per-thread active transaction — under the parallel scheduler
        #: every worker runs its own undo journal
        self._txn_local = threading.local()
        #: serialises every structural read/write of the shared stores;
        #: reentrant because journalled undos call mutating primitives
        #: back while an abort holds the lock
        self._mutex = threading.RLock()
        #: run-level read/write isolation for the scheduler (coarser than
        #: the mutex: held across a whole coupled run, not one primitive)
        self.locks = LockManager()
        #: open group-commit batches by scope.  Scope ``""`` is the
        #: classic whole-database group; the design server opens one
        #: scope per shard so concurrent shard waves coalesce their own
        #: commits without seeing each other's groups.
        self._commit_groups: Dict[str, GroupCommit] = {}
        #: per-thread commit-scope binding (see :meth:`commit_scope`)
        self._scope_local = threading.local()
        #: durable-flush accounting for the group-commit experiment
        self.commit_count = 0
        self.flush_count = 0
        self.coalesced_commits = 0
        self._procedural_interface_enabled = enable_procedural_interface
        #: framework policy switches consulted by the typed wrappers
        #: (e.g. the cross-project-sharing future-work extension)
        self.policy: Dict[str, bool] = dict(policy or {})
        #: attached write-ahead log (see oms/wal.py); when set, every
        #: committed change set appends one durable record
        self.wal = None
        #: monotone counter bumped by every structural mutation (and by
        #: transaction commit/abort, since undo closures bypass the
        #: public mutators) — the QueryEngine memo's validity token
        self.mutation_epoch = 0
        #: shared materialization cache, if attached (read-path PR)
        self._read_cache = None

    # -- read path -------------------------------------------------------------

    @property
    def read_cache(self):
        """The attached :class:`MaterializationCache`, or ``None``."""
        return self._read_cache

    def attach_read_cache(self, cache) -> None:
        """Serve verified payload reads from (and into) *cache*.

        The cache is digest-keyed, so it is shared safely with every
        other consumer addressing bytes by the same content address
        (FMCAD libraries, the coupled-run harvest).
        """
        self._read_cache = cache
        self._blobs.attach_cache(cache)

    def enable_payload_views(self, root):
        """Allow zero-copy mmap views of payloads, spilled under *root*.

        Returns the probed filesystem capabilities for the view root.
        """
        return self._blobs.enable_views(root)

    def open_payload_view(self, digest: str) -> memoryview:
        """Read-only (zero-copy where possible) view of a payload."""
        return self._blobs.open_view(digest)

    def _bump_epoch(self) -> None:
        self.mutation_epoch += 1

    def shard_locks(self, shard_of, shards: int) -> ShardedLockManager:
        """Swap the run-level lock manager for a sharded router.

        *shard_of* maps a lock key to a shard id in ``0..shards-1`` (the
        design server passes its consistent-hash map).  The router keeps
        the :class:`LockManager` interface, so the scheduler and the
        stats paths are oblivious.  Counters of the replaced manager are
        discarded — install the router before serving traffic.
        """
        router = ShardedLockManager(shard_of, shards)
        self.locks = router
        return router

    # -- write-ahead log -------------------------------------------------------

    def attach_wal(self, wal) -> None:
        """Log every committed change set to *wal* from now on.

        Attach only after recovery/restore: replayed primitives must not
        be logged again (the replay path runs against an unattached
        database).
        """
        self.wal = wal

    def _wal_log(self, op: Dict[str, Any]) -> None:
        """Route one successful primitive mutation toward the WAL.

        Inside a transaction the op is buffered on the per-thread undo
        journal's sibling list and lands as one record at commit; an
        auto-committed primitive pays its own record.  Undo closures
        call private primitives, so rollbacks never reach here.
        """
        if self.wal is None:
            return
        txn = self._active_txn
        if txn is not None:
            txn.record_wal(op)
        else:
            self._wal_commit([op])

    def _wal_commit(self, ops: List[Dict[str, Any]]) -> None:
        """Append one committed change set, honouring group commit."""
        if self.wal is None or not ops:
            return
        with self._mutex:
            group = self._current_group()
            if group is not None and not group.closed:
                group.buffer_wal(ops)
                return
        self.wal.commit(ops)

    # -- transactions ---------------------------------------------------------

    @property
    def _active_txn(self) -> Optional[Transaction]:
        return getattr(self._txn_local, "txn", None)

    @_active_txn.setter
    def _active_txn(self, txn: Optional[Transaction]) -> None:
        self._txn_local.txn = txn

    @property
    def in_transaction(self) -> bool:
        """True while a transaction block is active **on this thread**.

        Durability-sensitive writers (the coupling intent journal) check
        this: an intent written inside somebody's transaction would
        vanish on abort, defeating its purpose.
        """
        return self._active_txn is not None

    @contextlib.contextmanager
    def transaction(self) -> Iterator[Transaction]:
        """Run a block atomically; rolls back all mutations on exception.

        Transactions are per-thread: concurrent workers each journal
        into their own transaction, while the primitive mutations they
        make are serialised by the store mutex.
        """
        if self._active_txn is not None:
            # Nested blocks join the outer transaction: the outermost
            # commit/abort decides the fate of everything.
            yield self._active_txn
            return
        txn = Transaction(self._allocator.allocate("txn"))
        self._active_txn = txn
        try:
            yield txn
        except BaseException:
            self._active_txn = None
            # roll back under the mutex: the undo closures mutate the
            # shared stores directly — and bypass the public mutators,
            # so the abort itself must advance the mutation epoch
            with self._mutex:
                txn.abort()
                self._bump_epoch()
            raise
        else:
            self._active_txn = None
            txn.commit()
            with self._mutex:
                self._bump_epoch()
            # the whole transaction lands as one WAL record — durability
            # cost per commit is O(change set), and an aborted block
            # (whose buffered ops died with it) never touches the log
            self._wal_commit(txn.wal_ops)
            self._note_top_level_commit()

    def _note_top_level_commit(self) -> None:
        """Account the durable flush of one committed top-level txn.

        Inside an open :meth:`group_commit` batch the flush is deferred
        to the group; otherwise it is charged immediately.  With the
        default cost model (``commit_flush_ms=0``) the charge is free
        either way — only the counters move.
        """
        with self._mutex:
            self.commit_count += 1
            group = self._current_group()
            if group is not None:
                group.note_commit()
                return
            self.flush_count += 1
        self.clock.charge_commit_flush()

    def _current_scope(self) -> str:
        return getattr(self._scope_local, "scope", "")

    def _current_group(self) -> Optional[GroupCommit]:
        """The open commit group for the calling thread's scope, if any.

        Callers must hold :attr:`_mutex` (every call site does).
        """
        return self._commit_groups.get(self._current_scope())

    @contextlib.contextmanager
    def commit_scope(self, scope: str) -> Iterator[None]:
        """Bind the calling thread to commit-group *scope* for a block.

        Worker threads executing a shard's wave bind to that shard's
        scope so their transaction commits register with (and buffer WAL
        into) *their* wave's group, not another shard's.  Scopes nest in
        the obvious stack-like way per thread.
        """
        previous = self._current_scope()
        self._scope_local.scope = scope
        try:
            yield
        finally:
            self._scope_local.scope = previous

    @contextlib.contextmanager
    def group_commit(self, scope: str = "") -> Iterator[GroupCommit]:
        """Coalesce all top-level commits in this block into one flush.

        The scheduler opens one group per wave; every run's metadata
        transaction then registers with the group instead of flushing
        individually, and the group pays a single durable flush when it
        closes.  Groups do not nest *within a scope*; independent scopes
        (one per design-server shard) may hold concurrent open groups.
        A commit joins the group of its thread's bound scope (see
        :meth:`commit_scope`); the thread opening the group is bound for
        the duration of the block.
        """
        with self._mutex:
            if scope in self._commit_groups:
                raise TransactionError(
                    "group_commit: a commit group is already open"
                    + (f" in scope {scope!r}" if scope else "")
                )
            group = GroupCommit(self._allocator.allocate("commitgroup"))
            self._commit_groups[scope] = group
        try:
            with self.commit_scope(scope):
                yield group
        finally:
            with self._mutex:
                del self._commit_groups[scope]
                commits = group.close()
                pending_wal = group.drain_wal()
                if commits:
                    self.flush_count += 1
                    self.coalesced_commits += commits - 1
            if commits:
                self.clock.charge_commit_flush()
            if pending_wal and self.wal is not None:
                # the whole wave's change sets land as one record — one
                # append, one fsync, mirroring the single durable flush
                self.wal.commit(pending_wal)

    def _journal(self, undo: Callable[[], None]) -> None:
        if self._active_txn is not None:
            self._active_txn.record_undo(undo)

    # -- object lifecycle -------------------------------------------------------

    @_synchronized
    def create(
        self,
        type_name: str,
        values: Optional[Dict[str, Any]] = None,
        payload: Optional[bytes] = None,
        payload_delta_base: Optional[str] = None,
    ) -> OMSObject:
        """Create and store a new object of entity type *type_name*.

        *payload_delta_base* may name the digest of an already-stored
        blob (typically the previous version of the same design object);
        the new payload is then delta-encoded against it when worthwhile.
        """
        entity = self.schema.entity(type_name)
        complete = entity.validate_values(values or {})
        oid = self._allocator.allocate(type_name)
        handle = self._intern_payload(payload, payload_delta_base)
        obj = OMSObject(oid, entity, complete, handle)
        self._objects[oid] = obj
        self._bump_epoch()
        self.clock.charge_metadata_op()

        def undo() -> None:
            self._objects.pop(oid, None)
            if handle is not None:
                # the object is gone for good, so a plain decref suffices
                self._blobs.decref(handle.digest)
                obj._payload = None
            # stale references held by typed wrappers must observe the
            # rollback, exactly as they observe delete()
            obj._deleted = True

        self._journal(undo)
        self._wal_log({
            "op": "create",
            "oid": oid,
            "type": type_name,
            "values": complete,
            "payload": payload,
            "delta_base": payload_delta_base,
        })
        return obj

    def get(self, oid: str) -> OMSObject:
        """Return the live object with id *oid*."""
        obj = self._objects.get(oid)
        if obj is None or obj.deleted:
            raise UnknownObjectError(f"no such object: {oid!r}")
        return obj

    def exists(self, oid: str) -> bool:
        obj = self._objects.get(oid)
        return obj is not None and not obj.deleted

    @_synchronized
    def delete(self, oid: str) -> None:
        """Delete an object and all links touching it (O(degree), not O(E)).

        The object's ``deleted`` flag is set so callers holding a stale
        :class:`OMSObject` reference (typed wrappers cache them) observe
        the deletion instead of silently reading removed state.
        """
        obj = self.get(oid)
        removed_links = self._link_index.remove_touching(oid)
        del self._objects[oid]
        obj._deleted = True
        handle = obj.payload_handle
        freed = self._drop_payload_ref(handle.digest) if handle else None
        self._bump_epoch()
        self.clock.charge_metadata_op()

        def undo() -> None:
            if handle is not None:
                if freed is not None:
                    self._blobs.intern(freed)
                else:
                    self._blobs.incref(handle.digest)
            self._objects[oid] = obj
            obj._deleted = False
            for rel_name, pair in removed_links:
                self._link_add(rel_name, *pair)

        self._journal(undo)
        self._wal_log({"op": "delete", "oid": oid})

    @_synchronized
    def set_attr(self, oid: str, name: str, value: Any) -> None:
        """Schema-checked attribute update."""
        obj = self.get(oid)
        previous = obj._set(name, value)
        self._bump_epoch()
        self.clock.charge_metadata_op()
        self._journal(lambda: obj._set(name, previous))
        self._wal_log({"op": "set_attr", "oid": oid, "name": name,
                       "value": value})

    @_synchronized
    def set_payload(
        self,
        oid: str,
        payload: Optional[bytes],
        payload_delta_base: Optional[str] = None,
    ) -> None:
        """Replace an object's design-data payload (journalled).

        The bytes are interned into the content-addressed blob store:
        writing a payload some other object already holds costs a
        refcount bump, not a second copy.
        """
        obj = self.get(oid)
        previous = obj.payload_handle
        handle = self._intern_payload(payload, payload_delta_base)
        obj._payload = handle
        freed = (
            self._drop_payload_ref(previous.digest)
            if previous is not None
            else None
        )
        self._bump_epoch()

        def undo() -> None:
            # restore the previous reference BEFORE dropping the new one:
            # when both are the same blob, the reverse order would free
            # the entry and then incref a digest that no longer exists
            if previous is not None:
                if freed is not None:
                    # the last reference was dropped; re-intern the exact
                    # bytes so the digest (and `previous` handle) is valid
                    # again
                    self._blobs.intern(freed)
                else:
                    self._blobs.incref(previous.digest)
            if handle is not None:
                self._blobs.decref(handle.digest)
            obj._payload = previous

        self._journal(undo)
        self._wal_log({"op": "set_payload", "oid": oid, "payload": payload,
                       "delta_base": payload_delta_base})

    def payload_stat(self, oid: str) -> Optional[BlobStat]:
        """Digest and size of an object's payload in O(1) — no bytes read.

        Returns ``None`` when the object has no payload.  This is the
        probe the copy-on-write staging area uses to decide whether a
        staged file is already up to date.
        """
        handle = self.get(oid).payload_handle
        if handle is None:
            return None
        return self._blobs.stat(handle.digest)

    def describe_payload(self, oid: str) -> Optional[Dict[str, int]]:
        """Storage shape (full/delta, stored bytes, chain depth) of a payload."""
        handle = self.get(oid).payload_handle
        if handle is None:
            return None
        return self._blobs.describe(handle.digest)

    def blob_stats(self) -> Dict[str, int]:
        """Dedup/delta counters of the content-addressed payload store."""
        return self._blobs.stats()

    def check_blobs(self) -> None:
        """Verify every blob-store invariant (property-test hook)."""
        self._blobs.check()

    # -- storage integrity (scrubber hooks) ----------------------------------

    def scrub_payloads(self) -> Dict[str, str]:
        """Re-verify every stored payload; map digest -> damage class."""
        return self._blobs.scrub()

    def repair_payload(self, digest: str, data: bytes) -> None:
        """Overwrite a damaged blob with verified pristine bytes."""
        self._blobs.repair(digest, data)

    def quarantine_payload(self, digest: str) -> None:
        """Mark an unrepairable blob so reads raise instead of serving it."""
        self._blobs.quarantine(digest)

    def quarantined_payloads(self) -> List[str]:
        return self._blobs.quarantined_digests()

    def materialize_payload(
        self, digest: str, verify: Optional[bool] = None
    ) -> bytes:
        """Reconstruct a payload by digest (verified read by default)."""
        return self._blobs.materialize(digest, verify=verify)

    def payload_digest_of(self, oid: str) -> Optional[str]:
        """Content address of an object's payload, or ``None``."""
        handle = self.get(oid).payload_handle
        return None if handle is None else handle.digest

    def payload_digests(self) -> List[str]:
        """Every digest the blob store holds (WAL checkpoint bookkeeping)."""
        return self._blobs.digests()

    @_synchronized
    def verify_payload_refcounts(self) -> List[str]:
        """Cross-check blob refcounts against live object payloads.

        Recomputes, from scratch, how many references each digest should
        hold (one per live object's payload handle, plus delta-base
        references counted by the store itself) and reports every
        mismatch.  Must be called outside any transaction — an open undo
        journal legitimately pins extra references.
        """
        if self.in_transaction:
            raise OMSError(
                "verify_payload_refcounts: cannot audit inside a transaction"
            )
        external: Dict[str, int] = {}
        for obj in self._objects.values():
            if obj.deleted:
                continue
            handle = obj.payload_handle
            if handle is not None:
                external[handle.digest] = external.get(handle.digest, 0) + 1
        return self._blobs.reference_audit(external)

    def _intern_payload(
        self, payload: Optional[bytes], base_digest: Optional[str] = None
    ) -> Optional[PayloadHandle]:
        if payload is None:
            return None
        return PayloadHandle(self._blobs, self._blobs.intern(payload, base_digest))

    def _drop_payload_ref(self, digest: str) -> Optional[bytes]:
        """Drop one payload reference; keep the bytes only if an active
        transaction might need them back on abort."""
        if self._active_txn is not None:
            return self._blobs.release(digest)
        self._blobs.decref(digest)
        return None

    def _attach_payload(self, obj: OMSObject, payload: Optional[bytes]) -> None:
        """Intern *payload* for an object being inserted directly (snapshot
        restore) — bypasses journalling, which restore does not need."""
        obj._payload = self._intern_payload(payload)

    # -- links ---------------------------------------------------------------
    #
    # All mutations flow through _link_add/_link_remove so the forward and
    # reverse adjacency indexes can never desync — in particular every
    # transaction-undo closure calls these primitives rather than mutating
    # a captured set (the old flat-store undo lambdas did exactly that,
    # which silently breaks the moment a second index exists).

    def _link_add(self, rel_name: str, source_oid: str, target_oid: str) -> bool:
        return self._link_index.add(rel_name, source_oid, target_oid)

    def _link_remove(
        self, rel_name: str, source_oid: str, target_oid: str
    ) -> bool:
        return self._link_index.remove(rel_name, source_oid, target_oid)

    def _check_cardinality(
        self, rel: RelationshipDef, source_oid: str, target_oid: str
    ) -> None:
        # O(1): the reverse/forward indexes answer "already linked?" directly
        if rel.cardinality in ("1:1", "1:N"):
            # each target may have at most one source
            src = self._link_index.first_source(rel.name, target_oid)
            if src is not None and src != source_oid:
                raise RelationshipError(
                    f"{rel.name}: target {target_oid} already linked "
                    f"from {src} (cardinality {rel.cardinality})"
                )
        if rel.cardinality in ("1:1", "N:1"):
            # each source may have at most one target
            dst = self._link_index.first_target(rel.name, source_oid)
            if dst is not None and dst != target_oid:
                raise RelationshipError(
                    f"{rel.name}: source {source_oid} already linked "
                    f"to {dst} (cardinality {rel.cardinality})"
                )

    @_synchronized
    def link(self, rel_name: str, source_oid: str, target_oid: str) -> None:
        """Create a typed, cardinality-checked link between two objects."""
        rel = self.schema.relationship(rel_name)
        source = self.get(source_oid)
        target = self.get(target_oid)
        if source.type_name != rel.source_type:
            raise RelationshipError(
                f"{rel_name}: source must be {rel.source_type!r}, "
                f"got {source.type_name!r}"
            )
        if target.type_name != rel.target_type:
            raise RelationshipError(
                f"{rel_name}: target must be {rel.target_type!r}, "
                f"got {target.type_name!r}"
            )
        self._check_cardinality(rel, source_oid, target_oid)
        if not self._link_add(rel_name, source_oid, target_oid):
            return  # idempotent
        self._bump_epoch()
        self.clock.charge_metadata_op()
        self._journal(
            lambda: self._link_remove(rel_name, source_oid, target_oid)
        )
        self._wal_log({"op": "link", "rel": rel_name, "source": source_oid,
                       "target": target_oid})

    @_synchronized
    def unlink(self, rel_name: str, source_oid: str, target_oid: str) -> None:
        """Remove a link; raises if it does not exist."""
        self.schema.relationship(rel_name)
        if not self._link_remove(rel_name, source_oid, target_oid):
            raise RelationshipError(
                f"{rel_name}: no link {source_oid} -> {target_oid}"
            )
        self._bump_epoch()
        self.clock.charge_metadata_op()
        self._journal(lambda: self._link_add(rel_name, source_oid, target_oid))
        self._wal_log({"op": "unlink", "rel": rel_name, "source": source_oid,
                       "target": target_oid})

    @_synchronized
    def linked(self, rel_name: str, source_oid: str, target_oid: str) -> bool:
        self.schema.relationship(rel_name)
        return self._link_index.contains(rel_name, source_oid, target_oid)

    @_synchronized
    def targets(self, rel_name: str, source_oid: str) -> List[OMSObject]:
        """Objects reachable from *source_oid* over *rel_name* (stable order)."""
        self.schema.relationship(rel_name)
        return [
            self.get(oid)
            for oid in self._link_index.targets_of(rel_name, source_oid)
        ]

    @_synchronized
    def sources(self, rel_name: str, target_oid: str) -> List[OMSObject]:
        """Objects linking to *target_oid* over *rel_name* (stable order)."""
        self.schema.relationship(rel_name)
        return [
            self.get(oid)
            for oid in self._link_index.sources_of(rel_name, target_oid)
        ]

    @_synchronized
    def target_oids(self, rel_name: str, source_oid: str) -> List[str]:
        """Like :meth:`targets` but returns bare oids — no object fetch."""
        self.schema.relationship(rel_name)
        return self._link_index.targets_of(rel_name, source_oid)

    @_synchronized
    def source_oids(self, rel_name: str, target_oid: str) -> List[str]:
        """Like :meth:`sources` but returns bare oids — no object fetch."""
        self.schema.relationship(rel_name)
        return self._link_index.sources_of(rel_name, target_oid)

    @_synchronized
    def out_degree(self, rel_name: str, source_oid: str) -> int:
        """Number of targets of *source_oid* over *rel_name*, O(1)."""
        self.schema.relationship(rel_name)
        return self._link_index.out_degree(rel_name, source_oid)

    @_synchronized
    def in_degree(self, rel_name: str, target_oid: str) -> int:
        """Number of sources of *target_oid* over *rel_name*, O(1)."""
        self.schema.relationship(rel_name)
        return self._link_index.in_degree(rel_name, target_oid)

    @_synchronized
    def neighbors(
        self,
        rel_name: str,
        oids: Sequence[str],
        direction: str = "out",
    ) -> Dict[str, List[OMSObject]]:
        """Batch single-hop expansion over one relation.

        One schema check for the whole batch, one O(degree) index probe
        per oid — the API the JCF services use instead of issuing
        ``targets()``/``sources()`` calls in a loop.  ``direction`` is
        ``"out"`` (follow links forward) or ``"in"`` (backwards).  Only
        oids with at least one neighbor appear in the result.
        """
        self.schema.relationship(rel_name)
        if direction == "out":
            probe = self._link_index.targets_of
        elif direction == "in":
            probe = self._link_index.sources_of
        else:
            raise ValueError(f"direction must be 'out' or 'in': {direction!r}")
        expanded: Dict[str, List[OMSObject]] = {}
        for oid in oids:
            found = probe(rel_name, oid)
            if found:
                expanded[oid] = [self.get(n) for n in found]
        return expanded

    @_synchronized
    def link_pairs(self, rel_name: str) -> Set[Tuple[str, str]]:
        """A copy of the relation's ``(source, target)`` pair set."""
        self.schema.relationship(rel_name)
        return self._link_index.pairs(rel_name)

    @_synchronized
    def relation_names(self) -> List[str]:
        """Relations holding at least one link, sorted by name."""
        return self._link_index.relation_names()

    # -- queries ----------------------------------------------------------------

    @_synchronized
    def select(
        self,
        type_name: str,
        predicate: Optional[Callable[[OMSObject], bool]] = None,
    ) -> List[OMSObject]:
        """All live objects of *type_name*, optionally filtered, id-ordered."""
        self.schema.entity(type_name)  # raises on unknown type
        matches = [
            obj
            for oid, obj in sorted(
                self._objects.items(), key=lambda kv: sort_key(kv[0])
            )
            if obj.type_name == type_name and (predicate is None or predicate(obj))
        ]
        return matches

    def count(self, type_name: str) -> int:
        return len(self.select(type_name))

    # -- closed interface (Section 2.1 / Section 3.6 ablation) -------------------

    def procedural_interface(self) -> DirectAccess:
        """Return direct payload access — only in the future-work ablation.

        JCF 3.0 keeps OMS closed; calling this on a default-configured
        database raises :class:`ClosedInterfaceError`, exactly as the 1995
        encapsulation had to fall back to file staging.
        """
        if not self._procedural_interface_enabled:
            raise ClosedInterfaceError(
                "JCF 3.0 provides no procedural interface to OMS; design "
                "data must be staged through the UNIX file system "
                "(enable_procedural_interface=True simulates the paper's "
                "future-work extension)"
            )
        return DirectAccess(self)

    # -- statistics ---------------------------------------------------------------

    @_synchronized
    def stats(self) -> Dict[str, Any]:
        """Counts by entity type and total payload bytes (for experiments)."""
        by_type: Dict[str, int] = {}
        payload_bytes = 0
        for obj in self._objects.values():
            by_type[obj.type_name] = by_type.get(obj.type_name, 0) + 1
            payload_bytes += obj.payload_size
        return {
            "objects": len(self._objects),
            "by_type": by_type,
            "links": {
                name: self._link_index.count(name)
                for name in self._link_index.relation_names()
            },
            "payload_bytes": payload_bytes,
            "blobs": self._blobs.stats(),
        }
