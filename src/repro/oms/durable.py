"""Durable file writes: fsync-then-rename helpers.

The seed's at-rest artifacts (``.meta`` files, snapshots, archives)
were written with the classic temp-file + :func:`os.replace` idiom.
That is *rename-atomic* — a reader never observes a half-written file —
but it is not *power-loss durable*: neither the file contents nor the
directory entry are forced to stable storage, so a crash shortly after
the rename can surface the old file, an empty file, or nothing at all.

This module centralises the missing :func:`os.fsync` placement:

* :func:`write_bytes` — write + flush + fsync the file itself;
* :func:`atomic_replace` — durable temp write, ``os.replace``, then
  fsync of the **parent directory** so the rename itself is durable;
* :func:`replace` / :func:`fsync_dir` — for callers that build the
  temp file themselves (tar archives, WAL segments).

Durability modes
----------------

Real fsyncs dominate wall-clock in a test suite that creates thousands
of tiny files, so every helper honours a process-wide durability mode:

* ``"full"`` (default) — fsync file and parent directory as described;
* ``"relaxed"`` — skip the fsyncs but keep the write/rename sequence
  byte-identical, so crash-*consistency* (what a torn run leaves on
  disk) is unchanged and only power-loss durability is waived.

Callers may pin a mode per call site; the test suite switches the
process default to ``"relaxed"`` and durability-specific tests opt back
into ``"full"`` via the :func:`durability` context manager.
"""

from __future__ import annotations

import contextlib
import os
import pathlib
import threading
from typing import Iterator, Optional, Union

DURABILITY_FULL = "full"
DURABILITY_RELAXED = "relaxed"
DURABILITY_MODES = (DURABILITY_FULL, DURABILITY_RELAXED)

_state = threading.local()
_default_mode = DURABILITY_FULL
_default_lock = threading.Lock()

PathLike = Union[str, pathlib.Path]


def _validate(mode: str) -> str:
    if mode not in DURABILITY_MODES:
        raise ValueError(
            f"unknown durability mode {mode!r}; expected one of "
            f"{DURABILITY_MODES}"
        )
    return mode


def set_default_durability(mode: str) -> None:
    """Set the process-wide default durability mode."""
    global _default_mode
    with _default_lock:
        _default_mode = _validate(mode)


def get_default_durability() -> str:
    """The mode used when a helper is called with ``mode=None``."""
    override = getattr(_state, "override", None)
    if override is not None:
        return override
    return _default_mode


@contextlib.contextmanager
def durability(mode: str) -> Iterator[None]:
    """Temporarily force a durability mode for the current thread."""
    _validate(mode)
    previous = getattr(_state, "override", None)
    _state.override = mode
    try:
        yield
    finally:
        _state.override = previous


def _resolved(mode: Optional[str]) -> str:
    if mode is None:
        return get_default_durability()
    return _validate(mode)


def fsync_file(path: PathLike, mode: Optional[str] = None) -> None:
    """Force a file's contents to stable storage (no-op when relaxed)."""
    if _resolved(mode) != DURABILITY_FULL:
        return
    fd = os.open(os.fspath(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_file_handle(handle, mode: Optional[str] = None) -> None:
    """Fsync an already-open file object (appenders keep theirs open)."""
    if _resolved(mode) != DURABILITY_FULL:
        return
    os.fsync(handle.fileno())


def fsync_dir(path: PathLike, mode: Optional[str] = None) -> None:
    """Force a directory entry table to stable storage.

    Needed after ``os.replace``/``os.link``/``unlink`` so the *name*
    survives power loss, not just the inode contents.  Platforms that
    refuse ``fsync`` on directories are tolerated.
    """
    if _resolved(mode) != DURABILITY_FULL:
        return
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def write_bytes(path: PathLike, data: bytes, mode: Optional[str] = None) -> None:
    """Write ``data`` to ``path`` and fsync the file."""
    resolved = _resolved(mode)
    with open(os.fspath(path), "wb") as handle:
        handle.write(data)
        handle.flush()
        if resolved == DURABILITY_FULL:
            os.fsync(handle.fileno())


def replace(src: PathLike, dst: PathLike, mode: Optional[str] = None) -> None:
    """``os.replace`` followed by a parent-directory fsync."""
    os.replace(os.fspath(src), os.fspath(dst))
    fsync_dir(pathlib.Path(os.fspath(dst)).parent, mode=mode)


def atomic_replace(
    path: PathLike,
    data: bytes,
    mode: Optional[str] = None,
    tmp_suffix: str = ".tmp",
) -> None:
    """Durably publish ``data`` at ``path`` via temp-write + rename.

    The temp file lives next to the target (same suffix convention as
    the pre-existing call sites, so stale-temp sweeps keep working), is
    fsynced before the rename, and the parent directory is fsynced
    after — the full crash-safe publication sequence.
    """
    target = pathlib.Path(os.fspath(path))
    tmp = target.with_name(target.name + tmp_suffix)
    write_bytes(tmp, data, mode=mode)
    replace(tmp, target, mode=mode)
