"""Live objects managed by the OMS database."""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import SchemaError
from repro.oms.schema import EntityType


class OMSObject:
    """One persistent object: an instance of an :class:`EntityType`.

    Attribute reads go through :meth:`get`; attribute writes must go
    through the owning database so they are schema-checked and journalled
    by the active transaction.  Design-data payloads (the actual contents
    of design files) live in ``payload`` as raw bytes — OMS stores design
    data as opaque blobs that are only reachable via file staging.
    """

    __slots__ = ("oid", "entity_type", "_values", "payload", "_deleted")

    def __init__(
        self,
        oid: str,
        entity_type: EntityType,
        values: Dict[str, Any],
        payload: Optional[bytes] = None,
    ) -> None:
        self.oid = oid
        self.entity_type = entity_type
        self._values = dict(values)
        self.payload = payload
        self._deleted = False

    # -- attribute access ----------------------------------------------------

    def get(self, name: str) -> Any:
        """Return the value of attribute *name* (schema-checked name)."""
        self.entity_type.attribute(name)  # raises SchemaError if unknown
        return self._values.get(name)

    def values(self) -> Dict[str, Any]:
        """A copy of all attribute values."""
        return dict(self._values)

    # -- internal, used only by OMSDatabase ----------------------------------

    def _set(self, name: str, value: Any) -> Any:
        """Set attribute *name*; returns the previous value (for journals)."""
        attr = self.entity_type.attribute(name)
        if value is not None:
            attr.validate(value)
        elif attr.required:
            raise SchemaError(
                f"attribute {name!r} of {self.entity_type.name!r} is required"
            )
        previous = self._values.get(name)
        self._values[name] = value
        return previous

    @property
    def payload_size(self) -> int:
        """Size in bytes of the design-data payload (0 when absent)."""
        return len(self.payload) if self.payload else 0

    @property
    def type_name(self) -> str:
        return self.entity_type.name

    @property
    def deleted(self) -> bool:
        return self._deleted

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<OMSObject {self.oid} type={self.type_name}>"
