"""Live objects managed by the OMS database."""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from repro.errors import SchemaError
from repro.oms.blobs import PayloadHandle, digest_bytes
from repro.oms.schema import EntityType


class OMSObject:
    """One persistent object: an instance of an :class:`EntityType`.

    Attribute reads go through :meth:`get`; attribute writes must go
    through the owning database so they are schema-checked and journalled
    by the active transaction.  Design-data payloads (the actual contents
    of design files) are opaque blobs only reachable via file staging:
    inside a database they are interned into its content-addressed
    :class:`~repro.oms.blobs.BlobStore` and held here as a
    :class:`~repro.oms.blobs.PayloadHandle`; a standalone object (built
    outside any database, e.g. in unit tests) keeps raw bytes.  Reading
    ``payload`` transparently materializes either form.
    """

    __slots__ = ("oid", "entity_type", "_values", "_payload", "_deleted")

    def __init__(
        self,
        oid: str,
        entity_type: EntityType,
        values: Dict[str, Any],
        payload: Union[bytes, PayloadHandle, None] = None,
    ) -> None:
        self.oid = oid
        self.entity_type = entity_type
        self._values = dict(values)
        self._payload = payload
        self._deleted = False

    # -- attribute access ----------------------------------------------------

    def get(self, name: str) -> Any:
        """Return the value of attribute *name* (schema-checked name)."""
        self.entity_type.attribute(name)  # raises SchemaError if unknown
        return self._values.get(name)

    def values(self) -> Dict[str, Any]:
        """A copy of all attribute values."""
        return dict(self._values)

    # -- internal, used only by OMSDatabase ----------------------------------

    def _set(self, name: str, value: Any) -> Any:
        """Set attribute *name*; returns the previous value (for journals)."""
        attr = self.entity_type.attribute(name)
        if value is not None:
            attr.validate(value)
        elif attr.required:
            raise SchemaError(
                f"attribute {name!r} of {self.entity_type.name!r} is required"
            )
        previous = self._values.get(name)
        self._values[name] = value
        return previous

    # -- payload access ------------------------------------------------------

    @property
    def payload(self) -> Optional[bytes]:
        """The design-data bytes (materialized from the blob store)."""
        if isinstance(self._payload, PayloadHandle):
            return self._payload.materialize()
        return self._payload

    @payload.setter
    def payload(self, value: Union[bytes, PayloadHandle, None]) -> None:
        # Only the owning database assigns handles; everyone else stores
        # raw bytes (standalone objects never see a blob store).
        self._payload = value

    @property
    def payload_handle(self) -> Optional[PayloadHandle]:
        """The interned-payload handle, if this object lives in a database."""
        if isinstance(self._payload, PayloadHandle):
            return self._payload
        return None

    @property
    def payload_size(self) -> int:
        """Size in bytes of the design-data payload (0 when absent).

        O(1) for interned payloads — a blob-table probe, no bytes read.
        """
        if isinstance(self._payload, PayloadHandle):
            return self._payload.size
        return len(self._payload) if self._payload else 0

    @property
    def payload_digest(self) -> Optional[str]:
        """Content digest of the payload, ``None`` when absent.

        O(1) for interned payloads; standalone raw bytes are hashed on
        demand.
        """
        if isinstance(self._payload, PayloadHandle):
            return self._payload.digest
        if self._payload is None:
            return None
        return digest_bytes(self._payload)

    @property
    def type_name(self) -> str:
        return self.entity_type.name

    @property
    def deleted(self) -> bool:
        return self._deleted

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<OMSObject {self.oid} type={self.type_name}>"
