"""Snapshot persistence for the OMS database.

[Meck92] describes OMS as a persistent distributed kernel; for the
reproduction the property that matters is durability across framework
restarts.  ``dump_snapshot`` serialises the complete object graph
(objects, typed attributes, payloads, links) to JSON bytes;
``restore_snapshot`` rebuilds a database with identical object ids so
every stored JCF reference (including ``jcf_oid`` tags in FMCAD
properties) survives a restart.
"""

from __future__ import annotations

import base64
import json
from typing import Optional

from repro.clock import SimClock
from repro.errors import OMSError
from repro.ids import sort_key
from repro.oms.database import OMSDatabase
from repro.oms.objects import OMSObject
from repro.oms.schema import Schema

FORMAT = "repro-oms-snapshot-1"


def dump_snapshot(database: OMSDatabase) -> bytes:
    """Serialise the whole database (schema-agnostic object graph).

    Objects and link pairs are ordered by the numeric
    :func:`repro.ids.sort_key`, so dumps stay deterministic (and diffs
    stay minimal) even past the millionth id of a kind, where
    lexicographic ordering would reshuffle everything.
    """
    objects = []
    for oid in sorted(database._objects, key=sort_key):
        obj = database._objects[oid]
        payload = (
            base64.b64encode(obj.payload).decode("ascii")
            if obj.payload is not None
            else None
        )
        objects.append({
            "oid": oid,
            "type": obj.type_name,
            "values": obj.values(),
            "payload": payload,
        })
    links = {
        rel_name: [
            list(pair)
            for pair in sorted(
                database.link_pairs(rel_name),
                key=lambda pair: (sort_key(pair[0]), sort_key(pair[1])),
            )
        ]
        for rel_name in database.relation_names()
    }
    doc = {
        "format": FORMAT,
        "schema": database.schema.name,
        "objects": objects,
        "links": links,
        "policy": database.policy,
    }
    return json.dumps(doc, sort_keys=True, indent=1).encode("utf-8")


def restore_snapshot(
    schema: Schema,
    data: bytes,
    clock: Optional[SimClock] = None,
    enable_procedural_interface: bool = False,
) -> OMSDatabase:
    """Rebuild a database from :func:`dump_snapshot` output.

    Object ids are preserved exactly; the id allocator is fast-forwarded
    so new objects never collide with restored ones.  The snapshot's
    schema name must match *schema* — restoring a JCF snapshot into an
    FMCAD-shaped schema is a hard error, not a best effort.
    """
    try:
        doc = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise OMSError(f"corrupt snapshot: {exc}") from exc
    if doc.get("format") != FORMAT:
        raise OMSError(
            f"not an OMS snapshot (format={doc.get('format')!r})"
        )
    if doc.get("schema") != schema.name:
        raise OMSError(
            f"snapshot is of schema {doc.get('schema')!r}, "
            f"not {schema.name!r}"
        )
    database = OMSDatabase(
        schema,
        clock=clock,
        enable_procedural_interface=enable_procedural_interface,
        policy=doc.get("policy") or {},
    )
    for entry in doc["objects"]:
        entity = schema.entity(entry["type"])
        values = entity.validate_values(
            {k: _json_value(v) for k, v in entry["values"].items()
             if v is not None}
        )
        payload = (
            base64.b64decode(entry["payload"])
            if entry["payload"] is not None
            else None
        )
        obj = OMSObject(entry["oid"], entity, values)
        # intern through the blob store so payloads shared across objects
        # are deduplicated on restore too (delta chains are flattened by
        # the dump; dedup is by content, so restore keeps one copy each)
        database._attach_payload(obj, payload)
        database._objects[entry["oid"]] = obj
        database._allocator.observe(entry["oid"])
    for rel_name, pairs in doc["links"].items():
        schema.relationship(rel_name)  # validates existence
        for source_oid, target_oid in pairs:
            if not (database.exists(source_oid)
                    and database.exists(target_oid)):
                raise OMSError(
                    f"snapshot link {rel_name} references missing "
                    f"objects: {source_oid} -> {target_oid}"
                )
            # restore through the index-aware primitive so the forward
            # and reverse adjacency indexes are rebuilt alongside the
            # pair set
            database._link_add(rel_name, source_oid, target_oid)
    return database


def _json_value(value):
    """JSON round-trips tuples to lists; schema 'list' accepts both."""
    return value
