"""Snapshot persistence for the OMS database.

[Meck92] describes OMS as a persistent distributed kernel; for the
reproduction the property that matters is durability across framework
restarts.  ``dump_snapshot`` serialises the complete object graph
(objects, typed attributes, payloads, links) to JSON bytes;
``restore_snapshot`` rebuilds a database with identical object ids so
every stored JCF reference (including ``jcf_oid`` tags in FMCAD
properties) survives a restart.
"""

from __future__ import annotations

import base64
import hashlib
import json
from typing import Optional

from repro.clock import SimClock
from repro.errors import OMSError, QuarantinedError, SnapshotIntegrityError
from repro.faults import corruption_point
from repro.ids import sort_key
from repro.oms.database import OMSDatabase
from repro.oms.objects import OMSObject
from repro.oms.schema import Schema

FORMAT = "repro-oms-snapshot-1"


def dump_snapshot(database: OMSDatabase) -> bytes:
    """Serialise the whole database (schema-agnostic object graph).

    Objects and link pairs are ordered by the numeric
    :func:`repro.ids.sort_key`, so dumps stay deterministic (and diffs
    stay minimal) even past the millionth id of a kind, where
    lexicographic ordering would reshuffle everything.
    """
    objects = []
    quarantined = []
    for oid in sorted(database._objects, key=sort_key):
        obj = database._objects[oid]
        try:
            raw = obj.payload
        except QuarantinedError:
            # the payload was quarantined as unrepairable: persist the
            # loss explicitly rather than crash the save (or, worse,
            # serialise garbage).  Corrupt-but-not-quarantined payloads
            # still raise — scrub before saving.
            raw = None
            quarantined.append(oid)
        payload = (
            base64.b64encode(raw).decode("ascii")
            if raw is not None
            else None
        )
        objects.append({
            "oid": oid,
            "type": obj.type_name,
            "values": obj.values(),
            "payload": payload,
        })
    links = {
        rel_name: [
            list(pair)
            for pair in sorted(
                database.link_pairs(rel_name),
                key=lambda pair: (sort_key(pair[0]), sort_key(pair[1])),
            )
        ]
        for rel_name in database.relation_names()
    }
    doc = {
        "format": FORMAT,
        "schema": database.schema.name,
        "objects": objects,
        "links": links,
        "policy": database.policy,
    }
    if quarantined:
        doc["quarantined"] = quarantined
    # embedded whole-document checksum: computed over the canonical
    # serialisation of everything except the checksum key itself, so
    # restore can re-derive and compare it (see _verify_checksum)
    doc["sha256"] = _document_digest(doc)
    return corruption_point(
        "oms.snapshot",
        json.dumps(doc, sort_keys=True, indent=1).encode("utf-8"),
    )


def _document_digest(doc: dict) -> str:
    """Canonical digest of a snapshot document, checksum key excluded."""
    body = {k: v for k, v in doc.items() if k != "sha256"}
    return hashlib.sha256(
        json.dumps(body, sort_keys=True).encode("utf-8")
    ).hexdigest()


def verify_snapshot_bytes(data: bytes) -> Optional[str]:
    """Damage classification of serialised snapshot bytes, ``None`` if clean.

    Much cheaper than :func:`restore_snapshot` — parses and re-derives
    the embedded checksum without rebuilding a database, so the scrubber
    can sweep snapshot files at full speed.  Pre-checksum snapshots
    (no ``sha256`` key) that parse are reported clean.
    """
    try:
        doc = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return "torn-write"
    if not isinstance(doc, dict) or doc.get("format") != FORMAT:
        return "torn-write"
    recorded = doc.get("sha256")
    if recorded is not None and _document_digest(doc) != recorded:
        return "bit-rot"
    return None


def restore_snapshot(
    schema: Schema,
    data: bytes,
    clock: Optional[SimClock] = None,
    enable_procedural_interface: bool = False,
) -> OMSDatabase:
    """Rebuild a database from :func:`dump_snapshot` output.

    Object ids are preserved exactly; the id allocator is fast-forwarded
    so new objects never collide with restored ones.  The snapshot's
    schema name must match *schema* — restoring a JCF snapshot into an
    FMCAD-shaped schema is a hard error, not a best effort.
    """
    try:
        doc = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        # unparseable bytes are structural damage (a torn or truncated
        # write); SnapshotIntegrityError is still an OMSError for callers
        raise SnapshotIntegrityError(
            f"corrupt snapshot: {exc}",
            location="oms-snapshot",
            classification="torn-write",
        ) from exc
    if not isinstance(doc, dict):
        raise OMSError("not an OMS snapshot (not a JSON object)")
    if doc.get("format") != FORMAT:
        raise OMSError(
            f"not an OMS snapshot (format={doc.get('format')!r})"
        )
    recorded = doc.get("sha256")
    if recorded is not None and _document_digest(doc) != recorded:
        # the bytes parse but the content is not what was written —
        # a flipped bit inside a payload string lands here
        raise SnapshotIntegrityError(
            "snapshot content fails its embedded checksum",
            location="oms-snapshot",
            classification="bit-rot",
        )
    if doc.get("schema") != schema.name:
        raise OMSError(
            f"snapshot is of schema {doc.get('schema')!r}, "
            f"not {schema.name!r}"
        )
    database = OMSDatabase(
        schema,
        clock=clock,
        enable_procedural_interface=enable_procedural_interface,
        policy=doc.get("policy") or {},
    )
    for entry in doc["objects"]:
        entity = schema.entity(entry["type"])
        values = entity.validate_values(
            {k: _json_value(v) for k, v in entry["values"].items()
             if v is not None}
        )
        payload = (
            base64.b64decode(entry["payload"])
            if entry["payload"] is not None
            else None
        )
        obj = OMSObject(entry["oid"], entity, values)
        # intern through the blob store so payloads shared across objects
        # are deduplicated on restore too (delta chains are flattened by
        # the dump; dedup is by content, so restore keeps one copy each)
        database._attach_payload(obj, payload)
        database._objects[entry["oid"]] = obj
        database._allocator.observe(entry["oid"])
    for rel_name, pairs in doc["links"].items():
        schema.relationship(rel_name)  # validates existence
        for source_oid, target_oid in pairs:
            if not (database.exists(source_oid)
                    and database.exists(target_oid)):
                raise OMSError(
                    f"snapshot link {rel_name} references missing "
                    f"objects: {source_oid} -> {target_oid}"
                )
            # restore through the index-aware primitive so the forward
            # and reverse adjacency indexes are rebuilt alongside the
            # pair set
            database._link_add(rel_name, source_oid, target_oid)
    return database


def _json_value(value):
    """JSON round-trips tuples to lists; schema 'list' accepts both."""
    return value
