"""repro — reproduction of the JCF/FMCAD hybrid-framework paper (DATE 1995).

The package re-implements, in pure Python:

* :mod:`repro.oms` — the OMS object-oriented database kernel JCF stores
  metadata and design data in;
* :mod:`repro.jcf` — the JESSI-COMMON-Framework 3.0 (master framework);
* :mod:`repro.fmcad` — the "widespread ECAD framework" (slave framework);
* :mod:`repro.tools` — the three encapsulated FMCAD design tools
  (schematic entry, layout editor, digital simulator);
* :mod:`repro.core` — the paper's contribution: the hybrid JCF-FMCAD
  coupling (data-model mapping, encapsulation, hierarchy handling,
  consistency guard, combined desktop);
* :mod:`repro.workloads` — synthetic designs and scripted designer agents
  used by the evaluation benchmarks.

The most convenient entry point is :class:`repro.core.coupling.
HybridFramework`; see ``examples/quickstart.py``.
"""

__version__ = "1.0.0"

from repro.clock import CostModel, SimClock
from repro.ids import IdAllocator

__all__ = ["CostModel", "SimClock", "IdAllocator", "__version__"]
