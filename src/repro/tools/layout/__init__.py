"""Layout entry — the second encapsulated FMCAD tool.

Rectangle-based mask geometry on named layers, cell placement hierarchy
(the *physical* hierarchy, which may legitimately differ from the
schematic hierarchy — the non-isomorphism of Sections 2.3/3.3), a DRC
checker and a connectivity extractor used for cross-probing and LVS-lite
consistency checks.
"""

from repro.tools.layout.geometry import LAYERS, Rect
from repro.tools.layout.editor import Instance, Label, Layout, LayoutEditor
from repro.tools.layout.drc import DesignRules, DRCViolation, run_drc
from repro.tools.layout.extract import ExtractedNet, extract_connectivity, lvs_compare
from repro.tools.layout.metrics import LayoutMetrics, compute_metrics

__all__ = [
    "LAYERS",
    "Rect",
    "Instance",
    "Label",
    "Layout",
    "LayoutEditor",
    "DesignRules",
    "DRCViolation",
    "run_drc",
    "ExtractedNet",
    "extract_connectivity",
    "lvs_compare",
    "LayoutMetrics",
    "compute_metrics",
]
