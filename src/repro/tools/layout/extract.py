"""Connectivity extraction and LVS-lite comparison.

Touching geometry on the same layer is one electrical node; labels name
nodes.  ``lvs_compare`` checks extracted net names against a schematic's
net names — the consistency hook cross-probing and the coupling's guard
use to relate the physical view to the logical one.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Set

from repro.tools.layout.editor import Layout
from repro.tools.layout.geometry import Rect
from repro.tools.schematic.model import Schematic


class _UnionFind:
    """Tiny disjoint-set over integer indices."""

    def __init__(self, size: int) -> None:
        self._parent = list(range(size))

    def find(self, i: int) -> int:
        while self._parent[i] != i:
            self._parent[i] = self._parent[self._parent[i]]
            i = self._parent[i]
        return i

    def union(self, i: int, j: int) -> None:
        self._parent[self.find(i)] = self.find(j)


@dataclasses.dataclass
class ExtractedNet:
    """One electrical node: its geometry and the labels naming it."""

    index: int
    rects: List[Rect]
    names: Set[str]

    @property
    def name(self) -> Optional[str]:
        """The unique label name, or None when unnamed/conflicting."""
        return next(iter(self.names)) if len(self.names) == 1 else None


def extract_connectivity(
    layout: Layout,
    resolver: Optional[Callable[[str], Layout]] = None,
) -> List[ExtractedNet]:
    """Group (flattened) geometry into electrical nodes and name them.

    Only same-layer continuity is considered; vias/contacts join layers
    when a via rectangle touches shapes on the layers it connects
    (contact: diff/poly <-> metal1; via1: metal1 <-> metal2).
    """
    if layout.instances():
        rects = layout.flatten(resolver)
    else:
        rects = list(layout.rects)
    uf = _UnionFind(len(rects))
    for i, first in enumerate(rects):
        for j in range(i + 1, len(rects)):
            second = rects[j]
            if first.connected_to(second):
                uf.union(i, j)
            elif _via_joins(first, second) or _via_joins(second, first):
                uf.union(i, j)

    groups: Dict[int, List[int]] = {}
    for i in range(len(rects)):
        groups.setdefault(uf.find(i), []).append(i)

    nets: List[ExtractedNet] = []
    for index, (root, members) in enumerate(sorted(groups.items())):
        group_rects = [rects[i] for i in members]
        names: Set[str] = set()
        for label in layout.labels:
            for rect in group_rects:
                if (
                    rect.layer == label.layer
                    and rect.contains_point(label.x, label.y)
                ):
                    names.add(label.text)
        nets.append(ExtractedNet(index=index, rects=group_rects, names=names))
    return nets


_VIA_CONNECTS = {
    "contact": ("diff", "poly", "metal1"),
    "via1": ("metal1", "metal2"),
}


def _via_joins(via: Rect, other: Rect) -> bool:
    layers = _VIA_CONNECTS.get(via.layer)
    return bool(layers) and other.layer in layers and via.touches(other)


@dataclasses.dataclass(frozen=True)
class LVSReport:
    """Outcome of the layout-vs-schematic name comparison."""

    matched: List[str]
    missing_in_layout: List[str]
    unknown_in_layout: List[str]

    @property
    def clean(self) -> bool:
        return not self.missing_in_layout and not self.unknown_in_layout


def lvs_compare(
    layout: Layout,
    schematic: Schematic,
    resolver: Optional[Callable[[str], Layout]] = None,
) -> LVSReport:
    """Compare extracted net names with the schematic's net names."""
    extracted_names = {
        net.name
        for net in extract_connectivity(layout, resolver)
        if net.name is not None
    }
    schematic_names = {net.name for net in schematic.nets()}
    return LVSReport(
        matched=sorted(extracted_names & schematic_names),
        missing_in_layout=sorted(schematic_names - extracted_names),
        unknown_in_layout=sorted(extracted_names - schematic_names),
    )
