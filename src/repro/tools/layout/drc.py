"""Design-rule checking (DRC-lite).

Per-layer minimum width and minimum spacing.  The flow can require a
clean DRC before a layout version may be checked in, giving the forced
flows of Section 3.5 a physical quality gate too.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from repro.tools.layout.editor import Layout
from repro.tools.layout.geometry import LAYERS, Rect


@dataclasses.dataclass(frozen=True)
class DesignRules:
    """Minimum feature sizes per layer (database units)."""

    min_width: Dict[str, int] = dataclasses.field(
        default_factory=lambda: {
            "nwell": 6,
            "diff": 3,
            "poly": 2,
            "contact": 2,
            "metal1": 3,
            "via1": 2,
            "metal2": 4,
        }
    )
    min_spacing: Dict[str, int] = dataclasses.field(
        default_factory=lambda: {
            "nwell": 6,
            "diff": 3,
            "poly": 3,
            "contact": 2,
            "metal1": 3,
            "via1": 3,
            "metal2": 4,
        }
    )


@dataclasses.dataclass(frozen=True)
class DRCViolation:
    """One rule violation."""

    rule: str           # "width" or "spacing"
    layer: str
    detail: str

    def __str__(self) -> str:
        return f"{self.rule}[{self.layer}]: {self.detail}"


def run_drc(
    layout: Layout,
    rules: Optional[DesignRules] = None,
    resolver: Optional[Callable[[str], Layout]] = None,
) -> List[DRCViolation]:
    """Check the (flattened) layout against *rules*.

    Hierarchical layouts need a *resolver* so placed subcells are checked
    in context; flat layouts work without one.
    """
    rules = rules or DesignRules()
    if layout.instances():
        rects = layout.flatten(resolver)
    else:
        rects = list(layout.rects)
    violations: List[DRCViolation] = []
    violations.extend(_check_widths(rects, rules))
    violations.extend(_check_spacing(rects, rules))
    return violations


def _check_widths(rects: List[Rect], rules: DesignRules) -> List[DRCViolation]:
    violations = []
    for rect in rects:
        minimum = rules.min_width.get(rect.layer)
        if minimum is not None and rect.width < minimum:
            violations.append(
                DRCViolation(
                    rule="width",
                    layer=rect.layer,
                    detail=(
                        f"rect {rect.bbox} width {rect.width} < {minimum}"
                    ),
                )
            )
    return violations


def _check_spacing(rects: List[Rect], rules: DesignRules) -> List[DRCViolation]:
    violations = []
    by_layer: Dict[str, List[Rect]] = {layer: [] for layer in LAYERS}
    for rect in rects:
        by_layer[rect.layer].append(rect)
    for layer, group in by_layer.items():
        minimum = rules.min_spacing.get(layer)
        if minimum is None:
            continue
        for i, first in enumerate(group):
            for second in group[i + 1:]:
                if first.touches(second):
                    continue  # same net geometry, not a spacing issue
                gap = first.distance_to(second)
                if gap < minimum:
                    violations.append(
                        DRCViolation(
                            rule="spacing",
                            layer=layer,
                            detail=(
                                f"rects {first.bbox} and {second.bbox} "
                                f"gap {gap} < {minimum}"
                            ),
                        )
                    )
    return violations
