"""Layout metrics: area, layer utilisation, wirelength estimates.

Complements DRC and extraction with the quantities floorplanning
discussions revolve around; the design consultant and reports can cite
them without re-deriving geometry.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from repro.tools.layout.editor import Layout
from repro.tools.layout.extract import extract_connectivity
from repro.tools.layout.geometry import Rect


@dataclasses.dataclass(frozen=True)
class LayoutMetrics:
    """Summary numbers for one (flattened) layout."""

    cell_name: str
    bounding_box: Tuple[int, int, int, int]
    total_area: int
    drawn_area_by_layer: Dict[str, int]
    rect_count: int
    net_count: int
    #: per named net: half-perimeter wirelength of its geometry bbox
    hpwl_by_net: Dict[str, int]

    @property
    def utilisation_by_layer(self) -> Dict[str, float]:
        """Drawn area over bounding-box area, per layer (0..1+)."""
        if self.total_area == 0:
            return {layer: 0.0 for layer in self.drawn_area_by_layer}
        return {
            layer: drawn / self.total_area
            for layer, drawn in self.drawn_area_by_layer.items()
        }

    @property
    def total_hpwl(self) -> int:
        return sum(self.hpwl_by_net.values())


def _bbox_of(rects: List[Rect]) -> Tuple[int, int, int, int]:
    return (
        min(r.x1 for r in rects),
        min(r.y1 for r in rects),
        max(r.x2 for r in rects),
        max(r.y2 for r in rects),
    )


def compute_metrics(
    layout: Layout,
    resolver: Optional[Callable[[str], Layout]] = None,
) -> LayoutMetrics:
    """Measure the layout (flattening placed subcells when present)."""
    if layout.instances():
        rects = layout.flatten(resolver)
    else:
        rects = list(layout.rects)
    if not rects:
        return LayoutMetrics(
            cell_name=layout.cell_name,
            bounding_box=(0, 0, 0, 0),
            total_area=0,
            drawn_area_by_layer={},
            rect_count=0,
            net_count=0,
            hpwl_by_net={},
        )
    x1, y1, x2, y2 = _bbox_of(rects)
    drawn: Dict[str, int] = {}
    for rect in rects:
        drawn[rect.layer] = drawn.get(rect.layer, 0) + rect.area

    hpwl: Dict[str, int] = {}
    nets = extract_connectivity(layout, resolver=resolver)
    for net in nets:
        if net.name is None:
            continue
        nx1, ny1, nx2, ny2 = _bbox_of(net.rects)
        hpwl[net.name] = (nx2 - nx1) + (ny2 - ny1)

    return LayoutMetrics(
        cell_name=layout.cell_name,
        bounding_box=(x1, y1, x2, y2),
        total_area=(x2 - x1) * (y2 - y1),
        drawn_area_by_layer=drawn,
        rect_count=len(rects),
        net_count=len(nets),
        hpwl_by_net=hpwl,
    )
