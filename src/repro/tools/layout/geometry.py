"""Rectangles and layers.

Coordinates are integers in layout database units; rectangles are
axis-aligned and normalised (x1 < x2, y1 < y2).
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from repro.errors import LayoutError

#: The process layers the layout tool knows.
LAYERS = (
    "nwell",
    "diff",
    "poly",
    "contact",
    "metal1",
    "via1",
    "metal2",
)


@dataclasses.dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle on one layer."""

    layer: str
    x1: int
    y1: int
    x2: int
    y2: int

    def __post_init__(self) -> None:
        if self.layer not in LAYERS:
            raise LayoutError(
                f"unknown layer {self.layer!r}; known: {LAYERS}"
            )
        if self.x1 >= self.x2 or self.y1 >= self.y2:
            raise LayoutError(
                f"degenerate rectangle ({self.x1},{self.y1})-"
                f"({self.x2},{self.y2}); corners must be ordered"
            )

    # -- measures -----------------------------------------------------------

    @property
    def width(self) -> int:
        """The smaller dimension (what min-width rules constrain)."""
        return min(self.x2 - self.x1, self.y2 - self.y1)

    @property
    def area(self) -> int:
        return (self.x2 - self.x1) * (self.y2 - self.y1)

    @property
    def bbox(self) -> Tuple[int, int, int, int]:
        return (self.x1, self.y1, self.x2, self.y2)

    # -- relations ------------------------------------------------------------

    def overlaps(self, other: "Rect") -> bool:
        """True when interiors intersect (same layer not required)."""
        return (
            self.x1 < other.x2
            and other.x1 < self.x2
            and self.y1 < other.y2
            and other.y1 < self.y2
        )

    def touches(self, other: "Rect") -> bool:
        """True when rectangles share interior or boundary."""
        return (
            self.x1 <= other.x2
            and other.x1 <= self.x2
            and self.y1 <= other.y2
            and other.y1 <= self.y2
        )

    def connected_to(self, other: "Rect") -> bool:
        """Electrical continuity: same layer and touching."""
        return self.layer == other.layer and self.touches(other)

    def contains_point(self, x: int, y: int) -> bool:
        return self.x1 <= x <= self.x2 and self.y1 <= y <= self.y2

    def distance_to(self, other: "Rect") -> int:
        """Chebyshev-style gap: 0 when touching or overlapping."""
        dx = max(other.x1 - self.x2, self.x1 - other.x2, 0)
        dy = max(other.y1 - self.y2, self.y1 - other.y2, 0)
        if dx == 0 and dy == 0:
            return 0
        if dx == 0:
            return dy
        if dy == 0:
            return dx
        return max(dx, dy)

    def translated(self, dx: int, dy: int) -> "Rect":
        return Rect(self.layer, self.x1 + dx, self.y1 + dy,
                    self.x2 + dx, self.y2 + dy)
