"""The layout data model and entry tool."""

from __future__ import annotations

import dataclasses
import json
from typing import Callable, Dict, List, Optional

from repro.errors import LayoutError
from repro.tools.layout.geometry import Rect


@dataclasses.dataclass(frozen=True)
class Label:
    """A text label naming the geometry under a point (net name)."""

    text: str
    layer: str
    x: int
    y: int


@dataclasses.dataclass(frozen=True)
class Instance:
    """A placement of another cell's layout at an offset.

    Instances form the *physical* hierarchy of the design.
    """

    name: str
    cellref: str
    dx: int
    dy: int


class Layout:
    """Mask geometry of one cell: rectangles, labels, subcell placements."""

    def __init__(self, cell_name: str) -> None:
        self.cell_name = cell_name
        self.rects: List[Rect] = []
        self.labels: List[Label] = []
        self._instances: Dict[str, Instance] = {}

    # -- construction ----------------------------------------------------------

    def add_rect(self, rect: Rect) -> Rect:
        self.rects.append(rect)
        return rect

    def add_label(self, label: Label) -> Label:
        self.labels.append(label)
        return label

    def place(self, instance: Instance) -> Instance:
        if instance.name in self._instances:
            raise LayoutError(f"duplicate instance {instance.name!r}")
        if instance.cellref == self.cell_name:
            raise LayoutError(
                f"cell {self.cell_name!r} cannot place itself"
            )
        self._instances[instance.name] = instance
        return instance

    def unplace(self, name: str) -> None:
        if name not in self._instances:
            raise LayoutError(f"no instance {name!r}")
        del self._instances[name]

    def instances(self) -> List[Instance]:
        return [self._instances[name] for name in sorted(self._instances)]

    def instance(self, name: str) -> Instance:
        try:
            return self._instances[name]
        except KeyError:
            raise LayoutError(f"no instance {name!r}") from None

    def subcell_refs(self) -> List[str]:
        """Referenced subcell names — the physical hierarchy edge list."""
        return sorted({inst.cellref for inst in self._instances.values()})

    # -- flattening ----------------------------------------------------------------

    def flatten(
        self,
        resolver: Optional[Callable[[str], "Layout"]] = None,
        max_depth: int = 32,
    ) -> List[Rect]:
        """All rectangles including placed subcells, translated into place."""
        return self._flatten(resolver, 0, max_depth, 0, 0)

    def _flatten(
        self,
        resolver: Optional[Callable[[str], "Layout"]],
        depth: int,
        max_depth: int,
        dx: int,
        dy: int,
    ) -> List[Rect]:
        if depth > max_depth:
            raise LayoutError(
                f"layout hierarchy deeper than {max_depth}; recursion?"
            )
        flat = [rect.translated(dx, dy) for rect in self.rects]
        for instance in self.instances():
            if resolver is None:
                raise LayoutError(
                    f"layout {self.cell_name!r} places "
                    f"{instance.cellref!r} but no resolver was supplied"
                )
            child = resolver(instance.cellref)
            flat.extend(
                child._flatten(
                    resolver, depth + 1, max_depth,
                    dx + instance.dx, dy + instance.dy,
                )
            )
        return flat

    # -- serialisation (the 'layout' viewtype file format) ----------------------------

    def to_bytes(self) -> bytes:
        doc = {
            "format": "repro-layout-1",
            "cell": self.cell_name,
            "rects": [
                {"layer": r.layer, "x1": r.x1, "y1": r.y1,
                 "x2": r.x2, "y2": r.y2}
                for r in self.rects
            ],
            "labels": [
                {"text": l.text, "layer": l.layer, "x": l.x, "y": l.y}
                for l in self.labels
            ],
            "instances": [
                {"name": i.name, "cellref": i.cellref,
                 "dx": i.dx, "dy": i.dy}
                for i in self.instances()
            ],
        }
        return json.dumps(doc, sort_keys=True, indent=1).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Layout":
        try:
            doc = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise LayoutError(f"corrupt layout file: {exc}") from exc
        if doc.get("format") != "repro-layout-1":
            raise LayoutError(
                f"not a layout file (format={doc.get('format')!r})"
            )
        layout = cls(doc["cell"])
        for entry in doc["rects"]:
            layout.add_rect(
                Rect(entry["layer"], entry["x1"], entry["y1"],
                     entry["x2"], entry["y2"])
            )
        for entry in doc["labels"]:
            layout.add_label(
                Label(entry["text"], entry["layer"], entry["x"], entry["y"])
            )
        for entry in doc["instances"]:
            layout.place(
                Instance(entry["name"], entry["cellref"],
                         entry["dx"], entry["dy"])
            )
        return layout


class LayoutEditor:
    """Stateful layout entry tool, mirroring the schematic editor's shape."""

    TOOL_NAME = "layout_editor"

    def __init__(self, layout: Optional[Layout] = None) -> None:
        self.layout = layout or Layout("untitled")
        self.dirty = layout is None
        self.op_log: List[str] = []

    @classmethod
    def open_bytes(cls, data: bytes) -> "LayoutEditor":
        editor = cls(Layout.from_bytes(data))
        editor.dirty = False
        return editor

    def save_bytes(self) -> bytes:
        data = self.layout.to_bytes()
        self.dirty = False
        self._log("save")
        return data

    def new_design(self, cell_name: str) -> None:
        self.layout = Layout(cell_name)
        self.dirty = True
        self._log(f"new {cell_name}")

    def load(self, layout: Layout) -> None:
        """Replace the working design with *layout* (import/paste)."""
        self.layout = layout
        self.dirty = True
        self._log(f"load {layout.cell_name}")

    def draw_rect(
        self, layer: str, x1: int, y1: int, x2: int, y2: int
    ) -> Rect:
        rect = self.layout.add_rect(Rect(layer, x1, y1, x2, y2))
        self.dirty = True
        self._log(f"rect {layer} ({x1},{y1})-({x2},{y2})")
        return rect

    def add_label(self, text: str, layer: str, x: int, y: int) -> Label:
        label = self.layout.add_label(Label(text, layer, x, y))
        self.dirty = True
        self._log(f"label {text}@{layer}({x},{y})")
        return label

    def place_cell(self, name: str, cellref: str, dx: int, dy: int) -> Instance:
        instance = self.layout.place(Instance(name, cellref, dx, dy))
        self.dirty = True
        self._log(f"place {name} -> {cellref} @({dx},{dy})")
        return instance

    def remove_instance(self, name: str) -> None:
        self.layout.unplace(name)
        self.dirty = True
        self._log(f"unplace {name}")

    def _log(self, entry: str) -> None:
        self.op_log.append(entry)
