"""The three FMCAD design tools the 1995 encapsulation scenario contains.

Section 2.4 lists them: a schematic entry tool, a layout entry tool and a
digital simulator.  Each is implemented as a genuine tool (data model,
editor operations, file format) so the coupling layer has real design
data to version, stage, derive and keep consistent.
"""

from repro.tools.schematic import Schematic, SchematicEditor
from repro.tools.layout import Layout, LayoutEditor
from repro.tools.simulator import LogicSimulator

__all__ = [
    "Schematic",
    "SchematicEditor",
    "Layout",
    "LayoutEditor",
    "LogicSimulator",
]
