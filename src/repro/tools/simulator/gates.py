"""Gate models.

Combinational primitives with pessimistic X-propagation (an unknown input
makes the output unknown unless a controlling value decides it), plus a
rising-edge D flip-flop for sequential designs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence, Tuple

from repro.errors import SimulationError
from repro.tools.simulator.signals import Logic


def _and(values: Sequence[Logic]) -> Logic:
    if any(v is Logic.ZERO for v in values):
        return Logic.ZERO  # controlling value
    if all(v is Logic.ONE for v in values):
        return Logic.ONE
    return Logic.X


def _or(values: Sequence[Logic]) -> Logic:
    if any(v is Logic.ONE for v in values):
        return Logic.ONE  # controlling value
    if all(v is Logic.ZERO for v in values):
        return Logic.ZERO
    return Logic.X


def _xor(values: Sequence[Logic]) -> Logic:
    if not all(v.is_known for v in values):
        return Logic.X
    ones = sum(1 for v in values if v is Logic.ONE)
    return Logic.from_bool(ones % 2 == 1)


def _invert(value: Logic) -> Logic:
    if value is Logic.ONE:
        return Logic.ZERO
    if value is Logic.ZERO:
        return Logic.ONE
    return Logic.X


def _buf(values: Sequence[Logic]) -> Logic:
    if len(values) != 1:
        raise SimulationError(f"BUF expects 1 input, got {len(values)}")
    value = values[0]
    return value if value.is_known else Logic.X


#: gate type -> (min_inputs, max_inputs, evaluator)
GATE_TYPES: Dict[str, Tuple[int, int, object]] = {
    "AND": (2, 8, _and),
    "OR": (2, 8, _or),
    "NAND": (2, 8, lambda vs: _invert(_and(vs))),
    "NOR": (2, 8, lambda vs: _invert(_or(vs))),
    "XOR": (2, 8, _xor),
    "XNOR": (2, 8, lambda vs: _invert(_xor(vs))),
    "NOT": (1, 1, lambda vs: _invert(vs[0])),
    "BUF": (1, 1, _buf),
    "DFF": (2, 2, None),  # sequential; handled by the engine
}

#: default transport delay per gate type (simulator time units)
DEFAULT_DELAYS: Dict[str, int] = {
    "AND": 2,
    "OR": 2,
    "NAND": 1,
    "NOR": 1,
    "XOR": 3,
    "XNOR": 3,
    "NOT": 1,
    "BUF": 1,
    "DFF": 2,
}


@dataclasses.dataclass(frozen=True)
class Gate:
    """One netlist primitive.

    For a DFF, ``inputs`` is ``(d, clk)`` and the output updates with the
    latched D value on each rising clock edge.
    """

    name: str
    gate_type: str
    inputs: Tuple[str, ...]
    output: str
    delay: int = -1  # -1 -> use the type default

    def __post_init__(self) -> None:
        if self.gate_type not in GATE_TYPES:
            raise SimulationError(
                f"gate {self.name!r}: unknown type {self.gate_type!r}"
            )
        lo, hi, _ = GATE_TYPES[self.gate_type]
        if not lo <= len(self.inputs) <= hi:
            raise SimulationError(
                f"gate {self.name!r} ({self.gate_type}): expected "
                f"{lo}..{hi} inputs, got {len(self.inputs)}"
            )
        if not self.output:
            raise SimulationError(f"gate {self.name!r}: missing output net")

    @property
    def effective_delay(self) -> int:
        return self.delay if self.delay >= 0 else DEFAULT_DELAYS[self.gate_type]

    @property
    def is_sequential(self) -> bool:
        return self.gate_type == "DFF"


def evaluate_gate(gate: Gate, input_values: Sequence[Logic]) -> Logic:
    """Combinationally evaluate *gate* for *input_values*."""
    if gate.is_sequential:
        raise SimulationError(
            f"gate {gate.name!r} is sequential; the engine latches it"
        )
    _, _, evaluator = GATE_TYPES[gate.gate_type]
    return evaluator(list(input_values))  # type: ignore[operator]
