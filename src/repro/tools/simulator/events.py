"""The simulator's event queue."""

from __future__ import annotations

import dataclasses
import heapq
from typing import List, Optional, Tuple

from repro.tools.simulator.signals import Logic


@dataclasses.dataclass(frozen=True, order=True)
class Event:
    """A scheduled value change: *net* takes *value* at *time*.

    ``sequence`` breaks ties so same-time events apply in schedule order
    (deterministic simulation).
    """

    time: int
    sequence: int
    net: str = dataclasses.field(compare=False)
    value: Logic = dataclasses.field(compare=False)


class EventQueue:
    """A time-ordered queue of pending events."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._sequence = 0

    def schedule(self, time: int, net: str, value: Logic) -> Event:
        """Enqueue a value change at absolute *time*."""
        if time < 0:
            raise ValueError(f"event time must be >= 0, got {time}")
        self._sequence += 1
        event = Event(time=time, sequence=self._sequence, net=net, value=value)
        heapq.heappush(self._heap, event)
        return event

    def pop_next(self) -> Optional[Event]:
        """Remove and return the earliest event, or None when empty."""
        if not self._heap:
            return None
        return heapq.heappop(self._heap)

    def pop_simultaneous(self) -> Tuple[int, List[Event]]:
        """Remove all events sharing the earliest timestamp.

        Returns ``(time, events)``; events keep schedule order.  Raises
        IndexError on an empty queue.
        """
        if not self._heap:
            raise IndexError("empty event queue")
        first = heapq.heappop(self._heap)
        batch = [first]
        while self._heap and self._heap[0].time == first.time:
            batch.append(heapq.heappop(self._heap))
        return first.time, batch

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def next_time(self) -> Optional[int]:
        return self._heap[0].time if self._heap else None
