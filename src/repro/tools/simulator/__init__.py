"""Digital simulator — the third encapsulated FMCAD tool.

An event-driven, four-valued (0/1/X/Z) gate-level logic simulator with
per-gate transport delays, stimulus generators and waveform capture.  The
flow's ``digital_simulation`` activity runs netlists produced by the
schematic tool and gates layout entry on a passing result.
"""

from repro.tools.simulator.signals import Logic, resolve_bus
from repro.tools.simulator.events import Event, EventQueue
from repro.tools.simulator.gates import GATE_TYPES, Gate, evaluate_gate
from repro.tools.simulator.engine import LogicSimulator, Netlist, SimulationResult
from repro.tools.simulator.stimulus import Stimulus, clock_stimulus, vector_stimulus
from repro.tools.simulator.testbench import Testbench, TestbenchReport
from repro.tools.simulator.vcd import dump_vcd, parse_vcd_changes
from repro.tools.simulator.timing import TimingReport, analyze_timing, settle_bound
from repro.tools.simulator.faults import (
    FaultSimReport,
    StuckFault,
    coverage_of_testbench,
    enumerate_faults,
    run_fault_simulation,
)

__all__ = [
    "Logic",
    "resolve_bus",
    "Event",
    "EventQueue",
    "GATE_TYPES",
    "Gate",
    "evaluate_gate",
    "LogicSimulator",
    "Netlist",
    "SimulationResult",
    "Stimulus",
    "clock_stimulus",
    "vector_stimulus",
    "Testbench",
    "TestbenchReport",
    "dump_vcd",
    "parse_vcd_changes",
    "TimingReport",
    "analyze_timing",
    "settle_bound",
    "FaultSimReport",
    "StuckFault",
    "coverage_of_testbench",
    "enumerate_faults",
    "run_fault_simulation",
]
