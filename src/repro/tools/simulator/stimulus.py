"""Stimulus construction helpers."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

from repro.errors import SimulationError
from repro.tools.simulator.signals import Logic


@dataclasses.dataclass
class Stimulus:
    """A growing list of ``(time, net, value)`` drive events."""

    events: List[Tuple[int, str, Logic]] = dataclasses.field(
        default_factory=list
    )

    def drive(self, time: int, net: str, value: Logic) -> "Stimulus":
        """Schedule *net* := *value* at *time*; chainable."""
        if time < 0:
            raise SimulationError(f"stimulus time must be >= 0, got {time}")
        self.events.append((time, net, value))
        return self

    def drive_bits(self, time: int, assignments: Dict[str, str]) -> "Stimulus":
        """Drive several nets at once from ``{"a": "1", "b": "0"}``."""
        for net, bit in sorted(assignments.items()):
            self.drive(time, net, Logic.from_str(bit))
        return self

    def extend(self, other: "Stimulus") -> "Stimulus":
        self.events.extend(other.events)
        return self

    @property
    def horizon(self) -> int:
        """The last stimulus time (0 when empty)."""
        return max((t for t, _, _ in self.events), default=0)


def clock_stimulus(
    net: str, period: int, cycles: int, start: int = 0
) -> Stimulus:
    """A square clock on *net*: low at *start*, rising every *period*."""
    if period < 2:
        raise SimulationError(f"clock period must be >= 2, got {period}")
    stim = Stimulus()
    half = period // 2
    time = start
    stim.drive(time, net, Logic.ZERO)
    for _ in range(cycles):
        stim.drive(time + half, net, Logic.ONE)
        stim.drive(time + period, net, Logic.ZERO)
        time += period
    return stim


def vector_stimulus(
    nets: Sequence[str], vectors: Sequence[str], interval: int, start: int = 0
) -> Stimulus:
    """Apply test vectors: each string has one bit per net, every *interval*."""
    stim = Stimulus()
    time = start
    for vector in vectors:
        if len(vector) != len(nets):
            raise SimulationError(
                f"vector {vector!r} does not match {len(nets)} nets"
            )
        for net, bit in zip(nets, vector):
            stim.drive(time, net, Logic.from_str(bit))
        time += interval
    return stim
