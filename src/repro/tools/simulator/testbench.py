"""Testbenches: run a netlist against expectations and report pass/fail.

The flow's ``digital_simulation`` activity succeeds or fails based on a
testbench verdict, which is what lets forced flows act as a quality gate
(Section 3.5).
"""

from __future__ import annotations

import dataclasses
import json
from typing import List, Optional

from repro.errors import SimulationError
from repro.tools.simulator.engine import LogicSimulator, Netlist
from repro.tools.simulator.signals import Logic
from repro.tools.simulator.stimulus import Stimulus


@dataclasses.dataclass(frozen=True)
class Check:
    """Expect *net* to equal *value* at *time*."""

    time: int
    net: str
    expected: Logic


@dataclasses.dataclass
class TestbenchReport:
    """Outcome of one testbench run."""

    __test__ = False  # not a pytest test class despite the name

    netlist_name: str
    passed: bool
    failures: List[str]
    checks_run: int
    events_processed: int
    #: stuck-at fault coverage of the stimulus, when graded (0..1)
    fault_coverage: Optional[float] = None

    def to_bytes(self) -> bytes:
        """Serialise as the 'simulation' viewtype's result file."""
        doc = {
            "format": "repro-simreport-1",
            "netlist": self.netlist_name,
            "passed": self.passed,
            "failures": self.failures,
            "checks_run": self.checks_run,
            "events_processed": self.events_processed,
            "fault_coverage": self.fault_coverage,
        }
        return json.dumps(doc, sort_keys=True, indent=1).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "TestbenchReport":
        try:
            doc = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SimulationError(f"corrupt simulation report: {exc}") from exc
        if doc.get("format") != "repro-simreport-1":
            raise SimulationError(
                f"not a simulation report (format={doc.get('format')!r})"
            )
        return cls(
            netlist_name=doc["netlist"],
            passed=doc["passed"],
            failures=list(doc["failures"]),
            checks_run=doc["checks_run"],
            events_processed=doc["events_processed"],
            fault_coverage=doc.get("fault_coverage"),
        )


class Testbench:
    """Stimulus + expected values for one netlist."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self.stimulus = Stimulus()
        self.checks: List[Check] = []

    def drive(self, time: int, net: str, value: str) -> "Testbench":
        self.stimulus.drive(time, net, Logic.from_str(value))
        return self

    def expect(self, time: int, net: str, value: str) -> "Testbench":
        """Register a check; *net* must exist in the netlist."""
        if net not in self.netlist.nets():
            raise SimulationError(f"expect on unknown net {net!r}")
        self.checks.append(Check(time, net, Logic.from_str(value)))
        return self

    def run(self, duration: Optional[int] = None) -> TestbenchReport:
        """Simulate and evaluate all checks."""
        horizon = max(
            [self.stimulus.horizon]
            + [check.time for check in self.checks]
        ) + 100
        simulator = LogicSimulator(self.netlist)
        result = simulator.run(
            self.stimulus.events, duration=duration or horizon
        )
        failures = []
        for check in sorted(self.checks, key=lambda c: (c.time, c.net)):
            actual = result.value_at(check.net, check.time)
            if actual is not check.expected:
                failures.append(
                    f"t={check.time} net={check.net}: expected "
                    f"{check.expected}, got {actual}"
                )
        return TestbenchReport(
            netlist_name=self.netlist.name,
            passed=not failures,
            failures=failures,
            checks_run=len(self.checks),
            events_processed=result.events_processed,
        )
