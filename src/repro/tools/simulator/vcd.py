"""VCD (Value Change Dump) export of simulation results.

The IEEE-1364 VCD text format is the lingua franca of waveform viewers;
dumping it lets the encapsulated simulator's results leave the framework
as ordinary design files (one more thing to version and derive).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.tools.simulator.engine import SimulationResult
from repro.tools.simulator.signals import Logic

#: printable identifier characters per the VCD grammar
_ID_CHARS = (
    "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    "[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~"
)


def _identifier(index: int) -> str:
    """The index-th VCD short identifier (base-94 little-endian)."""
    if index < 0:
        raise SimulationError(f"negative identifier index: {index}")
    digits = []
    while True:
        digits.append(_ID_CHARS[index % len(_ID_CHARS)])
        index //= len(_ID_CHARS)
        if index == 0:
            break
        index -= 1  # bijective numeration: 'aa' follows the last single
    return "".join(digits)


def _vcd_value(value: Logic) -> str:
    return {
        Logic.ZERO: "0",
        Logic.ONE: "1",
        Logic.X: "x",
        Logic.Z: "z",
    }[value]


def dump_vcd(
    result: SimulationResult,
    nets: Optional[List[str]] = None,
    timescale: str = "1ns",
    date: str = "1995-03-06",
) -> str:
    """Render *result* as a VCD document (string).

    *nets* restricts the dump (default: every net of the run, sorted).
    The ``$date`` defaults to the paper's conference week rather than
    wall-clock time so dumps are reproducible byte-for-byte.
    """
    selected = sorted(nets) if nets is not None else sorted(result.waveforms)
    unknown = [net for net in selected if net not in result.waveforms]
    if unknown:
        raise SimulationError(f"nets not in the simulation: {unknown}")

    identifiers: Dict[str, str] = {
        net: _identifier(i) for i, net in enumerate(selected)
    }
    lines: List[str] = [
        f"$date {date} $end",
        f"$version repro digital_simulator $end",
        f"$timescale {timescale} $end",
        f"$scope module {result.netlist_name} $end",
    ]
    for net in selected:
        lines.append(f"$var wire 1 {identifiers[net]} {net} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    # merge all per-net change lists into one global timeline
    timeline: Dict[int, List[str]] = {}
    for net in selected:
        for time, value in result.waveforms[net]:
            timeline.setdefault(time, []).append(
                f"{_vcd_value(value)}{identifiers[net]}"
            )
    lines.append("$dumpvars")
    first = True
    for time in sorted(timeline):
        if time == 0 and first:
            lines.extend(timeline[0])
            lines.append("$end")
            first = False
            continue
        if first:
            lines.append("$end")
            first = False
        lines.append(f"#{time}")
        lines.extend(timeline[time])
    if first:
        lines.append("$end")
    lines.append(f"#{result.end_time}")
    return "\n".join(lines) + "\n"


def parse_vcd_changes(text: str) -> Dict[str, List[tuple]]:
    """Minimal VCD reader: net -> [(time, value string), ...].

    Supports exactly the subset :func:`dump_vcd` emits; used by tests and
    by downstream consumers that want to round-trip waveforms.
    """
    names: Dict[str, str] = {}
    changes: Dict[str, List[tuple]] = {}
    time = 0
    in_definitions = True
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if in_definitions:
            if line.startswith("$var"):
                parts = line.split()
                if len(parts) < 6:
                    raise SimulationError(f"malformed $var line: {line!r}")
                identifier, net = parts[3], parts[4]
                names[identifier] = net
                changes[net] = []
            elif line.startswith("$enddefinitions"):
                in_definitions = False
            continue
        if line.startswith("#"):
            time = int(line[1:])
        elif line[0] in "01xz":
            identifier = line[1:]
            if identifier in names:
                changes[names[identifier]].append((time, line[0]))
        # $dumpvars / $end markers need no action
    return changes
