"""The event-driven simulation engine."""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SimulationError
from repro.tools.simulator.events import EventQueue
from repro.tools.simulator.gates import Gate, evaluate_gate
from repro.tools.simulator.signals import Logic


class Netlist:
    """A flat gate-level netlist: named nets, primary ports, gates."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self._gates: Dict[str, Gate] = {}
        self._driver_of: Dict[str, str] = {}
        #: net -> gates reading it, appended by add_gate; sorted lazily so
        #: readers_of() is O(degree), not a rescan of every gate
        self._fanout: Dict[str, List[Gate]] = {}
        self._fanout_dirty: Set[str] = set()
        self._nets_cache: Optional[List[str]] = None

    def add_input(self, net: str) -> None:
        if net in self.inputs:
            raise SimulationError(f"duplicate primary input {net!r}")
        if net in self._driver_of:
            raise SimulationError(f"primary input {net!r} is gate-driven")
        self.inputs.append(net)
        self._nets_cache = None

    def add_output(self, net: str) -> None:
        if net in self.outputs:
            raise SimulationError(f"duplicate primary output {net!r}")
        self.outputs.append(net)
        self._nets_cache = None

    def add_gate(self, gate: Gate) -> Gate:
        if gate.name in self._gates:
            raise SimulationError(f"duplicate gate {gate.name!r}")
        if gate.output in self._driver_of:
            raise SimulationError(
                f"net {gate.output!r} already driven by "
                f"{self._driver_of[gate.output]!r}"
            )
        if gate.output in self.inputs:
            raise SimulationError(
                f"gate {gate.name!r} drives primary input {gate.output!r}"
            )
        self._gates[gate.name] = gate
        self._driver_of[gate.output] = gate.name
        # dict.fromkeys dedups a net wired to several pins of one gate —
        # the gate must still appear once in that net's fanout
        for net in dict.fromkeys(gate.inputs):
            self._fanout.setdefault(net, []).append(gate)
            self._fanout_dirty.add(net)
        self._nets_cache = None
        return gate

    def gates(self) -> List[Gate]:
        return [self._gates[name] for name in sorted(self._gates)]

    def gate(self, name: str) -> Gate:
        try:
            return self._gates[name]
        except KeyError:
            raise SimulationError(f"no gate {name!r}") from None

    def nets(self) -> List[str]:
        if self._nets_cache is None:
            found: Set[str] = set(self.inputs) | set(self.outputs)
            for gate in self._gates.values():
                found.update(gate.inputs)
                found.add(gate.output)
            self._nets_cache = sorted(found)
        return list(self._nets_cache)

    def readers_of(self, net: str) -> List[Gate]:
        readers = self._fanout.get(net)
        if readers is None:
            return []
        if net in self._fanout_dirty:
            readers.sort(key=lambda g: g.name)
            self._fanout_dirty.discard(net)
        return list(readers)

    def validate(self) -> List[str]:
        """Structural checks; returns a list of problems (empty = clean)."""
        problems: List[str] = []
        driven = set(self._driver_of) | set(self.inputs)
        for gate in self.gates():
            for net in gate.inputs:
                if net not in driven:
                    problems.append(
                        f"gate {gate.name!r}: input net {net!r} undriven"
                    )
        for net in self.outputs:
            if net not in driven:
                problems.append(f"primary output {net!r} undriven")
        return problems

    # -- serialisation (the simulation viewtype's file format) ---------------

    def to_bytes(self) -> bytes:
        doc = {
            "format": "repro-netlist-1",
            "name": self.name,
            "inputs": self.inputs,
            "outputs": self.outputs,
            "gates": [
                {
                    "name": g.name,
                    "type": g.gate_type,
                    "inputs": list(g.inputs),
                    "output": g.output,
                    "delay": g.delay,
                }
                for g in self.gates()
            ],
        }
        return json.dumps(doc, sort_keys=True, indent=1).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Netlist":
        try:
            doc = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SimulationError(f"corrupt netlist file: {exc}") from exc
        if doc.get("format") != "repro-netlist-1":
            raise SimulationError(
                f"not a netlist file (format={doc.get('format')!r})"
            )
        netlist = cls(doc["name"])
        for net in doc["inputs"]:
            netlist.add_input(net)
        for net in doc["outputs"]:
            netlist.add_output(net)
        for entry in doc["gates"]:
            netlist.add_gate(
                Gate(
                    name=entry["name"],
                    gate_type=entry["type"],
                    inputs=tuple(entry["inputs"]),
                    output=entry["output"],
                    delay=entry.get("delay", -1),
                )
            )
        return netlist


@dataclasses.dataclass
class SimulationResult:
    """Waveforms and summary of one simulation run."""

    netlist_name: str
    end_time: int
    #: net -> [(time, value), ...] — only changes are recorded
    waveforms: Dict[str, List[Tuple[int, Logic]]]
    events_processed: int

    def value_at(self, net: str, time: int) -> Logic:
        """The value of *net* at *time* (last change at or before it)."""
        changes = self.waveforms.get(net)
        if not changes:
            return Logic.X
        value = Logic.X
        for change_time, change_value in changes:
            if change_time > time:
                break
            value = change_value
        return value

    def final_value(self, net: str) -> Logic:
        changes = self.waveforms.get(net)
        return changes[-1][1] if changes else Logic.X

    def toggle_count(self, net: str) -> int:
        """Number of recorded value changes on *net* (excl. the initial X)."""
        return max(0, len(self.waveforms.get(net, [])) - 1)

    def uninitialized_nets(self) -> List[str]:
        """Nets still X or Z at the end of the run.

        A non-empty list usually means the stimulus never initialised
        part of the design — the classic cause of simulations that pass
        trivially.  Testbench authors can assert on this.
        """
        return sorted(
            net
            for net, changes in self.waveforms.items()
            if not changes[-1][1].is_known
        )

    def initialization_coverage(self) -> float:
        """Fraction of nets holding a known value at the end (0..1)."""
        if not self.waveforms:
            return 1.0
        known = sum(
            1 for changes in self.waveforms.values()
            if changes[-1][1].is_known
        )
        return known / len(self.waveforms)


class LogicSimulator:
    """Event-driven gate-level simulator with DFF support."""

    #: Safety valve against oscillating combinational loops.
    MAX_EVENTS = 1_000_000

    def __init__(self, netlist: Netlist) -> None:
        problems = netlist.validate()
        if problems:
            raise SimulationError(
                f"netlist {netlist.name!r} is not simulatable: {problems}"
            )
        self.netlist = netlist

    def run(
        self,
        stimuli: Sequence[Tuple[int, str, Logic]],
        duration: Optional[int] = None,
        forced: Optional[Dict[str, Logic]] = None,
    ) -> SimulationResult:
        """Simulate the netlist under *stimuli* ``(time, net, value)``.

        Only primary inputs may be stimulated.  The run ends when the
        event queue drains or *duration* is reached.

        *forced* pins nets to fixed values for the whole run (events on
        them are discarded) — the mechanism fault simulation uses to
        model stuck-at faults.
        """
        forced = dict(forced or {})
        unknown_forced = set(forced) - set(self.netlist.nets())
        if unknown_forced:
            raise SimulationError(
                f"forced nets not in the netlist: {sorted(unknown_forced)}"
            )
        values: Dict[str, Logic] = {net: Logic.X for net in self.netlist.nets()}
        waveforms: Dict[str, List[Tuple[int, Logic]]] = {
            net: [(0, Logic.X)] for net in self.netlist.nets()
        }
        queue = EventQueue()
        primary = set(self.netlist.inputs)
        for net, value in forced.items():
            queue.schedule(0, net, value)
        for time, net, value in stimuli:
            if net not in primary:
                raise SimulationError(
                    f"stimulus drives non-primary net {net!r}"
                )
            if net in forced:
                continue  # the fault wins over the stimulus
            queue.schedule(time, net, value)

        dff_state: Dict[str, Logic] = {
            gate.name: Logic.X
            for gate in self.netlist.gates()
            if gate.is_sequential
        }
        events_processed = 0
        now = 0
        while len(queue):
            if duration is not None and queue.next_time > duration:
                break
            now, batch = queue.pop_simultaneous()
            changed: List[str] = []
            previous: Dict[str, Logic] = {}
            for event in batch:
                events_processed += 1
                if events_processed > self.MAX_EVENTS:
                    raise SimulationError(
                        f"event limit exceeded at t={now}; oscillation in "
                        f"netlist {self.netlist.name!r}?"
                    )
                if (
                    event.net in forced
                    and event.value is not forced[event.net]
                ):
                    continue  # stuck nets never move off the fault value
                if values[event.net] is event.value:
                    continue
                if event.net not in previous:
                    previous[event.net] = values[event.net]
                values[event.net] = event.value
                waveforms[event.net].append((now, event.value))
                changed.append(event.net)
            for net in changed:
                for gate in self.netlist.readers_of(net):
                    if gate.is_sequential:
                        self._react_dff(
                            gate, net, previous.get(net, Logic.X),
                            values, dff_state, queue, now,
                        )
                    else:
                        new_value = evaluate_gate(
                            gate, [values[i] for i in gate.inputs]
                        )
                        queue.schedule(
                            now + gate.effective_delay, gate.output, new_value
                        )
        return SimulationResult(
            netlist_name=self.netlist.name,
            end_time=now,
            waveforms=waveforms,
            events_processed=events_processed,
        )

    def _react_dff(
        self,
        gate: Gate,
        changed_net: str,
        old_value: Logic,
        values: Dict[str, Logic],
        dff_state: Dict[str, Logic],
        queue: EventQueue,
        now: int,
    ) -> None:
        """Latch D on the rising edge of the clock input."""
        d_net, clk_net = gate.inputs
        if changed_net != clk_net:
            return  # D changes alone do nothing
        new_clk = values[clk_net]
        rising = old_value is Logic.ZERO and new_clk is Logic.ONE
        if rising:
            latched = values[d_net]
            if not latched.is_known:
                latched = Logic.X
            dff_state[gate.name] = latched
            queue.schedule(now + gate.effective_delay, gate.output, latched)
