"""Static timing analysis (STA-lite) over gate-level netlists.

The paper's framework context includes design consultants that advise on
design quality; a timing report is the classic input to such advice.
This module levelises the combinational netlist and computes per-net
arrival times from gate delays, yielding the critical path.

Sequential elements (DFFs) cut the timing graph: their outputs start new
paths at time 0 (clock-to-Q is charged on the launching path), which is
the standard register-to-register decomposition.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.tools.simulator.engine import Netlist


@dataclasses.dataclass(frozen=True)
class TimingReport:
    """Arrival times and the critical path of one netlist."""

    netlist_name: str
    #: net -> worst-case arrival time (simulator time units)
    arrival: Dict[str, int]
    #: nets along the critical path, source to endpoint
    critical_path: Tuple[str, ...]
    critical_delay: int

    def arrival_of(self, net: str) -> int:
        if net not in self.arrival:
            raise SimulationError(f"no arrival time for net {net!r}")
        return self.arrival[net]


def analyze_timing(netlist: Netlist) -> TimingReport:
    """Compute worst-case arrival times and the critical path.

    Primary inputs and DFF outputs arrive at t=0.  Combinational loops
    are reported as an error (they have no static arrival time).
    """
    problems = netlist.validate()
    if problems:
        raise SimulationError(
            f"netlist {netlist.name!r} not analyzable: {problems}"
        )

    arrival: Dict[str, int] = {net: 0 for net in netlist.inputs}
    predecessor: Dict[str, Optional[str]] = {
        net: None for net in netlist.inputs
    }
    for gate in netlist.gates():
        if gate.is_sequential:
            # register output launches a fresh path after clock-to-Q
            arrival[gate.output] = gate.effective_delay
            predecessor[gate.output] = None

    combinational = [g for g in netlist.gates() if not g.is_sequential]
    remaining = list(combinational)
    while remaining:
        progressed = False
        for gate in list(remaining):
            if all(net in arrival for net in gate.inputs):
                worst_input = max(
                    gate.inputs, key=lambda net: arrival[net]
                )
                arrival[gate.output] = (
                    arrival[worst_input] + gate.effective_delay
                )
                predecessor[gate.output] = worst_input
                remaining.remove(gate)
                progressed = True
        if not progressed:
            stuck = sorted(g.name for g in remaining)
            raise SimulationError(
                f"combinational loop through gates {stuck}"
            )

    if not arrival:
        return TimingReport(
            netlist_name=netlist.name,
            arrival={},
            critical_path=(),
            critical_delay=0,
        )
    endpoint = max(arrival, key=lambda net: (arrival[net], net))
    path: List[str] = [endpoint]
    while predecessor.get(path[-1]) is not None:
        path.append(predecessor[path[-1]])  # type: ignore[arg-type]
    path.reverse()
    return TimingReport(
        netlist_name=netlist.name,
        arrival=dict(arrival),
        critical_path=tuple(path),
        critical_delay=arrival[endpoint],
    )


def settle_bound(netlist: Netlist) -> int:
    """An upper bound on how long one input change can ripple.

    The event-driven simulation of a single input step settles no later
    than the critical delay; testbenches use this to place their checks
    safely after the dust settles.
    """
    return analyze_timing(netlist).critical_delay
