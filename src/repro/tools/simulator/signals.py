"""Four-valued logic for the digital simulator.

Values follow the classic gate-level convention: ``0``/``1`` are driven
levels, ``X`` is unknown/conflict, ``Z`` is high-impedance (undriven).
"""

from __future__ import annotations

import enum
from typing import Iterable


class Logic(enum.Enum):
    """One signal value."""

    ZERO = "0"
    ONE = "1"
    X = "X"
    Z = "Z"

    def __str__(self) -> str:
        return self.value

    @classmethod
    def from_str(cls, text: str) -> "Logic":
        for member in cls:
            if member.value == text.upper():
                return member
        raise ValueError(f"not a logic value: {text!r}")

    @classmethod
    def from_bool(cls, value: bool) -> "Logic":
        return cls.ONE if value else cls.ZERO

    @property
    def is_known(self) -> bool:
        return self in (Logic.ZERO, Logic.ONE)

    def to_bool(self) -> bool:
        """Strict conversion; raises on X/Z."""
        if self is Logic.ONE:
            return True
        if self is Logic.ZERO:
            return False
        raise ValueError(f"cannot convert {self} to bool")


def resolve_bus(drivers: Iterable[Logic]) -> Logic:
    """Resolve multiple drivers on one net (wired resolution).

    Z yields to any driven value; conflicting driven values produce X;
    any X driver poisons the net.
    """
    resolved = Logic.Z
    for value in drivers:
        if value is Logic.Z:
            continue
        if value is Logic.X:
            return Logic.X
        if resolved is Logic.Z:
            resolved = value
        elif resolved is not value:
            return Logic.X
    return resolved
