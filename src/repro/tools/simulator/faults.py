"""Stuck-at fault simulation and test-pattern grading.

Testability was this paper's first author's research home (CADEC, the
design consultant cited in the introduction, graded designs for test).
This module brings that capability to the encapsulated simulator: it
enumerates single stuck-at faults on every net, simulates each faulty
machine against a stimulus, and reports which faults the pattern set
detects — the classic fault-coverage figure of merit.

A fault is *detected* when any primary output differs from the golden
(fault-free) response at any observation time.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.tools.simulator.engine import LogicSimulator, Netlist
from repro.tools.simulator.signals import Logic
from repro.tools.simulator.timing import settle_bound


@dataclasses.dataclass(frozen=True)
class StuckFault:
    """A single stuck-at fault on one net."""

    net: str
    value: Logic

    def __str__(self) -> str:
        return f"{self.net}/SA{self.value}"


@dataclasses.dataclass
class FaultSimReport:
    """Outcome of grading one pattern set."""

    netlist_name: str
    total_faults: int
    detected: List[StuckFault]
    undetected: List[StuckFault]
    observation_times: Tuple[int, ...]

    @property
    def coverage(self) -> float:
        """Detected fraction of all enumerated faults (0..1)."""
        if not self.total_faults:
            return 1.0
        return len(self.detected) / self.total_faults


def enumerate_faults(netlist: Netlist) -> List[StuckFault]:
    """All single stuck-at faults: every net, SA0 and SA1."""
    faults: List[StuckFault] = []
    for net in netlist.nets():
        faults.append(StuckFault(net, Logic.ZERO))
        faults.append(StuckFault(net, Logic.ONE))
    return faults


def _observation_times(
    netlist: Netlist,
    stimuli: Sequence[Tuple[int, str, Logic]],
    explicit: Optional[Sequence[int]],
) -> Tuple[int, ...]:
    if explicit is not None:
        return tuple(sorted(set(explicit)))
    if not stimuli:
        raise SimulationError("fault simulation needs a stimulus")
    settle = settle_bound(netlist) + 1
    times = sorted({time for time, _, _ in stimuli})
    return tuple(time + settle for time in times)


def _output_signature(
    netlist: Netlist,
    result,
    times: Tuple[int, ...],
) -> Tuple[Tuple[Logic, ...], ...]:
    return tuple(
        tuple(result.value_at(net, time) for net in netlist.outputs)
        for time in times
    )


def run_fault_simulation(
    netlist: Netlist,
    stimuli: Sequence[Tuple[int, str, Logic]],
    observation_times: Optional[Sequence[int]] = None,
    faults: Optional[Sequence[StuckFault]] = None,
) -> FaultSimReport:
    """Grade *stimuli* against the netlist's stuck-at fault set.

    Serial fault simulation: one full event-driven run per fault, each
    with the faulty net forced.  Observation defaults to every stimulus
    time plus the static settle bound.
    """
    if not netlist.outputs:
        raise SimulationError(
            f"netlist {netlist.name!r} has no primary outputs to observe"
        )
    times = _observation_times(netlist, stimuli, observation_times)
    fault_list = list(faults) if faults is not None else enumerate_faults(
        netlist
    )
    simulator = LogicSimulator(netlist)
    duration = times[-1] + 1
    golden = simulator.run(stimuli, duration=duration)
    golden_signature = _output_signature(netlist, golden, times)

    detected: List[StuckFault] = []
    undetected: List[StuckFault] = []
    for fault in fault_list:
        faulty = simulator.run(
            stimuli, duration=duration, forced={fault.net: fault.value}
        )
        signature = _output_signature(netlist, faulty, times)
        if _differs(signature, golden_signature):
            detected.append(fault)
        else:
            undetected.append(fault)
    return FaultSimReport(
        netlist_name=netlist.name,
        total_faults=len(fault_list),
        detected=detected,
        undetected=undetected,
        observation_times=times,
    )


def _differs(faulty_signature, golden_signature) -> bool:
    """Detection requires a *known* mismatch (X never proves a fault)."""
    for faulty_row, golden_row in zip(faulty_signature, golden_signature):
        for faulty_value, golden_value in zip(faulty_row, golden_row):
            if (
                faulty_value.is_known
                and golden_value.is_known
                and faulty_value is not golden_value
            ):
                return True
    return False


def coverage_of_testbench(testbench) -> FaultSimReport:
    """Grade a :class:`~repro.tools.simulator.testbench.Testbench`'s
    stimulus — how much silicon would those vectors actually test?"""
    return run_fault_simulation(
        testbench.netlist, testbench.stimulus.events
    )
