"""Symbol views.

A symbol is the re-usable block representation of a cell: its name and
port list, placed by parent schematics.  In FMCAD terms this is the
``symbol`` viewtype that the ``Symbol in Sch.V`` relation of Figure 2
references.
"""

from __future__ import annotations

import dataclasses
import json
from typing import List, Tuple

from repro.errors import SchematicError
from repro.tools.schematic.model import Schematic


@dataclasses.dataclass(frozen=True)
class Symbol:
    """Block representation of a cell: name plus directed pins."""

    cell_name: str
    pins: Tuple[Tuple[str, str], ...]  # (name, direction)

    def pin_names(self) -> List[str]:
        return [name for name, _ in self.pins]

    def to_bytes(self) -> bytes:
        doc = {
            "format": "repro-symbol-1",
            "cell": self.cell_name,
            "pins": [list(pin) for pin in self.pins],
        }
        return json.dumps(doc, sort_keys=True, indent=1).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Symbol":
        try:
            doc = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SchematicError(f"corrupt symbol file: {exc}") from exc
        if doc.get("format") != "repro-symbol-1":
            raise SchematicError(
                f"not a symbol file (format={doc.get('format')!r})"
            )
        return cls(
            cell_name=doc["cell"],
            pins=tuple((name, direction) for name, direction in doc["pins"]),
        )


def symbol_for(schematic: Schematic) -> Symbol:
    """Generate the symbol of *schematic* from its primary ports."""
    pins = tuple((p.name, p.direction) for p in schematic.ports())
    if not pins:
        raise SchematicError(
            f"cell {schematic.cell_name!r} has no ports; cannot make a symbol"
        )
    return Symbol(cell_name=schematic.cell_name, pins=pins)
