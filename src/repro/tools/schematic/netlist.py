"""Netlisting: flatten a hierarchical schematic into simulator input.

Subcell instances are resolved through a caller-supplied *resolver*
``cellref -> Schematic``.  In the hybrid framework the resolver reads the
default schematic version from the FMCAD library — the very dynamic
binding Section 2.2 describes — while JCF separately records which
versions the netlist actually consumed.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import SchematicError
from repro.tools.schematic.model import Component, Schematic
from repro.tools.simulator.engine import Netlist
from repro.tools.simulator.gates import Gate

Resolver = Callable[[str], Schematic]

#: Hierarchy deeper than this is almost certainly a recursion accident.
MAX_DEPTH = 32


def netlist_schematic(
    schematic: Schematic,
    resolver: Optional[Resolver] = None,
    max_depth: int = MAX_DEPTH,
) -> Netlist:
    """Flatten *schematic* (recursively) into a gate-level netlist."""
    netlist = Netlist(schematic.cell_name)
    for port in schematic.ports():
        if port.direction == "in":
            netlist.add_input(port.name)
        elif port.direction == "out":
            netlist.add_output(port.name)
        else:
            raise SchematicError(
                f"port {port.name!r}: inout ports cannot be netlisted"
            )
    _flatten(
        schematic,
        netlist,
        prefix="",
        port_map={},
        resolver=resolver,
        depth=0,
        max_depth=max_depth,
    )
    return netlist


def _flatten(
    schematic: Schematic,
    netlist: Netlist,
    prefix: str,
    port_map: Dict[str, str],
    resolver: Optional[Resolver],
    depth: int,
    max_depth: int,
) -> None:
    if depth > max_depth:
        raise SchematicError(
            f"hierarchy deeper than {max_depth} at {prefix!r}; recursive "
            "cell reference?"
        )

    def net_name(local: str) -> str:
        return port_map.get(local, prefix + local)

    for component in schematic.components():
        if component.is_primitive:
            _emit_gate(schematic, netlist, component, prefix, net_name)
        else:
            _descend(
                schematic,
                netlist,
                component,
                prefix,
                net_name,
                resolver,
                depth,
                max_depth,
            )


def _pin_net(
    schematic: Schematic, component: Component, pin: str, where: str
) -> str:
    net = schematic.net_of(component.name, pin)
    if net is None:
        raise SchematicError(
            f"{where}: pin {component.name}.{pin} is unconnected"
        )
    return net.name


def _emit_gate(
    schematic: Schematic,
    netlist: Netlist,
    component: Component,
    prefix: str,
    net_name: Callable[[str], str],
) -> None:
    where = f"cell {schematic.cell_name!r}"
    if component.ctype == "DFF":
        inputs = tuple(
            net_name(_pin_net(schematic, component, pin, where))
            for pin in ("d", "clk")
        )
        output = net_name(_pin_net(schematic, component, "q", where))
    else:
        inputs = tuple(
            net_name(_pin_net(schematic, component, f"in{i}", where))
            for i in range(component.ninputs)
        )
        output = net_name(_pin_net(schematic, component, "out", where))
    netlist.add_gate(
        Gate(
            name=prefix + component.name,
            gate_type=component.ctype,
            inputs=inputs,
            output=output,
        )
    )


def _descend(
    schematic: Schematic,
    netlist: Netlist,
    component: Component,
    prefix: str,
    net_name: Callable[[str], str],
    resolver: Optional[Resolver],
    depth: int,
    max_depth: int,
) -> None:
    if resolver is None:
        raise SchematicError(
            f"cell {schematic.cell_name!r} instantiates "
            f"{component.cellref!r} but no resolver was supplied"
        )
    subcell = resolver(component.cellref)  # type: ignore[arg-type]
    child_prefix = f"{prefix}{component.name}/"
    child_port_map: Dict[str, str] = {}
    for port in subcell.ports():
        parent_net = schematic.net_of(component.name, port.name)
        if parent_net is not None:
            child_port_map[port.name] = net_name(parent_net.name)
        else:
            # unconnected subcell port gets a private net
            child_port_map[port.name] = f"{child_prefix}{port.name}"
    _flatten(
        subcell,
        netlist,
        prefix=child_prefix,
        port_map=child_port_map,
        resolver=resolver,
        depth=depth + 1,
        max_depth=max_depth,
    )
