"""Schematic entry — the first encapsulated FMCAD tool.

A hierarchical schematic model (ports, primitive gates, subcell
instances, nets), an interactive editor, symbol generation, and a
netlister that flattens hierarchy through a resolver — the same
default-version dynamic binding FMCAD uses (Section 2.2).
"""

from repro.tools.schematic.model import (
    Component,
    Net,
    Port,
    Schematic,
)
from repro.tools.schematic.editor import SchematicEditor
from repro.tools.schematic.symbols import Symbol, symbol_for
from repro.tools.schematic.netlist import netlist_schematic
from repro.tools.schematic.erc import ERCViolation, fanout_report, run_erc

__all__ = [
    "Component",
    "Net",
    "Port",
    "Schematic",
    "SchematicEditor",
    "Symbol",
    "symbol_for",
    "netlist_schematic",
    "ERCViolation",
    "fanout_report",
    "run_erc",
]
