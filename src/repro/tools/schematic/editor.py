"""The interactive schematic entry tool.

Wraps a :class:`~repro.tools.schematic.model.Schematic` with the
operations an FMCAD menu would expose (place, wire, delete, save) and an
operation log.  The coupling's encapsulation wrapper drives this editor
through an FMCAD tool session.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SchematicError
from repro.tools.schematic.model import Component, Schematic


class SchematicEditor:
    """Stateful editor over one schematic."""

    TOOL_NAME = "schematic_editor"

    def __init__(self, schematic: Optional[Schematic] = None) -> None:
        self.schematic = schematic or Schematic("untitled")
        self.dirty = schematic is None
        self.op_log: List[str] = []

    # -- file operations ----------------------------------------------------

    @classmethod
    def open_bytes(cls, data: bytes) -> "SchematicEditor":
        """Open a design file as saved by :meth:`save_bytes`."""
        editor = cls(Schematic.from_bytes(data))
        editor.dirty = False
        return editor

    def save_bytes(self) -> bytes:
        """Serialise the current schematic; clears the dirty flag."""
        data = self.schematic.to_bytes()
        self.dirty = False
        self._log("save")
        return data

    # -- editing operations ----------------------------------------------------

    def new_design(self, cell_name: str) -> None:
        self.schematic = Schematic(cell_name)
        self.dirty = True
        self._log(f"new {cell_name}")

    def load(self, schematic: Schematic) -> None:
        """Replace the working design with *schematic* (import/paste)."""
        self.schematic = schematic
        self.dirty = True
        self._log(f"load {schematic.cell_name}")

    def add_port(self, name: str, direction: str) -> None:
        self.schematic.add_port(name, direction)
        self.dirty = True
        self._log(f"port {name} {direction}")

    def place_gate(self, name: str, gate_type: str, ninputs: int = 2) -> None:
        """Place a primitive gate instance."""
        self.schematic.add_component(
            Component(name=name, ctype=gate_type, ninputs=ninputs)
        )
        self.dirty = True
        self._log(f"place {gate_type} {name}")

    def place_cell(self, name: str, cellref: str) -> None:
        """Place an instance of another cell (hierarchy!)."""
        self.schematic.add_component(
            Component(name=name, ctype="CELL", cellref=cellref)
        )
        self.dirty = True
        self._log(f"place CELL {name} -> {cellref}")

    def wire(self, net_name: str, component_name: str, pin_name: str) -> None:
        self.schematic.connect(net_name, component_name, pin_name)
        self.dirty = True
        self._log(f"wire {net_name} {component_name}.{pin_name}")

    def unwire(self, net_name: str, component_name: str, pin_name: str) -> None:
        self.schematic.disconnect(net_name, component_name, pin_name)
        self.dirty = True
        self._log(f"unwire {net_name} {component_name}.{pin_name}")

    def delete(self, component_name: str) -> None:
        self.schematic.remove_component(component_name)
        self.dirty = True
        self._log(f"delete {component_name}")

    # -- checking -------------------------------------------------------------------

    def check(self) -> List[str]:
        """Run the schematic's structural checks."""
        self._log("check")
        return self.schematic.validate()

    def require_clean(self) -> None:
        problems = self.schematic.validate()
        if problems:
            raise SchematicError(
                f"schematic {self.schematic.cell_name!r} has "
                f"{len(problems)} problems: {problems[:5]}"
            )

    def _log(self, entry: str) -> None:
        self.op_log.append(entry)
