"""Electrical rule checking (ERC) for schematics.

Structural validation (``Schematic.validate``) catches dangling pins;
ERC catches *electrical* mistakes: nets driven by two outputs, nets with
no driver, inputs shorted to inputs only, and excessive fanout.  The
schematic editor exposes this as a pre-save check, and flows may gate on
a clean ERC just like they gate on a passing simulation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Set, Tuple

from repro.tools.schematic.model import Schematic


@dataclasses.dataclass(frozen=True)
class ERCViolation:
    """One electrical rule violation."""

    rule: str      # "multiple_drivers" | "no_driver" | "fanout"
    net: str
    detail: str

    def __str__(self) -> str:
        return f"{self.rule}[{self.net}]: {self.detail}"


#: more readers than this on one net is flagged (buffering needed)
DEFAULT_MAX_FANOUT = 16


def _terminal_roles(
    schematic: Schematic,
) -> Dict[str, Tuple[Set[Tuple[str, str]], Set[Tuple[str, str]]]]:
    """Per net: (driving terminals, reading terminals).

    Primary ``in`` ports and component outputs drive; primary ``out``
    ports and component inputs read.  CELL instance pins are counted as
    readers (their direction is unknown without the subcell), which is
    conservative: they can neither create nor mask driver conflicts.
    """
    roles: Dict[str, Tuple[Set, Set]] = {}
    port_directions = {p.name: p.direction for p in schematic.ports()}
    for net in schematic.nets():
        drivers: Set[Tuple[str, str]] = set()
        readers: Set[Tuple[str, str]] = set()
        for component_name, pin_name in net.terminals:
            if component_name == "":
                if port_directions.get(pin_name) == "in":
                    drivers.add(("", pin_name))
                else:
                    readers.add(("", pin_name))
                continue
            component = schematic.component(component_name)
            if component.is_primitive:
                if pin_name in component.output_pins():
                    drivers.add((component_name, pin_name))
                else:
                    readers.add((component_name, pin_name))
            else:
                readers.add((component_name, pin_name))
        roles[net.name] = (drivers, readers)
    return roles


def run_erc(
    schematic: Schematic, max_fanout: int = DEFAULT_MAX_FANOUT
) -> List[ERCViolation]:
    """All electrical rule violations of *schematic* (empty = clean)."""
    violations: List[ERCViolation] = []
    for net_name, (drivers, readers) in sorted(
        _terminal_roles(schematic).items()
    ):
        if len(drivers) > 1:
            names = sorted(
                f"{c or 'port'}.{p}" for c, p in drivers
            )
            violations.append(
                ERCViolation(
                    rule="multiple_drivers",
                    net=net_name,
                    detail=f"driven by {names}",
                )
            )
        if not drivers and readers:
            violations.append(
                ERCViolation(
                    rule="no_driver",
                    net=net_name,
                    detail=f"{len(readers)} reader(s), no driver",
                )
            )
        if len(readers) > max_fanout:
            violations.append(
                ERCViolation(
                    rule="fanout",
                    net=net_name,
                    detail=(
                        f"{len(readers)} readers exceeds max fanout "
                        f"{max_fanout}"
                    ),
                )
            )
    return violations


def fanout_report(schematic: Schematic) -> Dict[str, int]:
    """Reader count per net (for sizing/buffering decisions)."""
    return {
        net: len(readers)
        for net, (_, readers) in _terminal_roles(schematic).items()
    }
