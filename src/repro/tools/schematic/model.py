"""The schematic data model.

A schematic is the logic diagram of one cell: primary ports, component
instances (primitive gates or references to other cells), and nets
connecting terminals.  Subcell references make the schematic hierarchy —
the *functional* hierarchy the coupling layer extracts and submits to JCF
(Sections 2.3/3.3).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import SchematicError
from repro.tools.simulator.gates import GATE_TYPES

#: component type used for hierarchical subcell instances
CELL_TYPE = "CELL"

PORT_DIRECTIONS = ("in", "out", "inout")


@dataclasses.dataclass(frozen=True)
class Port:
    """A primary connection point of the schematic."""

    name: str
    direction: str

    def __post_init__(self) -> None:
        if self.direction not in PORT_DIRECTIONS:
            raise SchematicError(
                f"port {self.name!r}: direction must be one of "
                f"{PORT_DIRECTIONS}, got {self.direction!r}"
            )


class Component:
    """One placed instance: a primitive gate or a subcell reference."""

    def __init__(
        self,
        name: str,
        ctype: str,
        ninputs: int = 2,
        cellref: Optional[str] = None,
    ) -> None:
        if ctype == CELL_TYPE:
            if not cellref:
                raise SchematicError(
                    f"component {name!r}: CELL instances need a cellref"
                )
        elif ctype in GATE_TYPES:
            lo, hi, _ = GATE_TYPES[ctype]
            if not lo <= ninputs <= hi:
                raise SchematicError(
                    f"component {name!r} ({ctype}): {ninputs} inputs "
                    f"outside {lo}..{hi}"
                )
        else:
            raise SchematicError(
                f"component {name!r}: unknown type {ctype!r}"
            )
        self.name = name
        self.ctype = ctype
        self.ninputs = ninputs
        self.cellref = cellref

    @property
    def is_primitive(self) -> bool:
        return self.ctype != CELL_TYPE

    def pin_names(self) -> List[str]:
        """Terminal names of this instance.

        Primitives expose ``in0..inN-1`` plus ``out`` (DFF: ``d``, ``clk``,
        ``q``); CELL instances expose their subcell's port names, which
        are only known at netlist time — here we return the recorded pin
        connections instead, so the model stays self-contained.
        """
        if self.ctype == "DFF":
            return ["d", "clk", "q"]
        if self.is_primitive:
            return [f"in{i}" for i in range(self.ninputs)] + ["out"]
        raise SchematicError(
            f"component {self.name!r}: CELL pin names come from the "
            "subcell's ports"
        )

    def output_pins(self) -> List[str]:
        if self.ctype == "DFF":
            return ["q"]
        if self.is_primitive:
            return ["out"]
        raise SchematicError(
            f"component {self.name!r}: CELL outputs come from the subcell"
        )


@dataclasses.dataclass
class Net:
    """A named electrical node: the set of terminals it connects.

    Terminals are ``(component_name, pin_name)`` pairs; the pseudo
    component name ``""`` denotes a primary port terminal.
    """

    name: str
    terminals: Set[Tuple[str, str]] = dataclasses.field(default_factory=set)

    def attach(self, component_name: str, pin_name: str) -> None:
        self.terminals.add((component_name, pin_name))

    def detach(self, component_name: str, pin_name: str) -> None:
        self.terminals.discard((component_name, pin_name))


class Schematic:
    """The logic diagram of one cell."""

    def __init__(self, cell_name: str) -> None:
        self.cell_name = cell_name
        self._ports: Dict[str, Port] = {}
        self._components: Dict[str, Component] = {}
        self._nets: Dict[str, Net] = {}

    # -- construction ---------------------------------------------------------

    def add_port(self, name: str, direction: str) -> Port:
        if name in self._ports:
            raise SchematicError(f"duplicate port {name!r}")
        port = Port(name, direction)
        self._ports[name] = port
        # each port implicitly terminates a same-named net
        net = self._nets.setdefault(name, Net(name))
        net.attach("", name)
        return port

    def add_component(self, component: Component) -> Component:
        if component.name in self._components:
            raise SchematicError(f"duplicate component {component.name!r}")
        if component.name == "":
            raise SchematicError("component name cannot be empty")
        self._components[component.name] = component
        return component

    def connect(self, net_name: str, component_name: str, pin_name: str) -> Net:
        """Attach a component pin to a (possibly new) net."""
        component = self.component(component_name)
        if component.is_primitive and pin_name not in component.pin_names():
            raise SchematicError(
                f"component {component_name!r} has no pin {pin_name!r}"
            )
        net = self._nets.setdefault(net_name, Net(net_name))
        net.attach(component_name, pin_name)
        return net

    def disconnect(self, net_name: str, component_name: str, pin_name: str) -> None:
        net = self.net(net_name)
        if (component_name, pin_name) not in net.terminals:
            raise SchematicError(
                f"net {net_name!r} does not connect "
                f"{component_name}.{pin_name}"
            )
        net.detach(component_name, pin_name)
        if not net.terminals:
            del self._nets[net_name]

    def remove_component(self, name: str) -> None:
        self.component(name)  # raises if unknown
        del self._components[name]
        for net in list(self._nets.values()):
            net.terminals = {
                (c, p) for c, p in net.terminals if c != name
            }
            if not net.terminals:
                del self._nets[net.name]

    # -- lookup ---------------------------------------------------------------

    def port(self, name: str) -> Port:
        try:
            return self._ports[name]
        except KeyError:
            raise SchematicError(f"no port {name!r}") from None

    def ports(self) -> List[Port]:
        return [self._ports[name] for name in sorted(self._ports)]

    def component(self, name: str) -> Component:
        try:
            return self._components[name]
        except KeyError:
            raise SchematicError(f"no component {name!r}") from None

    def components(self) -> List[Component]:
        return [self._components[name] for name in sorted(self._components)]

    def net(self, name: str) -> Net:
        try:
            return self._nets[name]
        except KeyError:
            raise SchematicError(f"no net {name!r}") from None

    def nets(self) -> List[Net]:
        return [self._nets[name] for name in sorted(self._nets)]

    def net_of(self, component_name: str, pin_name: str) -> Optional[Net]:
        for net in self._nets.values():
            if (component_name, pin_name) in net.terminals:
                return net
        return None

    def subcell_refs(self) -> List[str]:
        """Referenced subcell names — the functional hierarchy edge list."""
        return sorted(
            {
                c.cellref
                for c in self._components.values()
                if not c.is_primitive and c.cellref
            }
        )

    # -- validation ------------------------------------------------------------

    def validate(self) -> List[str]:
        """Structural problems; empty list means clean."""
        problems: List[str] = []
        for component in self.components():
            if component.is_primitive:
                for pin in component.pin_names():
                    if self.net_of(component.name, pin) is None:
                        problems.append(
                            f"dangling pin {component.name}.{pin}"
                        )
        for net in self.nets():
            if len(net.terminals) < 2:
                problems.append(f"net {net.name!r} has a single terminal")
        # each pin may sit on at most one net
        seen: Dict[Tuple[str, str], str] = {}
        for net in self.nets():
            for terminal in net.terminals:
                if terminal in seen and terminal[0] != "":
                    problems.append(
                        f"pin {terminal[0]}.{terminal[1]} on both "
                        f"{seen[terminal]!r} and {net.name!r}"
                    )
                seen[terminal] = net.name
        return problems

    # -- serialisation (the 'schematic' viewtype file format) -----------------------

    def to_bytes(self) -> bytes:
        doc = {
            "format": "repro-schematic-1",
            "cell": self.cell_name,
            "ports": [
                {"name": p.name, "direction": p.direction}
                for p in self.ports()
            ],
            "components": [
                {
                    "name": c.name,
                    "type": c.ctype,
                    "ninputs": c.ninputs,
                    "cellref": c.cellref,
                }
                for c in self.components()
            ],
            "nets": [
                {
                    "name": n.name,
                    "terminals": sorted(list(t) for t in n.terminals),
                }
                for n in self.nets()
            ],
        }
        return json.dumps(doc, sort_keys=True, indent=1).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Schematic":
        try:
            doc = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SchematicError(f"corrupt schematic file: {exc}") from exc
        if doc.get("format") != "repro-schematic-1":
            raise SchematicError(
                f"not a schematic file (format={doc.get('format')!r})"
            )
        schematic = cls(doc["cell"])
        for port in doc["ports"]:
            schematic.add_port(port["name"], port["direction"])
        for entry in doc["components"]:
            schematic.add_component(
                Component(
                    name=entry["name"],
                    ctype=entry["type"],
                    ninputs=entry["ninputs"],
                    cellref=entry.get("cellref"),
                )
            )
        for net_doc in doc["nets"]:
            net = schematic._nets.setdefault(
                net_doc["name"], Net(net_doc["name"])
            )
            for component_name, pin_name in net_doc["terminals"]:
                net.attach(component_name, pin_name)
        return schematic
