"""Deterministic crash/transient fault injection for the coupling kernel.

The paper's value proposition is that the master/slave coupling keeps
JCF's design management and FMCAD's tool data *consistent* — which is
only credible if the protocol survives dying between its steps.  This
module provides the harness the crash-consistency suite drives:

* **Fault points** are named places woven through the coupled protocol
  (``checkout.after_checkin``, ``harvest.before_import``,
  ``staging.write``, ``blobs.intern``, ...).  Each call site invokes
  :func:`fault_point`, which is a single global load plus a ``None``
  check when no plan is active — ``bench_faults.py`` asserts the
  disabled overhead stays under 2% of a coupled run.
* A :class:`FaultPlan` is a deterministic schedule: rules that raise
  :class:`CrashFault` or :class:`TransientFault` on the *n*-th traversal
  of a fault point.  Seeded random plans (:meth:`FaultPlan.random_plan`)
  give reproducible chaos for the hypothesis suite.
* :class:`CrashFault` simulates the process dying at that instant: the
  protocol code deliberately performs **no** cleanup for it (open OMS
  transactions self-abort, which models the database's own crash
  recovery; everything else — tickets, sessions, staged files, FMCAD
  version files — stays broken until
  :class:`repro.core.recovery.CouplingRecovery` repairs it).
* :class:`TransientFault` simulates a recoverable glitch (NFS hiccup,
  tool license blip).  Retry boundaries call :func:`with_retries`, which
  retries with bounded exponential backoff charged to the simulated
  clock.
* **Corruption rules** (kind ``corrupt``) damage bytes *silently* at the
  registered :data:`CORRUPTION_POINTS` — places where payload bytes flow
  to storage call :func:`corruption_point` instead of
  :func:`fault_point` — modelling bit-rot, truncation and torn writes
  that land at rest undetected.  The storage integrity layer
  (:mod:`repro.integrity`) is what must catch them on read.

Not to be confused with :mod:`repro.tools.simulator.faults`, which
models stuck-at faults in simulated *circuits*; this module injects
faults into the *framework* itself.
"""

from __future__ import annotations

import contextlib
import dataclasses
import random
import threading
from collections import Counter
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, TypeVar

from repro.errors import ReproError

T = TypeVar("T")


class FaultError(ReproError):
    """Base class for injected faults."""


class CrashFault(FaultError):
    """Simulated process death: no application-level cleanup may run."""


class TransientFault(FaultError):
    """Simulated recoverable glitch: retry boundaries may retry it."""


class CorruptionFault(FaultError):
    """A corruption rule was scheduled where no bytes flow.

    Corruption is *silent* by design — :func:`corruption_point` damages
    the bytes passing through and the write continues, exactly like
    bit-rot or a torn write would.  Scheduling a corrupt rule at a plain
    :func:`fault_point` (which carries no data) is therefore a test-plan
    bug, and it fails loudly with this exception instead of silently
    never corrupting anything.
    """


KIND_CRASH = "crash"
KIND_TRANSIENT = "transient"
KIND_CORRUPT = "corrupt"

#: byte-damage modes a corruption rule can apply
MODE_FLIP = "flip"          # flip one bit (classic bit-rot)
MODE_TRUNCATE = "truncate"  # cut the tail off (interrupted write)
MODE_ZERO = "zero"          # zero a span (block-level loss / torn write)
CORRUPTION_MODES: Tuple[str, ...] = (MODE_FLIP, MODE_TRUNCATE, MODE_ZERO)

#: Every fault point woven through the production code, by subsystem.
#: ``FaultPlan`` validates rule names against this registry so a typo in
#: a test schedules a fault that can never fire loudly, not silently.
FAULT_POINTS: Tuple[str, ...] = (
    # coupled tool run (core/encapsulation.py)
    "run.after_start",        # activity started, intent not yet journalled
    "run.before_finish",      # outputs durable+tagged, derivation not recorded
    "harvest.after_checkout", # ticket held, nothing written
    "harvest.after_checkin",  # FMCAD version exists, OMS import pending
    "harvest.before_import",  # ditto, after the .meta flush
    "harvest.after_import",   # OMS version created (uncommitted)
    "harvest.before_tag",     # both sides committed, cross-tag missing
    # FMCAD checkout protocol (fmcad/checkout.py)
    "checkout.after_grant",   # ticket registered, cellview locked
    "checkout.after_checkin", # version written, ticket still open
    # staging I/O (oms/storage.py)
    "staging.write",          # staged file written, not yet recorded
    "staging.import",         # import requested, database not yet written
    # payload interning (oms/blobs.py)
    "blobs.intern",
    # project exchange (core/exchange.py)
    "exchange.write",         # archive member about to be written
    "exchange.before_import", # manifest read, nothing imported yet
    # write-ahead log (oms/wal.py)
    "wal.append",             # commit record about to land in the log
    "wal.checkpoint",         # traversed at each checkpoint stage; see
                              # WriteAheadLog.checkpoint for the windows
    # durable flow orchestration (jcf/durable_flows.py, jcf/triggers.py)
    "flow.persist",           # flow-state transition about to commit
    "flow.resume",            # a persisted flow about to roll forward
    "flow.trigger",           # trigger event about to dispatch a flow
    # design-server network front end (server/design_server.py) and the
    # serving engine's dispatch seam (server/engine.py) — the hostile-
    # network chaos harness drives disconnect-mid-request, lost-response
    # and crash-mid-batch scenarios through these
    "net.accept",             # connection accepted, handler not started
    "net.read",               # one frame read off the socket
    "net.write",              # one response frame about to hit the wire
    "server.dispatch",        # a flushed batch about to run its wave
)

#: Corruption points: places where payload bytes flow to storage and an
#: active plan may silently damage them (:func:`corruption_point`).
#: Crash/transient rules may also be scheduled here — the traversal
#: counts the same — but corrupt rules are only valid at these points.
CORRUPTION_POINTS: Tuple[str, ...] = (
    "blobs.payload",          # bytes entering the content-addressed store
    "blobs.mmap",             # blob bytes spilled to a mmap view file
    "staging.file",           # payload written to a staging file
    "staging.reflink",        # staged bytes landed via a reflink/range clone
    "fmcad.version_file",     # design file written on checkin
    "fmcad.meta",             # serialized .meta about to land on disk
    "oms.snapshot",           # serialized OMS snapshot bytes
    "wal.record",             # encoded WAL record about to be appended
    "net.frame",              # inbound frame bytes crossing the server
)

_KNOWN_POINTS = frozenset(FAULT_POINTS) | frozenset(CORRUPTION_POINTS)
_CORRUPTION_ONLY = frozenset(CORRUPTION_POINTS)


@dataclasses.dataclass
class FaultRule:
    """Fire *kind* at *point*, starting on the ``on_hit``-th traversal.

    A transient rule fires ``times`` consecutive traversals (so
    ``times`` smaller than the retry budget exercises recovery-by-retry,
    and ``times`` >= the budget exercises retry exhaustion); a crash
    rule fires exactly once — the process is dead afterwards.  A corrupt
    rule fires ``times`` traversals like a transient, but instead of
    raising it silently damages the bytes flowing through the point in
    the given *mode* (``flip``/``truncate``/``zero``), deterministically
    per *seed*.
    """

    point: str
    kind: str
    on_hit: int = 1
    times: int = 1
    mode: str = MODE_FLIP
    seed: int = 0

    def __post_init__(self) -> None:
        if self.point not in _KNOWN_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; known points: "
                f"{sorted(_KNOWN_POINTS)}"
            )
        if self.kind not in (KIND_CRASH, KIND_TRANSIENT, KIND_CORRUPT):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind == KIND_CORRUPT:
            if self.point not in _CORRUPTION_ONLY:
                raise ValueError(
                    f"corrupt rules need a corruption point (bytes must "
                    f"flow); {self.point!r} is not one of "
                    f"{sorted(_CORRUPTION_ONLY)}"
                )
            if self.mode not in CORRUPTION_MODES:
                raise ValueError(
                    f"unknown corruption mode {self.mode!r}; known modes: "
                    f"{list(CORRUPTION_MODES)}"
                )
        if self.on_hit < 1 or self.times < 1:
            raise ValueError("on_hit and times must be >= 1")

    def should_fire(self, hit: int) -> bool:
        if self.kind == KIND_CRASH:
            return hit == self.on_hit
        return self.on_hit <= hit < self.on_hit + self.times


class FaultPlan:
    """A deterministic schedule of faults over the registered points."""

    def __init__(self, rules: Sequence[FaultRule] = ()) -> None:
        self._rules: Dict[str, List[FaultRule]] = {}
        for rule in rules:
            self._rules.setdefault(rule.point, []).append(rule)
        #: traversal count per fault point (hits, fired or not)
        self.hits: Counter = Counter()
        #: chronological ``(point, kind, hit_number)`` firing log
        self.fired: List[Tuple[str, str, int]] = []
        #: scheduler workers traverse points concurrently; the decision
        #: "does hit N fire?" must be atomic per point
        self._lock = threading.Lock()

    # -- construction ------------------------------------------------------

    @classmethod
    def crash(cls, point: str, on_hit: int = 1) -> "FaultPlan":
        return cls([FaultRule(point, KIND_CRASH, on_hit)])

    @classmethod
    def transient(
        cls, point: str, on_hit: int = 1, times: int = 1
    ) -> "FaultPlan":
        return cls([FaultRule(point, KIND_TRANSIENT, on_hit, times)])

    @classmethod
    def corrupt(
        cls,
        point: str,
        mode: str = MODE_FLIP,
        on_hit: int = 1,
        times: int = 1,
        seed: int = 0,
    ) -> "FaultPlan":
        return cls([
            FaultRule(point, KIND_CORRUPT, on_hit, times, mode=mode,
                      seed=seed)
        ])

    @classmethod
    def random_plan(
        cls,
        seed: int,
        points: Sequence[str] = FAULT_POINTS,
        max_hit: int = 3,
        transient_probability: float = 0.0,
    ) -> "FaultPlan":
        """A seeded one-fault schedule: same seed, same schedule."""
        rng = random.Random(seed)
        point = rng.choice(list(points))
        on_hit = rng.randint(1, max_hit)
        if rng.random() < transient_probability:
            return cls.transient(point, on_hit, times=rng.randint(1, 2))
        return cls.crash(point, on_hit)

    @classmethod
    def random_corruption_plan(
        cls,
        seed: int,
        points: Sequence[str] = CORRUPTION_POINTS,
        max_hit: int = 3,
    ) -> "FaultPlan":
        """A seeded one-corruption schedule: same seed, same damage."""
        rng = random.Random(seed)
        return cls.corrupt(
            rng.choice(list(points)),
            mode=rng.choice(CORRUPTION_MODES),
            on_hit=rng.randint(1, max_hit),
            seed=rng.randrange(2 ** 31),
        )

    def add_crash(self, point: str, on_hit: int = 1) -> "FaultPlan":
        self._rules.setdefault(point, []).append(
            FaultRule(point, KIND_CRASH, on_hit)
        )
        return self

    def add_corrupt(
        self,
        point: str,
        mode: str = MODE_FLIP,
        on_hit: int = 1,
        times: int = 1,
        seed: int = 0,
    ) -> "FaultPlan":
        self._rules.setdefault(point, []).append(
            FaultRule(point, KIND_CORRUPT, on_hit, times, mode=mode,
                      seed=seed)
        )
        return self

    def add_transient(
        self, point: str, on_hit: int = 1, times: int = 1
    ) -> "FaultPlan":
        self._rules.setdefault(point, []).append(
            FaultRule(point, KIND_TRANSIENT, on_hit, times)
        )
        return self

    # -- firing ------------------------------------------------------------

    def _claim(self, point: str) -> Tuple[Optional[FaultRule], int]:
        """Count one traversal and decide atomically whether a rule fires."""
        with self._lock:
            self.hits[point] += 1
            count = self.hits[point]
            for rule in self._rules.get(point, ()):
                if rule.should_fire(count):
                    self.fired.append((point, rule.kind, count))
                    return rule, count
        return None, count

    def hit(self, point: str) -> None:
        """Record one traversal of *point*; raise if a rule schedules it.

        Thread-safe: the count-and-decide step runs under a lock so two
        concurrent traversals can never both claim the same hit number;
        the fault itself is raised outside the lock.
        """
        firing, count = self._claim(point)
        if firing is None:
            return
        if firing.kind == KIND_CRASH:
            raise CrashFault(f"injected crash at {point!r} (hit {count})")
        if firing.kind == KIND_CORRUPT:
            # corruption needs bytes to damage; a data-less traversal
            # cannot honour the rule, so the plan is broken — fail loudly
            raise CorruptionFault(
                f"corrupt rule scheduled at {point!r} but the traversal "
                "carries no bytes (use corruption_point at this call site)"
            )
        raise TransientFault(
            f"injected transient fault at {point!r} (hit {count})"
        )

    def hit_with_data(self, point: str, data: bytes) -> bytes:
        """Like :meth:`hit`, for traversals that carry payload bytes.

        Crash/transient rules raise exactly as at a plain fault point; a
        corrupt rule silently returns damaged bytes — the caller stores
        them none the wiser, which is the whole point.
        """
        firing, count = self._claim(point)
        if firing is None:
            return data
        if firing.kind == KIND_CRASH:
            raise CrashFault(f"injected crash at {point!r} (hit {count})")
        if firing.kind == KIND_TRANSIENT:
            raise TransientFault(
                f"injected transient fault at {point!r} (hit {count})"
            )
        # string seed: random.Random accepts no tuples, and the damage
        # must differ per (rule, point, traversal) while staying
        # reproducible for a given plan
        return damage_bytes(
            data, firing.mode, random.Random(f"{firing.seed}:{point}:{count}")
        )

    @property
    def crash_fired(self) -> bool:
        return any(kind == KIND_CRASH for _, kind, _ in self.fired)

    @property
    def corruption_fired(self) -> bool:
        return any(kind == KIND_CORRUPT for _, kind, _ in self.fired)

    @property
    def points(self) -> List[str]:
        return sorted(self._rules)


# -- activation ---------------------------------------------------------------

#: the active plan; ``None`` keeps every fault point a no-op check
_plan: Optional[FaultPlan] = None


def fault_point(name: str) -> None:
    """Traverse the named fault point.

    The disabled path is deliberately minimal — one module-global load
    and a ``None`` comparison — so leaving the points woven into hot
    paths (``blobs.intern``, staging writes) costs nothing measurable.
    """
    if _plan is not None:
        _plan.hit(name)


def corruption_point(name: str, data: bytes) -> bytes:
    """Traverse a corruption point, passing payload bytes through it.

    With no active plan this is the same one-load-one-check no-op as
    :func:`fault_point` — the bytes come back untouched by identity.
    Under a plan, crash/transient rules raise as usual and corrupt rules
    return deterministically damaged bytes that the caller writes to
    storage without noticing, modelling bit-rot, truncation and torn
    writes at rest.
    """
    if _plan is not None:
        return _plan.hit_with_data(name, data)
    return data


def damage_bytes(data: bytes, mode: str, rng: random.Random) -> bytes:
    """Deterministically damage *data* in *mode*; always changes bytes.

    ``flip`` inverts one random bit, ``truncate`` cuts the tail at a
    random offset, ``zero`` overwrites a random span with NULs.  Damage
    that would leave the bytes identical (zeroing an already-zero span,
    truncating nothing) falls back to a bit flip so an injected
    corruption can never silently be a no-op; empty payloads grow one
    poison byte, the only change an empty file can suffer short of
    deletion.
    """
    if mode not in CORRUPTION_MODES:
        raise ValueError(f"unknown corruption mode {mode!r}")
    if not data:
        return b"\x00"
    if mode == MODE_TRUNCATE:
        return data[: rng.randrange(len(data))]
    buffer = bytearray(data)
    if mode == MODE_ZERO:
        start = rng.randrange(len(buffer))
        span = rng.randint(1, min(64, len(buffer) - start))
        buffer[start:start + span] = b"\x00" * span
        if bytes(buffer) == data:  # span was already zero: force a change
            buffer[start] ^= 0xFF
        return bytes(buffer)
    index = rng.randrange(len(buffer))
    buffer[index] ^= 1 << rng.randrange(8)
    return bytes(buffer)


def active_plan() -> Optional[FaultPlan]:
    return _plan


def activate(plan: FaultPlan) -> None:
    global _plan
    _plan = plan


def deactivate() -> None:
    global _plan
    _plan = None


@contextlib.contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate *plan* for the duration of the block (always deactivates)."""
    activate(plan)
    try:
        yield plan
    finally:
        deactivate()


# -- retry boundary -----------------------------------------------------------

#: default retry budget at staging/tool retry boundaries
DEFAULT_RETRY_ATTEMPTS = 3


def with_retries(
    fn: Callable[[], T],
    clock=None,
    attempts: int = DEFAULT_RETRY_ATTEMPTS,
) -> T:
    """Run *fn*, retrying :class:`TransientFault` with bounded backoff.

    Backoff between attempts is charged to the simulated *clock* (when
    given) via :meth:`repro.clock.SimClock.charge_retry_backoff`, so a
    glitchy-but-recovering run shows up as latency, exactly like a real
    retry loop would.  :class:`CrashFault` (and everything else) passes
    straight through: a dead process does not retry.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    for attempt in range(attempts):
        try:
            return fn()
        except TransientFault:
            if attempt == attempts - 1:
                raise
            if clock is not None:
                clock.charge_retry_backoff(attempt)
    raise AssertionError("unreachable")  # pragma: no cover
