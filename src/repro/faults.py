"""Deterministic crash/transient fault injection for the coupling kernel.

The paper's value proposition is that the master/slave coupling keeps
JCF's design management and FMCAD's tool data *consistent* — which is
only credible if the protocol survives dying between its steps.  This
module provides the harness the crash-consistency suite drives:

* **Fault points** are named places woven through the coupled protocol
  (``checkout.after_checkin``, ``harvest.before_import``,
  ``staging.write``, ``blobs.intern``, ...).  Each call site invokes
  :func:`fault_point`, which is a single global load plus a ``None``
  check when no plan is active — ``bench_faults.py`` asserts the
  disabled overhead stays under 2% of a coupled run.
* A :class:`FaultPlan` is a deterministic schedule: rules that raise
  :class:`CrashFault` or :class:`TransientFault` on the *n*-th traversal
  of a fault point.  Seeded random plans (:meth:`FaultPlan.random_plan`)
  give reproducible chaos for the hypothesis suite.
* :class:`CrashFault` simulates the process dying at that instant: the
  protocol code deliberately performs **no** cleanup for it (open OMS
  transactions self-abort, which models the database's own crash
  recovery; everything else — tickets, sessions, staged files, FMCAD
  version files — stays broken until
  :class:`repro.core.recovery.CouplingRecovery` repairs it).
* :class:`TransientFault` simulates a recoverable glitch (NFS hiccup,
  tool license blip).  Retry boundaries call :func:`with_retries`, which
  retries with bounded exponential backoff charged to the simulated
  clock.

Not to be confused with :mod:`repro.tools.simulator.faults`, which
models stuck-at faults in simulated *circuits*; this module injects
faults into the *framework* itself.
"""

from __future__ import annotations

import contextlib
import dataclasses
import random
import threading
from collections import Counter
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, TypeVar

from repro.errors import ReproError

T = TypeVar("T")


class FaultError(ReproError):
    """Base class for injected faults."""


class CrashFault(FaultError):
    """Simulated process death: no application-level cleanup may run."""


class TransientFault(FaultError):
    """Simulated recoverable glitch: retry boundaries may retry it."""


KIND_CRASH = "crash"
KIND_TRANSIENT = "transient"

#: Every fault point woven through the production code, by subsystem.
#: ``FaultPlan`` validates rule names against this registry so a typo in
#: a test schedules a fault that can never fire loudly, not silently.
FAULT_POINTS: Tuple[str, ...] = (
    # coupled tool run (core/encapsulation.py)
    "run.after_start",        # activity started, intent not yet journalled
    "run.before_finish",      # outputs durable+tagged, derivation not recorded
    "harvest.after_checkout", # ticket held, nothing written
    "harvest.after_checkin",  # FMCAD version exists, OMS import pending
    "harvest.before_import",  # ditto, after the .meta flush
    "harvest.after_import",   # OMS version created (uncommitted)
    "harvest.before_tag",     # both sides committed, cross-tag missing
    # FMCAD checkout protocol (fmcad/checkout.py)
    "checkout.after_grant",   # ticket registered, cellview locked
    "checkout.after_checkin", # version written, ticket still open
    # staging I/O (oms/storage.py)
    "staging.write",          # staged file written, not yet recorded
    "staging.import",         # import requested, database not yet written
    # payload interning (oms/blobs.py)
    "blobs.intern",
    # project exchange (core/exchange.py)
    "exchange.write",         # archive member about to be written
    "exchange.before_import", # manifest read, nothing imported yet
)

_KNOWN_POINTS = frozenset(FAULT_POINTS)


@dataclasses.dataclass
class FaultRule:
    """Fire *kind* at *point*, starting on the ``on_hit``-th traversal.

    A transient rule fires ``times`` consecutive traversals (so
    ``times`` smaller than the retry budget exercises recovery-by-retry,
    and ``times`` >= the budget exercises retry exhaustion); a crash
    rule fires exactly once — the process is dead afterwards.
    """

    point: str
    kind: str
    on_hit: int = 1
    times: int = 1

    def __post_init__(self) -> None:
        if self.point not in _KNOWN_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; known points: "
                f"{sorted(_KNOWN_POINTS)}"
            )
        if self.kind not in (KIND_CRASH, KIND_TRANSIENT):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.on_hit < 1 or self.times < 1:
            raise ValueError("on_hit and times must be >= 1")

    def should_fire(self, hit: int) -> bool:
        if self.kind == KIND_CRASH:
            return hit == self.on_hit
        return self.on_hit <= hit < self.on_hit + self.times


class FaultPlan:
    """A deterministic schedule of faults over the registered points."""

    def __init__(self, rules: Sequence[FaultRule] = ()) -> None:
        self._rules: Dict[str, List[FaultRule]] = {}
        for rule in rules:
            self._rules.setdefault(rule.point, []).append(rule)
        #: traversal count per fault point (hits, fired or not)
        self.hits: Counter = Counter()
        #: chronological ``(point, kind, hit_number)`` firing log
        self.fired: List[Tuple[str, str, int]] = []
        #: scheduler workers traverse points concurrently; the decision
        #: "does hit N fire?" must be atomic per point
        self._lock = threading.Lock()

    # -- construction ------------------------------------------------------

    @classmethod
    def crash(cls, point: str, on_hit: int = 1) -> "FaultPlan":
        return cls([FaultRule(point, KIND_CRASH, on_hit)])

    @classmethod
    def transient(
        cls, point: str, on_hit: int = 1, times: int = 1
    ) -> "FaultPlan":
        return cls([FaultRule(point, KIND_TRANSIENT, on_hit, times)])

    @classmethod
    def random_plan(
        cls,
        seed: int,
        points: Sequence[str] = FAULT_POINTS,
        max_hit: int = 3,
        transient_probability: float = 0.0,
    ) -> "FaultPlan":
        """A seeded one-fault schedule: same seed, same schedule."""
        rng = random.Random(seed)
        point = rng.choice(list(points))
        on_hit = rng.randint(1, max_hit)
        if rng.random() < transient_probability:
            return cls.transient(point, on_hit, times=rng.randint(1, 2))
        return cls.crash(point, on_hit)

    def add_crash(self, point: str, on_hit: int = 1) -> "FaultPlan":
        self._rules.setdefault(point, []).append(
            FaultRule(point, KIND_CRASH, on_hit)
        )
        return self

    def add_transient(
        self, point: str, on_hit: int = 1, times: int = 1
    ) -> "FaultPlan":
        self._rules.setdefault(point, []).append(
            FaultRule(point, KIND_TRANSIENT, on_hit, times)
        )
        return self

    # -- firing ------------------------------------------------------------

    def hit(self, point: str) -> None:
        """Record one traversal of *point*; raise if a rule schedules it.

        Thread-safe: the count-and-decide step runs under a lock so two
        concurrent traversals can never both claim the same hit number;
        the fault itself is raised outside the lock.
        """
        with self._lock:
            self.hits[point] += 1
            rules = self._rules.get(point)
            if not rules:
                return
            count = self.hits[point]
            firing: Optional[FaultRule] = None
            for rule in rules:
                if rule.should_fire(count):
                    firing = rule
                    self.fired.append((point, rule.kind, count))
                    break
        if firing is None:
            return
        if firing.kind == KIND_CRASH:
            raise CrashFault(f"injected crash at {point!r} (hit {count})")
        raise TransientFault(
            f"injected transient fault at {point!r} (hit {count})"
        )

    @property
    def crash_fired(self) -> bool:
        return any(kind == KIND_CRASH for _, kind, _ in self.fired)

    @property
    def points(self) -> List[str]:
        return sorted(self._rules)


# -- activation ---------------------------------------------------------------

#: the active plan; ``None`` keeps every fault point a no-op check
_plan: Optional[FaultPlan] = None


def fault_point(name: str) -> None:
    """Traverse the named fault point.

    The disabled path is deliberately minimal — one module-global load
    and a ``None`` comparison — so leaving the points woven into hot
    paths (``blobs.intern``, staging writes) costs nothing measurable.
    """
    if _plan is not None:
        _plan.hit(name)


def active_plan() -> Optional[FaultPlan]:
    return _plan


def activate(plan: FaultPlan) -> None:
    global _plan
    _plan = plan


def deactivate() -> None:
    global _plan
    _plan = None


@contextlib.contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate *plan* for the duration of the block (always deactivates)."""
    activate(plan)
    try:
        yield plan
    finally:
        deactivate()


# -- retry boundary -----------------------------------------------------------

#: default retry budget at staging/tool retry boundaries
DEFAULT_RETRY_ATTEMPTS = 3


def with_retries(
    fn: Callable[[], T],
    clock=None,
    attempts: int = DEFAULT_RETRY_ATTEMPTS,
) -> T:
    """Run *fn*, retrying :class:`TransientFault` with bounded backoff.

    Backoff between attempts is charged to the simulated *clock* (when
    given) via :meth:`repro.clock.SimClock.charge_retry_backoff`, so a
    glitchy-but-recovering run shows up as latency, exactly like a real
    retry loop would.  :class:`CrashFault` (and everything else) passes
    straight through: a dead process does not retry.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    for attempt in range(attempts):
        try:
            return fn()
        except TransientFault:
            if attempt == attempts - 1:
                raise
            if clock is not None:
                clock.charge_retry_backoff(attempt)
    raise AssertionError("unreachable")  # pragma: no cover
