"""Per-shard health accounting: a closed→open→half-open circuit breaker.

A wedged shard — its scheduler crashing every wave, its storage path
poisoned — must not be allowed to eat every request hashed to it while
healthy shards idle.  Each shard runtime carries a :class:`CircuitBreaker`:

* **closed** — normal service; consecutive batch failures are counted,
  and at ``threshold`` the breaker trips open.
* **open** — every admit is refused with a typed
  :class:`~repro.errors.ShardUnavailableError` whose ``retry_after_ms``
  points past the cooldown, so clients back off instead of piling on.
* **half-open** — after the cooldown one *probe* request is let through;
  success closes the breaker, failure re-opens it for another cooldown.

A "failure" is batch-level: ``run_many`` raising, or any run in the
wave crashing (``RUN_CRASHED``).  Tool failures (``RUN_FAILED``) are the
design's problem, not the shard's, and do not count.

All timestamps are caller-supplied and live on the engine's admission
timeline (wall time under the asyncio server, submit time under the
deterministic pump) — never on the simulated shard lanes, whose large
synthetic values would push the cooldown out of reach.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ShardUnavailableError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure-counting state machine fencing one shard."""

    def __init__(
        self,
        shard_id: int,
        threshold: int = 3,
        cooldown_ms: float = 5_000.0,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1: {threshold!r}")
        if cooldown_ms <= 0:
            raise ValueError(f"cooldown_ms must be positive: {cooldown_ms!r}")
        self.shard_id = shard_id
        self.threshold = threshold
        self.cooldown_ms = cooldown_ms
        self.state = CLOSED
        self.consecutive_failures = 0
        self.open_until_ms = 0.0
        self._probe_in_flight = False
        self.trips = 0
        self.probes = 0
        self.rejected = 0
        self.recoveries = 0

    def admit(self, now_ms: float) -> None:
        """Gate one request; raises ShardUnavailableError when fenced.

        Transitions open→half-open lazily once the cooldown has elapsed;
        in half-open exactly one probe is admitted and later arrivals
        are refused until it settles.
        """
        if self.state == OPEN:
            if now_ms < self.open_until_ms:
                self.rejected += 1
                raise ShardUnavailableError(
                    f"shard {self.shard_id} is fenced "
                    f"({self.consecutive_failures} consecutive failures)",
                    shard_id=self.shard_id,
                    state=OPEN,
                    retry_after_ms=max(self.open_until_ms - now_ms, 0.0),
                )
            self.state = HALF_OPEN
            self._probe_in_flight = False
        if self.state == HALF_OPEN:
            if self._probe_in_flight:
                self.rejected += 1
                raise ShardUnavailableError(
                    f"shard {self.shard_id} is half-open with a probe "
                    f"in flight",
                    shard_id=self.shard_id,
                    state=HALF_OPEN,
                    retry_after_ms=self.cooldown_ms,
                )
            self._probe_in_flight = True
            self.probes += 1

    def record_success(self, now_ms: float) -> None:
        """A batch completed without crashes; heal the shard."""
        if self.state == HALF_OPEN:
            self.recoveries += 1
        self.state = CLOSED
        self.consecutive_failures = 0
        self._probe_in_flight = False

    def record_failure(self, now_ms: float) -> None:
        """A batch crashed; trip the breaker at the threshold."""
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or self.consecutive_failures >= self.threshold:
            self.state = OPEN
            self.open_until_ms = now_ms + self.cooldown_ms
            self._probe_in_flight = False
            self.trips += 1

    def stats(self) -> Dict[str, object]:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "trips": self.trips,
            "probes": self.probes,
            "rejected": self.rejected,
            "recoveries": self.recoveries,
        }
