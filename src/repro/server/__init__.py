"""Design server: a multi-session front end over the coupled framework.

The paper's Section 3.1 premise is many designers working concurrently
against one coupled framework; everything below this package is still
library-style and in-process.  ``repro.server`` adds the served layer:

* :mod:`repro.server.shards` — consistent-hash shard map over library
  names; independent teams land on independent shards;
* :mod:`repro.server.admission` — bounded per-shard queues and
  token-bucket admission (typed fail-fast rejection, never collapse);
* :mod:`repro.server.coalescer` — size- and deadline-bounded batch
  windows that flush one ``run_many`` wave per shard;
* :mod:`repro.server.leases` — per-(library, cell) checkout leases with
  heartbeat renewal and fencing tokens (zombie sessions cannot clobber
  their successors);
* :mod:`repro.server.health` — per-shard circuit breakers fencing a
  wedged shard while healthy shards keep serving;
* :mod:`repro.server.engine` — :class:`ServeEngine`, the transport-free
  core multiplexing sessions onto shards (deterministic conductor mode
  for byte-identical replays, threaded mode for wall-clock serving);
* :mod:`repro.server.protocol` — the line-delimited JSON wire format
  and the named-script catalog;
* :mod:`repro.server.design_server` — :class:`DesignServer`, the
  asyncio streams front end (``repro serve``).
"""

from repro.server.admission import AdmissionController, TokenBucket
from repro.server.coalescer import ShardBatcher
from repro.server.engine import PendingRun, ServeEngine, SessionContext
from repro.server.health import CircuitBreaker
from repro.server.leases import Lease, LeaseTable, lease_key
from repro.server.protocol import ScriptCatalog, decode_line, encode_frame
from repro.server.shards import ShardMap

__all__ = [
    "AdmissionController",
    "TokenBucket",
    "ShardBatcher",
    "PendingRun",
    "ServeEngine",
    "SessionContext",
    "CircuitBreaker",
    "Lease",
    "LeaseTable",
    "lease_key",
    "ScriptCatalog",
    "decode_line",
    "encode_frame",
    "ShardMap",
    "DesignServer",
]


def __getattr__(name):
    # DesignServer pulls in asyncio; import lazily so the deterministic
    # engine path stays import-light for the benchmarks.
    if name == "DesignServer":
        from repro.server.design_server import DesignServer

        return DesignServer
    raise AttributeError(name)
