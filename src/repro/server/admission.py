"""Admission control: bounded queues and token-bucket backpressure.

The serving contract is *fail fast, never collapse*: when a shard is
saturated the server refuses new work with a typed
:class:`~repro.errors.ServerOverloadError` the client can retry against,
instead of queueing without bound until every admitted request's latency
is ruined.  Two mechanisms compose:

* a **bounded queue** per shard — a hard cap on requests admitted but
  not yet completed (queued in a batch window plus in flight);
* an optional **token bucket** — a sustained-rate limit with a burst
  allowance, refilled from the caller-supplied clock.

Both run on *simulated* time supplied by the caller, so admission
decisions are deterministic under replay: the same arrival schedule
produces the same rejections regardless of host speed.  The asyncio
front end feeds real time instead; the code cannot tell the difference.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.errors import ServerOverloadError


class TokenBucket:
    """Classic token bucket on caller-supplied timestamps (ms)."""

    def __init__(
        self,
        rate_per_s: float,
        burst: float,
        start_ms: float = 0.0,
    ) -> None:
        if rate_per_s <= 0:
            raise ValueError(f"rate must be positive: {rate_per_s!r}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1: {burst!r}")
        self.rate_per_s = rate_per_s
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last_ms = start_ms

    def _refill(self, now_ms: float) -> None:
        if now_ms > self._last_ms:
            self._tokens = min(
                self.burst,
                self._tokens + (now_ms - self._last_ms) * self.rate_per_s / 1000.0,
            )
            self._last_ms = now_ms

    def try_take(self, now_ms: float, tokens: float = 1.0) -> bool:
        """Take *tokens* if available at *now_ms*; never blocks."""
        self._refill(now_ms)
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def ms_until_available(self, now_ms: float, tokens: float = 1.0) -> float:
        """Advisory wait until *tokens* would be available (retry hint)."""
        self._refill(now_ms)
        deficit = tokens - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit * 1000.0 / self.rate_per_s

    @property
    def tokens(self) -> float:
        return self._tokens


class AdmissionController:
    """Per-shard admission gate: bounded depth + optional token bucket.

    ``depth`` counts admitted-but-not-completed requests; callers pair
    every successful :meth:`admit` with exactly one :meth:`complete`.
    :meth:`close` flips the controller into draining mode — everything
    still queued or in flight proceeds, new work is refused — which is
    the graceful-shutdown half of the backpressure story.
    """

    def __init__(
        self,
        shard_id: int,
        queue_depth: int,
        bucket: Optional[TokenBucket] = None,
    ) -> None:
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1: {queue_depth!r}")
        self.shard_id = shard_id
        self.queue_depth = queue_depth
        self.bucket = bucket
        self._mutex = threading.Lock()
        self._depth = 0
        self._closed = False
        self.admitted = 0
        self.completed = 0
        self.high_water = 0
        self.rejected: Dict[str, int] = {
            "queue-full": 0,
            "throttled": 0,
            "draining": 0,
        }

    @property
    def depth(self) -> int:
        return self._depth

    @property
    def closed(self) -> bool:
        return self._closed

    def admit(self, now_ms: float) -> None:
        """Admit one request at *now_ms* or raise ``ServerOverloadError``."""
        with self._mutex:
            if self._closed:
                self.rejected["draining"] += 1
                raise ServerOverloadError(
                    f"shard {self.shard_id} is draining for shutdown",
                    shard_id=self.shard_id,
                    reason="draining",
                )
            if self._depth >= self.queue_depth:
                self.rejected["queue-full"] += 1
                raise ServerOverloadError(
                    f"shard {self.shard_id} queue full "
                    f"({self._depth}/{self.queue_depth})",
                    shard_id=self.shard_id,
                    reason="queue-full",
                    # the queue drains a batch at a time; one window is
                    # the honest granularity of "try again later"
                    retry_after_ms=1000.0,
                )
            if self.bucket is not None and not self.bucket.try_take(now_ms):
                self.rejected["throttled"] += 1
                raise ServerOverloadError(
                    f"shard {self.shard_id} over admission rate",
                    shard_id=self.shard_id,
                    reason="throttled",
                    retry_after_ms=self.bucket.ms_until_available(now_ms),
                )
            self._depth += 1
            self.admitted += 1
            self.high_water = max(self.high_water, self._depth)

    def complete(self, count: int = 1) -> None:
        """Mark *count* admitted requests finished (success or failure)."""
        with self._mutex:
            if count > self._depth:
                raise ValueError(
                    f"completing {count} with only {self._depth} in flight"
                )
            self._depth -= count
            self.completed += count

    def close(self) -> None:
        """Refuse all future admissions (drain mode)."""
        with self._mutex:
            self._closed = True

    def stats(self) -> Dict[str, object]:
        with self._mutex:
            return {
                "shard": self.shard_id,
                "depth": self._depth,
                "queue_depth": self.queue_depth,
                "high_water": self.high_water,
                "admitted": self.admitted,
                "completed": self.completed,
                "rejected": dict(self.rejected),
                "draining": self._closed,
            }
