"""Checkout leases: per-(library, cell) write claims with fencing tokens.

The FMCAD checkout model (one writer per cellview) was designed for
in-process sessions that cannot vanish.  Served sessions can: a client
that goes silent mid-edit would pin its cells forever.  A **lease** is
the served form of that claim — a time-bounded grant a session must keep
renewing (the protocol's ``ping`` heartbeat) and that the server
reclaims on expiry so successors can make progress.

Expiry alone is not enough: the network cannot distinguish a dead
session from a slow one, so a "zombie" whose lease expired may still
come back and try to commit over its successor's work.  Every lease
therefore carries a **fencing token** — a per-key counter that only ever
increases across grants.  Commits present the token their lease was
granted with; :meth:`LeaseTable.validate` rejects any token that is not
the key's *current, unexpired* grant with a typed
:class:`~repro.errors.LeaseFencedError`.  The check runs twice: once
when the serving engine assembles a batch, and again inside the FMCAD
checkin path itself (the armed expectations installed via :meth:`arm`),
so even a batch that outlives its leases cannot clobber a successor.

Time is caller-supplied (simulated in the deterministic engine and the
unit tests, wall-clock in the asyncio server); expiry rides the shared
:class:`~repro.clock.DeadlineTimers` lane, so no test ever sleeps.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Callable, Dict, List, Optional

from repro.clock import DeadlineTimers
from repro.errors import LeaseError, LeaseFencedError, LeaseHeldError

#: default lease lifetime between heartbeats
LEASE_TTL_MS = 30_000.0


def lease_key(library_name: str, cell_name: str) -> str:
    """The lease key for a cell — identical to the scheduler's write key."""
    return f"cell/{library_name}/{cell_name}"


@dataclasses.dataclass
class Lease:
    """One live (or reclaimed) per-cell write claim."""

    key: str
    session_id: str
    user: str
    token: int
    granted_ms: float
    expires_ms: float
    renewals: int = 0

    def expired(self, now_ms: float) -> bool:
        return now_ms >= self.expires_ms


class LeaseTable:
    """All live leases, their fencing tokens and their expiry timers.

    ``now_fn`` (optional) makes the table self-clocking for callers that
    have no timestamp at hand — recovery and the consistency audit run
    long after the engine that granted the leases — while every protocol
    method still accepts an explicit ``now_ms`` for deterministic tests.
    Without ``now_fn`` the table remembers the latest timestamp it was
    shown, so time never runs backwards.
    """

    def __init__(
        self,
        ttl_ms: float = LEASE_TTL_MS,
        now_fn: Optional[Callable[[], float]] = None,
        timers: Optional[DeadlineTimers] = None,
    ) -> None:
        if ttl_ms <= 0:
            raise ValueError(f"ttl_ms must be positive: {ttl_ms!r}")
        self.ttl_ms = ttl_ms
        self._now_fn = now_fn
        self._mutex = threading.Lock()
        self._live: Dict[str, Lease] = {}
        #: next fencing token per key — survives expiry and release, so a
        #: re-granted key always carries a strictly larger token
        self._fence: Dict[str, int] = {}
        #: commit-time expectations armed per in-flight batch (key->token)
        self._armed: Dict[str, int] = {}
        self.timers = timers if timers is not None else DeadlineTimers()
        self._last_now = 0.0
        self.granted = 0
        self.renewed = 0
        self.released = 0
        self.reclaimed = 0
        self.conflicts = 0
        self.fenced_commits = 0

    # -- time --------------------------------------------------------------

    def now(self) -> float:
        """The table's best notion of 'now' (for clockless callers)."""
        if self._now_fn is not None:
            return self._now_fn()
        return self._last_now

    def _resolve_now(self, now_ms: Optional[float]) -> float:
        now = self.now() if now_ms is None else now_ms
        if now > self._last_now:
            self._last_now = now
        return now

    # -- grant / renew / release -------------------------------------------

    def acquire(
        self,
        session_id: str,
        user: str,
        library_name: str,
        cell_name: str,
        now_ms: Optional[float] = None,
        ttl_ms: Optional[float] = None,
    ) -> Lease:
        """Grant (or renew, for the holder) the lease on one cell.

        Raises :class:`~repro.errors.LeaseHeldError` while another
        session's unexpired lease covers the key; the ``retry_after_ms``
        hint is the time left until that lease expires on its own.
        """
        key = lease_key(library_name, cell_name)
        ttl = self.ttl_ms if ttl_ms is None else float(ttl_ms)
        with self._mutex:
            now = self._resolve_now(now_ms)
            self._reclaim_due(now)
            existing = self._live.get(key)
            if existing is not None:
                if existing.session_id != session_id:
                    self.conflicts += 1
                    raise LeaseHeldError(
                        f"lease on {key} is held by session "
                        f"{existing.session_id} ({existing.user}) until "
                        f"{existing.expires_ms:.0f}ms",
                        key=key,
                        holder=existing.session_id,
                        retry_after_ms=max(existing.expires_ms - now, 0.0),
                    )
                existing.expires_ms = now + ttl
                existing.renewals += 1
                self.renewed += 1
                self.timers.schedule(key, existing.expires_ms)
                return existing
            token = self._fence.get(key, 0) + 1
            self._fence[key] = token
            lease = Lease(
                key=key,
                session_id=session_id,
                user=user,
                token=token,
                granted_ms=now,
                expires_ms=now + ttl,
            )
            self._live[key] = lease
            self.timers.schedule(key, lease.expires_ms)
            self.granted += 1
            return lease

    def renew(
        self,
        session_id: str,
        now_ms: Optional[float] = None,
        ttl_ms: Optional[float] = None,
    ) -> int:
        """Heartbeat: extend every live lease *session_id* holds."""
        ttl = self.ttl_ms if ttl_ms is None else float(ttl_ms)
        count = 0
        with self._mutex:
            now = self._resolve_now(now_ms)
            self._reclaim_due(now)
            for lease in self._live.values():
                if lease.session_id != session_id:
                    continue
                lease.expires_ms = now + ttl
                lease.renewals += 1
                self.timers.schedule(lease.key, lease.expires_ms)
                count += 1
            self.renewed += count
        return count

    def release(self, session_id: str, key: str) -> bool:
        """Drop one lease early; only its holder may release it."""
        with self._mutex:
            lease = self._live.get(key)
            if lease is None or lease.session_id != session_id:
                return False
            del self._live[key]
            self.timers.cancel(key)
            self.released += 1
            return True

    def release_session(self, session_id: str) -> int:
        """Drop every lease *session_id* holds (graceful ``bye``)."""
        count = 0
        with self._mutex:
            for key in [
                k for k, lease in self._live.items()
                if lease.session_id == session_id
            ]:
                del self._live[key]
                self.timers.cancel(key)
                count += 1
            self.released += count
        return count

    # -- expiry reclamation ------------------------------------------------

    def reclaim_due(self, now_ms: Optional[float] = None) -> List[Lease]:
        """Reclaim every expired lease; returns what was reclaimed.

        Driven by the engine pump, by :meth:`CouplingRecovery.recover`
        and lazily by every grant path, so a dead session's claims are
        released the moment anyone looks.
        """
        with self._mutex:
            now = self._resolve_now(now_ms)
            return self._reclaim_due(now)

    def _reclaim_due(self, now_ms: float) -> List[Lease]:
        reclaimed: List[Lease] = []
        for key in self.timers.pop_due(now_ms):
            lease = self._live.get(key)
            if lease is None:
                continue
            if lease.expired(now_ms):
                del self._live[key]
                reclaimed.append(lease)
            else:  # renewed after this timer was armed; re-arm
                self.timers.schedule(key, lease.expires_ms)
        self.reclaimed += len(reclaimed)
        return reclaimed

    # -- fencing -----------------------------------------------------------

    def assert_writable(
        self, session_id: str, key: str, now_ms: Optional[float] = None
    ) -> None:
        """A lease is an *exclusive* write claim: refuse non-holders.

        Raises :class:`~repro.errors.LeaseHeldError` when another
        session's unexpired lease covers *key* — even for writers that
        never leased anything themselves, so a zombie whose own lease
        already expired (and whose token is therefore gone) still cannot
        submit over its successor's claim.
        """
        with self._mutex:
            now = self._resolve_now(now_ms)
            self._reclaim_due(now)
            lease = self._live.get(key)
            if lease is not None and lease.session_id != session_id:
                self.conflicts += 1
                raise LeaseHeldError(
                    f"{key} is leased to session {lease.session_id} "
                    f"({lease.user}) until {lease.expires_ms:.0f}ms",
                    key=key,
                    holder=lease.session_id,
                    retry_after_ms=max(lease.expires_ms - now, 0.0),
                )

    def token_of(self, session_id: str, key: str) -> Optional[int]:
        """The fencing token of *session_id*'s live lease on *key*."""
        with self._mutex:
            lease = self._live.get(key)
            if lease is None or lease.session_id != session_id:
                return None
            return lease.token

    def validate(
        self, key: str, token: int, now_ms: Optional[float] = None
    ) -> None:
        """Commit-time fence: *token* must be the current, unexpired grant."""
        with self._mutex:
            now = self._resolve_now(now_ms)
            lease = self._live.get(key)
            current = lease.token if lease is not None else 0
            if lease is None or lease.token != token or lease.expired(now):
                self.fenced_commits += 1
                raise LeaseFencedError(
                    f"fencing token {token} for {key} is stale "
                    f"(current grant: {current or 'none'})",
                    key=key,
                    token=token,
                    current=current,
                )

    def arm(self, key: str, token: int) -> None:
        """Expect commits on *key* to hold *token* until :meth:`disarm`.

        The serving engine arms a batch's leased keys before running its
        wave; the FMCAD checkin guard validates against the expectation
        at the instant the version is written.  Safe across the shard's
        scheduler worker threads because batches on one shard are serial
        and a library never spans shards.
        """
        with self._mutex:
            if key in self._armed:
                raise LeaseError(f"commit expectation for {key} already armed")
            self._armed[key] = token

    def disarm(self, key: str) -> None:
        with self._mutex:
            self._armed.pop(key, None)

    def expected(self, key: str) -> Optional[int]:
        """The armed commit expectation for *key*, if any."""
        with self._mutex:
            return self._armed.get(key)

    # -- introspection -----------------------------------------------------

    def holder(self, key: str) -> Optional[Lease]:
        with self._mutex:
            return self._live.get(key)

    def live_leases(self) -> List[Lease]:
        with self._mutex:
            return [self._live[key] for key in sorted(self._live)]

    def stats(self) -> Dict[str, object]:
        with self._mutex:
            return {
                "live": len(self._live),
                "granted": self.granted,
                "renewed": self.renewed,
                "released": self.released,
                "reclaimed": self.reclaimed,
                "conflicts": self.conflicts,
                "fenced_commits": self.fenced_commits,
            }
