"""The transport-free serving core: sessions, shards, batches, waves.

:class:`ServeEngine` is everything the design server does *except*
sockets: it validates session context against JCF resources, routes each
run request to a shard by its library, applies admission control,
coalesces admitted requests into windows and executes each flushed
window as one ``run_many`` wave under that shard's commit-group scope.

Two execution modes:

* **deterministic conductor** (``concurrent=False``, the default) —
  flushed batches queue up and :meth:`pump` executes them on the calling
  thread in ascending shard order.  Simulated time still overlaps the
  shards (each shard owns a clock lane; the engine makespan is the
  *maximum* lane end, not the sum), and the whole replay is
  reproducible: same arrivals, same seed → same batches, same waves,
  byte-identical OMS snapshot at any worker count.
* **threaded** (``concurrent=True``) — each shard owns a single-thread
  executor and flushed batches run concurrently across shards (batches
  on one shard stay serial).  This is the mode the asyncio front end
  uses; wall-clock speedup is real but byte-level replay identity is
  not promised (execution interleaving chooses oid allocation order).

The engine is deliberately ignorant of transports and of scripts: the
protocol layer resolves named scripts into activity kwargs before
submitting here.
"""

from __future__ import annotations

import dataclasses
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.scheduler import RunOutcome, RunRequest
from repro.errors import SessionError
from repro.server.admission import AdmissionController, TokenBucket
from repro.server.coalescer import ShardBatcher
from repro.server.shards import ShardMap
from repro.workloads.metrics import percentiles


@dataclasses.dataclass
class SessionContext:
    """One designer session's resolved, validated working context."""

    session_id: str
    user: str
    team: str
    project: Any        # JCFProject
    library: Any        # fmcad Library
    library_name: str
    shard_id: int
    requests_submitted: int = 0


@dataclasses.dataclass
class PendingRun:
    """One admitted run request travelling through a shard's pipeline."""

    ticket: int
    session: SessionContext
    request: RunRequest
    submit_ms: float
    shard_id: int
    status: str = "queued"
    outcome: Optional[RunOutcome] = None
    completed_ms: float = 0.0
    latency_ms: float = 0.0

    @property
    def done(self) -> bool:
        return self.outcome is not None


class _ShardRuntime:
    """Everything one shard owns: lane, admission, batcher, work queue."""

    def __init__(
        self,
        shard_id: int,
        lane,
        admission: AdmissionController,
        batcher: ShardBatcher,
    ) -> None:
        self.shard_id = shard_id
        self.lane = lane
        self.admission = admission
        self.batcher = batcher
        #: flushed-but-unexecuted batches (deterministic mode)
        self.ready: List[Tuple[List[PendingRun], float]] = []
        #: in-flight executor futures (threaded mode)
        self.futures: List[Future] = []
        self.executor: Optional[ThreadPoolExecutor] = None
        self.batch_seq = 0
        self.batches_run = 0
        self.waves_run = 0
        self.runs_ok = 0
        self.runs_failed = 0


class ServeEngine:
    """Multiplexes designer sessions onto sharded ``run_many`` waves."""

    def __init__(
        self,
        hybrid,
        shards: int = 1,
        max_batch: int = 32,
        window_ms: float = 2000.0,
        queue_depth: int = 512,
        admission_rate_per_s: Optional[float] = None,
        admission_burst: Optional[int] = None,
        workers: int = 4,
        seed: int = 0,
        concurrent: bool = False,
        now_fn=None,
    ) -> None:
        self.hybrid = hybrid
        self.clock = hybrid.clock
        self.db = hybrid.jcf.db
        self.workers = workers
        self.seed = seed
        self.concurrent = concurrent
        #: admission/window/latency timeline.  ``None`` (the default)
        #: runs on simulated time — completion stamps come from the
        #: shard lane, so a replay's latency distribution is exactly
        #: reproducible.  The asyncio server passes a monotonic
        #: wall-clock function instead; the shard lanes keep accounting
        #: simulated cost either way.
        self.now_fn = now_fn
        #: callback invoked with each completed batch (executor thread
        #: in threaded mode) — the asyncio front end resolves waiters
        self.on_batch_complete = None
        self.shard_map = ShardMap(shards)
        # the refactor seam: swap the database's global lock manager for
        # per-shard managers routed by the same map that places batches
        self.db.shard_locks(self.shard_map.shard_of_key, shards)
        #: simulated instant the serving timeline starts; every shard
        #: lane opens here so lane ends are comparable
        self.epoch_ms = self.clock.now_ms
        self._runtimes: List[_ShardRuntime] = []
        for shard_id in range(shards):
            bucket = None
            if admission_rate_per_s is not None:
                burst = admission_burst or max(1, int(admission_rate_per_s))
                bucket = TokenBucket(
                    admission_rate_per_s, burst, start_ms=self._now()
                )
            runtime = _ShardRuntime(
                shard_id,
                lane=self.clock.open_lane(
                    f"shard{shard_id}", start_ms=self.epoch_ms
                ),
                admission=AdmissionController(
                    shard_id, queue_depth, bucket=bucket
                ),
                batcher=ShardBatcher(shard_id, max_batch, window_ms),
            )
            if concurrent:
                runtime.executor = ThreadPoolExecutor(
                    max_workers=1,
                    thread_name_prefix=f"shard{shard_id}",
                )
            self._runtimes.append(runtime)
        self._mutex = threading.Lock()
        self._sessions: Dict[str, SessionContext] = {}
        self._session_seq = 0
        self._ticket_seq = 0
        self._completed: List[PendingRun] = []
        self._closed = False

    def _now(self) -> float:
        """Current admission-timeline time (simulated unless now_fn set)."""
        if self.now_fn is not None:
            return self.now_fn()
        return self.clock.now_ms

    # -- sessions ----------------------------------------------------------

    def open_session(
        self,
        user: str,
        team: str,
        library_name: str,
        project_name: Optional[str] = None,
    ) -> SessionContext:
        """Validate and register one designer session.

        The session binds a user, a team and the library the team works
        in; every later ``run`` request executes in this context.  The
        checks mirror what the JCF desktop enforces interactively.
        """
        resources = self.hybrid.jcf.resources
        if resources.find_user(user) is None:
            raise SessionError(f"unknown user {user!r}")
        if resources.find_team(team) is None:
            raise SessionError(f"unknown team {team!r}")
        if not resources.is_member(user, team):
            raise SessionError(f"user {user!r} is not a member of {team!r}")
        library = self.hybrid.fmcad.library(library_name)
        project = self.hybrid.jcf.project(project_name or library_name)
        if not resources.team_supports_project(team, project.oid):
            raise SessionError(
                f"team {team!r} is not assigned to project {project.name!r}"
            )
        with self._mutex:
            self._session_seq += 1
            session = SessionContext(
                session_id=f"s{self._session_seq:05d}",
                user=user,
                team=team,
                project=project,
                library=library,
                library_name=library_name,
                shard_id=self.shard_map.shard_of_library(library_name),
            )
            self._sessions[session.session_id] = session
        return session

    def session(self, session_id: str) -> SessionContext:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise SessionError(f"unknown session {session_id!r}") from None

    # -- submission --------------------------------------------------------

    def submit(
        self,
        session: SessionContext,
        cell_name: str,
        activity: str,
        kwargs: Optional[Dict[str, Any]] = None,
        reads: Sequence[Tuple[str, str]] = (),
        now_ms: Optional[float] = None,
    ) -> PendingRun:
        """Admit one run request onto its session's shard.

        Raises :class:`~repro.errors.ServerOverloadError` when the shard
        refuses it (bounded queue, token bucket, draining) — the request
        was never queued and has no ticket.  On success the returned
        :class:`PendingRun` completes when its window's wave executes.
        """
        runtime = self._runtimes[session.shard_id]
        now = self._now() if now_ms is None else now_ms
        runtime.admission.admit(now)
        request = RunRequest(
            user=session.user,
            project=session.project,
            library=session.library,
            cell_name=cell_name,
            activity=activity,
            kwargs=dict(kwargs or {}),
            reads=tuple(reads),
        )
        with self._mutex:
            self._ticket_seq += 1
            pending = PendingRun(
                ticket=self._ticket_seq,
                session=session,
                request=request,
                submit_ms=now,
                shard_id=session.shard_id,
            )
        session.requests_submitted += 1
        flushed = runtime.batcher.add(pending, now)
        if flushed:
            self._dispatch(runtime, flushed, now)
        return pending

    # -- execution ---------------------------------------------------------

    def _dispatch(
        self,
        runtime: _ShardRuntime,
        batch: List[PendingRun],
        flush_ms: float,
    ) -> None:
        if runtime.executor is not None:
            runtime.futures.append(
                runtime.executor.submit(
                    self._execute_batch, runtime, batch, flush_ms
                )
            )
        else:
            runtime.ready.append((batch, flush_ms))

    def _execute_batch(
        self,
        runtime: _ShardRuntime,
        batch: List[PendingRun],
        flush_ms: float,
    ) -> None:
        """Run one flushed window as a ``run_many`` wave on its shard.

        Executes inside the shard's clock lane: the wave's critical path
        folds into the shard timeline (shards overlap in simulated time)
        and a shard idle until *flush_ms* first fast-forwards to it — a
        batch cannot start before its window flushed.
        """
        runtime.batch_seq += 1
        scope = f"shard{runtime.shard_id}"
        prefix = f"s{runtime.shard_id}b{runtime.batch_seq:04d}_"
        with self.clock.use_lane(runtime.lane):
            if self.now_fn is None:
                # simulated conductor: a batch cannot start before its
                # window flushed; fast-forward an idle shard lane
                self.clock.advance_to(flush_ms)
            result = self.hybrid.run_many(
                [pending.request for pending in batch],
                workers=self.workers,
                seed=self.seed,
                commit_scope=scope,
                sandbox_prefix=prefix,
            )
            end_ms = self.clock.now_ms
        if self.now_fn is not None:
            # wall-clock serving: latency is measured on the same
            # timeline submissions were stamped on
            end_ms = self.now_fn()
        for pending, outcome in zip(batch, result.outcomes):
            pending.outcome = outcome
            pending.status = outcome.status
            pending.completed_ms = end_ms
            pending.latency_ms = end_ms - pending.submit_ms
            if outcome.ok:
                runtime.runs_ok += 1
            else:
                runtime.runs_failed += 1
        runtime.admission.complete(len(batch))
        runtime.batches_run += 1
        runtime.waves_run += len(result.waves)
        with self._mutex:
            self._completed.extend(batch)
        if self.on_batch_complete is not None:
            self.on_batch_complete(list(batch))

    def pump(self, now_ms: Optional[float] = None) -> int:
        """Flush due windows and run queued batches; returns runs executed.

        In deterministic mode this **is** the conductor: batches execute
        on the calling thread in ascending shard order, so the whole
        schedule — and therefore oid allocation and the final snapshot —
        is a pure function of arrivals and seed.  In threaded mode it
        only flushes due windows (their executors do the running).
        """
        now = self._now() if now_ms is None else now_ms
        executed = 0
        for runtime in self._runtimes:
            due = runtime.batcher.flush_due(now)
            if due:
                self._dispatch(runtime, due, now)
        for runtime in self._runtimes:
            while runtime.ready:
                batch, flush_ms = runtime.ready.pop(0)
                self._execute_batch(runtime, batch, flush_ms)
                executed += len(batch)
        return executed

    def drain(self, now_ms: Optional[float] = None) -> int:
        """Flush every partial window and finish all in-flight work.

        Folds the shard lanes back into the master clock afterwards, so
        ``clock.now_ms - epoch_ms`` on the master timeline reads the
        serving makespan (the busiest shard's end).
        """
        now = self._now() if now_ms is None else now_ms
        executed = 0
        for runtime in self._runtimes:
            leftover = runtime.batcher.flush()
            if leftover:
                self._dispatch(runtime, leftover, now)
        executed += self.pump(now)
        for runtime in self._runtimes:
            for future in runtime.futures:
                future.result()
            runtime.futures.clear()
        self.clock.advance_to(
            max(runtime.lane.now_ms for runtime in self._runtimes)
        )
        return executed

    def close(self) -> None:
        """Stop admitting, drain everything in flight, shut executors down."""
        for runtime in self._runtimes:
            runtime.admission.close()
        self.drain()
        self._closed = True
        for runtime in self._runtimes:
            if runtime.executor is not None:
                runtime.executor.shutdown(wait=True)

    # -- introspection -----------------------------------------------------

    @property
    def makespan_ms(self) -> float:
        """Simulated serving time so far: busiest shard lane vs. epoch."""
        return (
            max(runtime.lane.now_ms for runtime in self._runtimes)
            - self.epoch_ms
        )

    def completed(self) -> List[PendingRun]:
        with self._mutex:
            return list(self._completed)

    def latencies_ms(self) -> List[float]:
        """Submission-to-commit simulated latency of every completed run."""
        with self._mutex:
            return [pending.latency_ms for pending in self._completed]

    def stats(self) -> Dict[str, object]:
        """The ``stats`` request: queue depths, latency tail, shard detail."""
        with self._mutex:
            completed = list(self._completed)
            sessions = len(self._sessions)
        latency = percentiles([p.latency_ms for p in completed])
        per_shard = []
        for runtime in self._runtimes:
            per_shard.append(
                {
                    "admission": runtime.admission.stats(),
                    "window_pending": len(runtime.batcher),
                    "flushes_by_size": runtime.batcher.flushes_by_size,
                    "flushes_by_deadline": runtime.batcher.flushes_by_deadline,
                    "batches_run": runtime.batches_run,
                    "waves_run": runtime.waves_run,
                    "runs_ok": runtime.runs_ok,
                    "runs_failed": runtime.runs_failed,
                    "lane_ms": runtime.lane.now_ms - self.epoch_ms,
                }
            )
        return {
            "shards": self.shard_map.shards,
            "sessions": sessions,
            "completed_runs": len(completed),
            "ok_runs": sum(1 for p in completed if p.outcome and p.outcome.ok),
            "makespan_ms": self.makespan_ms,
            "latency_ms": latency,
            "per_shard": per_shard,
            "locks": self.db.locks.stats(),
            "commits": {
                "commit_count": self.db.commit_count,
                "flush_count": self.db.flush_count,
                "coalesced_commits": self.db.coalesced_commits,
            },
        }
