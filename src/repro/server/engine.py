"""The transport-free serving core: sessions, shards, batches, waves.

:class:`ServeEngine` is everything the design server does *except*
sockets: it validates session context against JCF resources, routes each
run request to a shard by its library, applies admission control,
coalesces admitted requests into windows and executes each flushed
window as one ``run_many`` wave under that shard's commit-group scope.

Two execution modes:

* **deterministic conductor** (``concurrent=False``, the default) —
  flushed batches queue up and :meth:`pump` executes them on the calling
  thread in ascending shard order.  Simulated time still overlaps the
  shards (each shard owns a clock lane; the engine makespan is the
  *maximum* lane end, not the sum), and the whole replay is
  reproducible: same arrivals, same seed → same batches, same waves,
  byte-identical OMS snapshot at any worker count.
* **threaded** (``concurrent=True``) — each shard owns a single-thread
  executor and flushed batches run concurrently across shards (batches
  on one shard stay serial).  This is the mode the asyncio front end
  uses; wall-clock speedup is real but byte-level replay identity is
  not promised (execution interleaving chooses oid allocation order).

The engine is deliberately ignorant of transports and of scripts: the
protocol layer resolves named scripts into activity kwargs before
submitting here.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.scheduler import RUN_CRASHED, RunOutcome, RunRequest
from repro.errors import (
    DeadlineExceededError,
    LeaseFencedError,
    LeaseHeldError,
    SessionError,
    ShardUnavailableError,
)
from repro.faults import CrashFault, fault_point
from repro.server.admission import AdmissionController, TokenBucket
from repro.server.coalescer import ShardBatcher
from repro.server.health import CircuitBreaker
from repro.server.leases import Lease, LeaseTable, lease_key
from repro.server.shards import ShardMap
from repro.workloads.metrics import percentiles


@dataclasses.dataclass
class SessionContext:
    """One designer session's resolved, validated working context."""

    session_id: str
    user: str
    team: str
    project: Any        # JCFProject
    library: Any        # fmcad Library
    library_name: str
    shard_id: int
    requests_submitted: int = 0
    #: bounded request_key -> PendingRun window for idempotent retries
    dedupe: "OrderedDict[str, PendingRun]" = dataclasses.field(
        default_factory=OrderedDict
    )
    dedupe_hits: int = 0


@dataclasses.dataclass
class PendingRun:
    """One admitted run request travelling through a shard's pipeline."""

    ticket: int
    session: SessionContext
    request: RunRequest
    submit_ms: float
    shard_id: int
    status: str = "queued"
    outcome: Optional[RunOutcome] = None
    completed_ms: float = 0.0
    latency_ms: float = 0.0
    #: absolute admission-timeline instant after which the run is shed
    deadline_ms: Optional[float] = None
    #: client-supplied idempotency key (dedupe window lives on the session)
    request_key: Optional[str] = None
    #: fencing token of the session's lease on the target cell, if leased
    fence_token: Optional[int] = None
    #: typed refusal (deadline/fence/shard) when the run never executed
    error: Optional[Exception] = None
    cancelled: bool = False
    #: times a retry was answered from this pending instead of re-running
    dedupe_count: int = 0

    @property
    def done(self) -> bool:
        return self.outcome is not None

    @property
    def settled(self) -> bool:
        """True once the pending can never execute again: it ran, it was
        refused with a typed error, or the client cancelled it."""
        return (
            self.outcome is not None
            or self.error is not None
            or self.cancelled
        )


class _ShardRuntime:
    """Everything one shard owns: lane, admission, batcher, work queue."""

    def __init__(
        self,
        shard_id: int,
        lane,
        admission: AdmissionController,
        batcher: ShardBatcher,
        breaker: CircuitBreaker,
    ) -> None:
        self.shard_id = shard_id
        self.lane = lane
        self.admission = admission
        self.batcher = batcher
        self.breaker = breaker
        #: flushed-but-unexecuted batches (deterministic mode)
        self.ready: List[Tuple[List[PendingRun], float]] = []
        #: in-flight executor futures (threaded mode)
        self.futures: List[Future] = []
        self.executor: Optional[ThreadPoolExecutor] = None
        self.batch_seq = 0
        self.batches_run = 0
        self.waves_run = 0
        self.runs_ok = 0
        self.runs_failed = 0
        self.deadline_shed = 0
        self.fenced = 0
        self.cancelled = 0


class ServeEngine:
    """Multiplexes designer sessions onto sharded ``run_many`` waves."""

    def __init__(
        self,
        hybrid,
        shards: int = 1,
        max_batch: int = 32,
        window_ms: float = 2000.0,
        queue_depth: int = 512,
        admission_rate_per_s: Optional[float] = None,
        admission_burst: Optional[int] = None,
        workers: int = 4,
        seed: int = 0,
        concurrent: bool = False,
        now_fn=None,
        lease_ttl_ms: float = 30_000.0,
        breaker_threshold: int = 3,
        breaker_cooldown_ms: float = 5_000.0,
        dedupe_window: int = 64,
    ) -> None:
        self.hybrid = hybrid
        self.clock = hybrid.clock
        self.db = hybrid.jcf.db
        self.workers = workers
        self.seed = seed
        self.concurrent = concurrent
        self.dedupe_window = dedupe_window
        #: admission/window/latency timeline.  ``None`` (the default)
        #: runs on simulated time — completion stamps come from the
        #: shard lane, so a replay's latency distribution is exactly
        #: reproducible.  The asyncio server passes a monotonic
        #: wall-clock function instead; the shard lanes keep accounting
        #: simulated cost either way.
        self.now_fn = now_fn
        #: callback invoked with each completed batch (executor thread
        #: in threaded mode) — the asyncio front end resolves waiters
        self.on_batch_complete = None
        self.shard_map = ShardMap(shards)
        # the refactor seam: swap the database's global lock manager for
        # per-shard managers routed by the same map that places batches
        self.db.shard_locks(self.shard_map.shard_of_key, shards)
        #: simulated instant the serving timeline starts; every shard
        #: lane opens here so lane ends are comparable
        self.epoch_ms = self.clock.now_ms
        #: per-cell checkout leases; published on the database so
        #: CouplingRecovery and ConsistencyGuard find them the same way
        #: they find the WAL (optional attachment, getattr-probed)
        self.leases = LeaseTable(ttl_ms=lease_ttl_ms, now_fn=self._now)
        self.db.lease_table = self.leases
        # commit-time fence: the FMCAD checkin path refuses to write a
        # version for a leased cell whose armed token is no longer the
        # current grant (the zombie-session guard)
        hybrid.fmcad.checkouts.set_checkin_guard(self._checkin_fence)
        self._runtimes: List[_ShardRuntime] = []
        for shard_id in range(shards):
            bucket = None
            if admission_rate_per_s is not None:
                burst = admission_burst or max(1, int(admission_rate_per_s))
                bucket = TokenBucket(
                    admission_rate_per_s, burst, start_ms=self._now()
                )
            runtime = _ShardRuntime(
                shard_id,
                lane=self.clock.open_lane(
                    f"shard{shard_id}", start_ms=self.epoch_ms
                ),
                admission=AdmissionController(
                    shard_id, queue_depth, bucket=bucket
                ),
                batcher=ShardBatcher(shard_id, max_batch, window_ms),
                breaker=CircuitBreaker(
                    shard_id, breaker_threshold, breaker_cooldown_ms
                ),
            )
            if concurrent:
                runtime.executor = ThreadPoolExecutor(
                    max_workers=1,
                    thread_name_prefix=f"shard{shard_id}",
                )
            self._runtimes.append(runtime)
        self._mutex = threading.Lock()
        self._sessions: Dict[str, SessionContext] = {}
        self._session_seq = 0
        self._ticket_seq = 0
        self._completed: List[PendingRun] = []
        self._closed = False

    def _now(self) -> float:
        """Current admission-timeline time (simulated unless now_fn set)."""
        if self.now_fn is not None:
            return self.now_fn()
        return self.clock.now_ms

    # -- sessions ----------------------------------------------------------

    def open_session(
        self,
        user: str,
        team: str,
        library_name: str,
        project_name: Optional[str] = None,
    ) -> SessionContext:
        """Validate and register one designer session.

        The session binds a user, a team and the library the team works
        in; every later ``run`` request executes in this context.  The
        checks mirror what the JCF desktop enforces interactively.
        """
        resources = self.hybrid.jcf.resources
        if resources.find_user(user) is None:
            raise SessionError(f"unknown user {user!r}")
        if resources.find_team(team) is None:
            raise SessionError(f"unknown team {team!r}")
        if not resources.is_member(user, team):
            raise SessionError(f"user {user!r} is not a member of {team!r}")
        library = self.hybrid.fmcad.library(library_name)
        project = self.hybrid.jcf.project(project_name or library_name)
        if not resources.team_supports_project(team, project.oid):
            raise SessionError(
                f"team {team!r} is not assigned to project {project.name!r}"
            )
        with self._mutex:
            self._session_seq += 1
            session = SessionContext(
                session_id=f"s{self._session_seq:05d}",
                user=user,
                team=team,
                project=project,
                library=library,
                library_name=library_name,
                shard_id=self.shard_map.shard_of_library(library_name),
            )
            self._sessions[session.session_id] = session
        return session

    def session(self, session_id: str) -> SessionContext:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise SessionError(f"unknown session {session_id!r}") from None

    def touch_session(
        self, session: SessionContext, now_ms: Optional[float] = None
    ) -> int:
        """Heartbeat (``ping``): renew every lease the session holds."""
        now = self._now() if now_ms is None else now_ms
        return self.leases.renew(session.session_id, now_ms=now)

    def end_session(self, session: SessionContext) -> int:
        """Graceful ``bye``: release the session's leases."""
        return self.leases.release_session(session.session_id)

    # -- leases ------------------------------------------------------------

    def acquire_lease(
        self,
        session: SessionContext,
        cell_name: str,
        now_ms: Optional[float] = None,
        ttl_ms: Optional[float] = None,
    ) -> Lease:
        """Grant (or renew) the session's write lease on one cell."""
        now = self._now() if now_ms is None else now_ms
        return self.leases.acquire(
            session.session_id,
            session.user,
            session.library_name,
            cell_name,
            now_ms=now,
            ttl_ms=ttl_ms,
        )

    def release_lease(self, session: SessionContext, cell_name: str) -> bool:
        return self.leases.release(
            session.session_id,
            lease_key(session.library_name, cell_name),
        )

    def _checkin_fence(self, ticket, library) -> None:
        """FMCAD checkin guard: refuse commits under a superseded lease.

        Runs inside ``write_version`` for every served checkin.  Cells
        without an armed expectation (unleased work) pass untouched —
        leases are opt-in.  No clock is consulted: expiry was judged on
        the admission timeline when the batch was assembled; here only
        the token lineage matters, so a zombie whose lease was reclaimed
        (and possibly re-granted) mid-batch is still fenced.
        """
        key = lease_key(library.name, ticket.cell_name)
        expected = self.leases.expected(key)
        if expected is None:
            return
        holder = self.leases.holder(key)
        current = holder.token if holder is not None else 0
        if current != expected:
            self.leases.fenced_commits += 1
            raise LeaseFencedError(
                f"checkin of {key} fenced: batch armed token {expected} "
                f"but current grant is {current or 'none'}",
                key=key,
                token=expected,
                current=current,
            )

    # -- submission --------------------------------------------------------

    def submit(
        self,
        session: SessionContext,
        cell_name: str,
        activity: str,
        kwargs: Optional[Dict[str, Any]] = None,
        reads: Sequence[Tuple[str, str]] = (),
        now_ms: Optional[float] = None,
        deadline_ms: Optional[float] = None,
        request_key: Optional[str] = None,
    ) -> PendingRun:
        """Admit one run request onto its session's shard.

        Raises :class:`~repro.errors.ServerOverloadError` when the shard
        refuses it (bounded queue, token bucket, draining),
        :class:`~repro.errors.ShardUnavailableError` while its circuit
        breaker is open, and :class:`~repro.errors.DeadlineExceededError`
        for an already-expired ``deadline_ms`` — in every refusal the
        request was never queued and has no ticket.  On success the
        returned :class:`PendingRun` completes when its window's wave
        executes.

        ``deadline_ms`` is a *relative* budget; the engine stamps the
        absolute expiry on the admission timeline and sheds the run (with
        a typed error, not silence) if its window flushes too late.
        ``request_key`` makes the submit idempotent per session: a retry
        carrying the same key is answered from the original pending while
        it is in flight or succeeded, so a lost ack cannot double-commit.
        """
        runtime = self._runtimes[session.shard_id]
        now = self._now() if now_ms is None else now_ms
        self.leases.reclaim_due(now)
        if request_key is not None:
            cached = session.dedupe.get(request_key)
            if cached is not None:
                if not cached.settled or (
                    cached.outcome is not None and cached.outcome.ok
                ):
                    cached.dedupe_count += 1
                    session.dedupe_hits += 1
                    return cached
                # settled but refused/failed/cancelled: the retry is a
                # genuine re-attempt — forget it and re-admit
                del session.dedupe[request_key]
        runtime.breaker.admit(now)
        if deadline_ms is not None and deadline_ms <= 0:
            raise DeadlineExceededError(
                f"deadline budget {deadline_ms!r}ms already spent at submit",
                shard_id=session.shard_id,
                retry_after_ms=0.0,
            )
        # a lease is exclusive: a non-holder (including a zombie whose
        # own lease expired) is refused while any live lease covers the
        # cell — raises LeaseHeldError with a retry hint
        self.leases.assert_writable(
            session.session_id,
            lease_key(session.library_name, cell_name),
            now_ms=now,
        )
        runtime.admission.admit(now)
        request = RunRequest(
            user=session.user,
            project=session.project,
            library=session.library,
            cell_name=cell_name,
            activity=activity,
            kwargs=dict(kwargs or {}),
            reads=tuple(reads),
        )
        with self._mutex:
            self._ticket_seq += 1
            pending = PendingRun(
                ticket=self._ticket_seq,
                session=session,
                request=request,
                submit_ms=now,
                shard_id=session.shard_id,
                deadline_ms=(
                    None if deadline_ms is None else now + deadline_ms
                ),
                request_key=request_key,
                fence_token=self.leases.token_of(
                    session.session_id, request.write_key
                ),
            )
        session.requests_submitted += 1
        if request_key is not None:
            session.dedupe[request_key] = pending
            while len(session.dedupe) > self.dedupe_window:
                session.dedupe.popitem(last=False)
        flushed = runtime.batcher.add(pending, now)
        if flushed:
            self._dispatch(runtime, flushed, now)
        return pending

    def cancel(self, pending: PendingRun) -> bool:
        """Withdraw a not-yet-started run (client disconnected).

        Only runs still sitting in their coalescer window can be
        cancelled; a flushed run executes regardless (its result is
        simply unobserved).  Returns True if the run was withdrawn.
        """
        runtime = self._runtimes[pending.shard_id]
        if pending.settled:
            return False
        if not runtime.batcher.remove(pending):
            return False
        pending.cancelled = True
        pending.status = "cancelled"
        runtime.admission.complete(1)
        runtime.cancelled += 1
        return True

    # -- execution ---------------------------------------------------------

    def _dispatch(
        self,
        runtime: _ShardRuntime,
        batch: List[PendingRun],
        flush_ms: float,
    ) -> None:
        if runtime.executor is not None:
            runtime.futures.append(
                runtime.executor.submit(
                    self._execute_batch, runtime, batch, flush_ms
                )
            )
        else:
            runtime.ready.append((batch, flush_ms))

    def _shed(
        self,
        runtime: _ShardRuntime,
        pending: PendingRun,
        status: str,
        error: Exception,
        eval_ms: float,
    ) -> None:
        """Settle one pending with a typed refusal instead of running it."""
        pending.status = status
        pending.error = error
        pending.completed_ms = eval_ms
        pending.latency_ms = eval_ms - pending.submit_ms
        runtime.runs_failed += 1

    def _execute_batch(
        self,
        runtime: _ShardRuntime,
        batch: List[PendingRun],
        flush_ms: float,
    ) -> None:
        """Run one flushed window as a ``run_many`` wave on its shard.

        Before the wave starts, the batch is triaged on the admission
        timeline: cancelled runs are skipped, expired deadlines are
        answered with :class:`~repro.errors.DeadlineExceededError`, and
        leased runs whose fencing token is no longer the current grant
        are answered with :class:`~repro.errors.LeaseFencedError` — none
        of them occupy a wave slot.  The survivors execute inside the
        shard's clock lane: the wave's critical path folds into the shard
        timeline (shards overlap in simulated time) and a shard idle
        until *flush_ms* first fast-forwards to it — a batch cannot start
        before its window flushed.

        A wave that raises (or crashes any run) feeds the shard's circuit
        breaker; a clean wave heals it.  :class:`~repro.faults.CrashFault`
        from the ``server.dispatch`` fault point propagates — that *is*
        the crash-mid-batch scenario, and recovery owns what follows.
        """
        eval_ms = self.now_fn() if self.now_fn is not None else flush_ms
        self.leases.reclaim_due(eval_ms)
        shed: List[PendingRun] = []
        runnable: List[PendingRun] = []
        for pending in batch:
            if pending.cancelled:
                continue
            if (
                pending.deadline_ms is not None
                and eval_ms >= pending.deadline_ms
            ):
                self._shed(
                    runtime,
                    pending,
                    "deadline-exceeded",
                    DeadlineExceededError(
                        f"run {pending.ticket} missed its deadline by "
                        f"{eval_ms - pending.deadline_ms:.1f}ms in the "
                        f"batch window",
                        shard_id=runtime.shard_id,
                        retry_after_ms=0.0,
                    ),
                    eval_ms,
                )
                runtime.deadline_shed += 1
                shed.append(pending)
                continue
            key = pending.request.write_key
            token = self.leases.token_of(pending.session.session_id, key)
            if pending.fence_token is not None and token != pending.fence_token:
                # the lease this run was admitted under is gone (expired,
                # released, or superseded) — the zombie is fenced
                self._shed(
                    runtime,
                    pending,
                    "lease-fenced",
                    LeaseFencedError(
                        f"run {pending.ticket} holds stale fencing token "
                        f"{pending.fence_token} for {key} "
                        f"(current grant: {token or 'none'})",
                        key=key,
                        token=pending.fence_token,
                        current=token or 0,
                    ),
                    eval_ms,
                )
                runtime.fenced += 1
                shed.append(pending)
                continue
            if token is None:
                holder = self.leases.holder(key)
                if holder is not None:
                    # someone else leased the cell between submit and
                    # flush: the exclusive claim wins
                    self._shed(
                        runtime,
                        pending,
                        "lease-fenced",
                        LeaseHeldError(
                            f"{key} is leased to session "
                            f"{holder.session_id} ({holder.user})",
                            key=key,
                            holder=holder.session_id,
                            retry_after_ms=max(
                                holder.expires_ms - eval_ms, 0.0
                            ),
                        ),
                        eval_ms,
                    )
                    runtime.fenced += 1
                    shed.append(pending)
                    continue
            # may upgrade None -> token: a lease acquired after submit
            # still fences this run's commit
            pending.fence_token = token
            runnable.append(pending)
        result = None
        armed: List[str] = []
        if runnable:
            runtime.batch_seq += 1
            scope = f"shard{runtime.shard_id}"
            prefix = f"s{runtime.shard_id}b{runtime.batch_seq:04d}_"
            # commit expectations for the checkin guard: a leased key must
            # still carry its validated token at write time; an unleased
            # key (token 0) must still be unleased — acquiring a lease on
            # a cell mid-wave fences the in-flight writer either way
            to_arm: Dict[str, int] = {}
            for pending in runnable:
                to_arm.setdefault(
                    pending.request.write_key, pending.fence_token or 0
                )
            for key, expected in to_arm.items():
                self.leases.arm(key, expected)
                armed.append(key)
            end_ms = flush_ms
            try:
                with self.clock.use_lane(runtime.lane):
                    if self.now_fn is None:
                        # simulated conductor: a batch cannot start
                        # before its window flushed; fast-forward an
                        # idle shard lane
                        self.clock.advance_to(flush_ms)
                    fault_point("server.dispatch")
                    result = self.hybrid.run_many(
                        [pending.request for pending in runnable],
                        workers=self.workers,
                        seed=self.seed,
                        commit_scope=scope,
                        sandbox_prefix=prefix,
                    )
                    end_ms = self.clock.now_ms
            except CrashFault:
                runtime.breaker.record_failure(eval_ms)
                raise
            except Exception:
                # the wave never produced outcomes: the shard is wedged
                runtime.breaker.record_failure(eval_ms)
                for pending in runnable:
                    self._shed(
                        runtime,
                        pending,
                        "shard-unavailable",
                        ShardUnavailableError(
                            f"shard {runtime.shard_id} failed its wave; "
                            f"retry on a healthy window",
                            shard_id=runtime.shard_id,
                            state=runtime.breaker.state,
                            retry_after_ms=runtime.breaker.cooldown_ms,
                        ),
                        eval_ms,
                    )
                shed.extend(runnable)
                runnable = []
            finally:
                for key in armed:
                    self.leases.disarm(key)
        if result is not None:
            if self.now_fn is not None:
                # wall-clock serving: latency is measured on the same
                # timeline submissions were stamped on
                end_ms = self.now_fn()
            crashed = False
            for pending, outcome in zip(runnable, result.outcomes):
                pending.outcome = outcome
                pending.status = outcome.status
                pending.completed_ms = end_ms
                pending.latency_ms = end_ms - pending.submit_ms
                if outcome.ok:
                    runtime.runs_ok += 1
                else:
                    runtime.runs_failed += 1
                if outcome.status == RUN_CRASHED:
                    crashed = True
            runtime.batches_run += 1
            runtime.waves_run += len(result.waves)
            record_ms = self.now_fn() if self.now_fn is not None else flush_ms
            if crashed:
                runtime.breaker.record_failure(record_ms)
            else:
                runtime.breaker.record_success(record_ms)
        settled = shed + runnable if result is not None else shed
        runtime.admission.complete(
            sum(1 for pending in batch if not pending.cancelled)
        )
        with self._mutex:
            self._completed.extend(settled)
        if self.on_batch_complete is not None and settled:
            self.on_batch_complete(list(settled))

    def pump(self, now_ms: Optional[float] = None) -> int:
        """Flush due windows and run queued batches; returns runs executed.

        In deterministic mode this **is** the conductor: batches execute
        on the calling thread in ascending shard order, so the whole
        schedule — and therefore oid allocation and the final snapshot —
        is a pure function of arrivals and seed.  In threaded mode it
        only flushes due windows (their executors do the running).
        """
        now = self._now() if now_ms is None else now_ms
        executed = 0
        self.leases.reclaim_due(now)
        for runtime in self._runtimes:
            due = runtime.batcher.flush_due(now)
            if due:
                self._dispatch(runtime, due, now)
        for runtime in self._runtimes:
            while runtime.ready:
                batch, flush_ms = runtime.ready.pop(0)
                self._execute_batch(runtime, batch, flush_ms)
                executed += len(batch)
        return executed

    def drain(self, now_ms: Optional[float] = None) -> int:
        """Flush every partial window and finish all in-flight work.

        Folds the shard lanes back into the master clock afterwards, so
        ``clock.now_ms - epoch_ms`` on the master timeline reads the
        serving makespan (the busiest shard's end).
        """
        now = self._now() if now_ms is None else now_ms
        executed = 0
        for runtime in self._runtimes:
            leftover = runtime.batcher.flush()
            if leftover:
                self._dispatch(runtime, leftover, now)
        executed += self.pump(now)
        for runtime in self._runtimes:
            for future in runtime.futures:
                future.result()
            runtime.futures.clear()
        self.clock.advance_to(
            max(runtime.lane.now_ms for runtime in self._runtimes)
        )
        return executed

    def close(self) -> None:
        """Stop admitting, drain everything in flight, shut executors down."""
        for runtime in self._runtimes:
            runtime.admission.close()
        self.drain()
        self._closed = True
        for runtime in self._runtimes:
            if runtime.executor is not None:
                runtime.executor.shutdown(wait=True)

    # -- introspection -----------------------------------------------------

    @property
    def makespan_ms(self) -> float:
        """Simulated serving time so far: busiest shard lane vs. epoch."""
        return (
            max(runtime.lane.now_ms for runtime in self._runtimes)
            - self.epoch_ms
        )

    def completed(self) -> List[PendingRun]:
        with self._mutex:
            return list(self._completed)

    def latencies_ms(self) -> List[float]:
        """Submission-to-commit simulated latency of every completed run."""
        with self._mutex:
            return [pending.latency_ms for pending in self._completed]

    def stats(self) -> Dict[str, object]:
        """The ``stats`` request: queue depths, latency tail, shard detail."""
        with self._mutex:
            completed = list(self._completed)
            sessions = len(self._sessions)
        latency = percentiles([p.latency_ms for p in completed])
        per_shard = []
        for runtime in self._runtimes:
            per_shard.append(
                {
                    "admission": runtime.admission.stats(),
                    "breaker": runtime.breaker.stats(),
                    "window_pending": len(runtime.batcher),
                    "flushes_by_size": runtime.batcher.flushes_by_size,
                    "flushes_by_deadline": runtime.batcher.flushes_by_deadline,
                    "batches_run": runtime.batches_run,
                    "waves_run": runtime.waves_run,
                    "runs_ok": runtime.runs_ok,
                    "runs_failed": runtime.runs_failed,
                    "deadline_shed": runtime.deadline_shed,
                    "fenced": runtime.fenced,
                    "cancelled": runtime.cancelled,
                    "lane_ms": runtime.lane.now_ms - self.epoch_ms,
                }
            )
        with self._mutex:
            dedupe_hits = sum(
                context.dedupe_hits for context in self._sessions.values()
            )
        return {
            "shards": self.shard_map.shards,
            "sessions": sessions,
            "completed_runs": len(completed),
            "ok_runs": sum(1 for p in completed if p.outcome and p.outcome.ok),
            "makespan_ms": self.makespan_ms,
            "latency_ms": latency,
            "leases": self.leases.stats(),
            "dedupe_hits": dedupe_hits,
            "per_shard": per_shard,
            "locks": self.db.locks.stats(),
            "commits": {
                "commit_count": self.db.commit_count,
                "flush_count": self.db.flush_count,
                "coalesced_commits": self.db.coalesced_commits,
            },
        }
