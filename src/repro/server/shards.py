"""Consistent-hash shard map over library names.

Sharding is **per library**: the unit of team collaboration in the
coupled framework is the FMCAD library a team works in, so routing by
library name puts each team's whole lock namespace, commit coalescing
and batch execution on one shard — independent teams never contend.

Consistent hashing (a ring of virtual nodes per shard) keeps the map
stable under resizing: growing from N to N+1 shards moves roughly
``1/(N+1)`` of the libraries, not all of them, which matters once shard
assignment is baked into queue stats and operators reason about "team X
is on shard 3".
"""

from __future__ import annotations

import bisect
import hashlib
from collections import Counter
from typing import Dict, Iterable, List, Tuple


def _point(token: str) -> int:
    """Stable 64-bit ring position for *token* (independent of PYTHONHASHSEED)."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ShardMap:
    """Maps library names (and lock keys) to shard ids ``0..shards-1``."""

    #: virtual nodes per shard; enough to keep the split within a few
    #: percent of even for realistic library counts
    DEFAULT_REPLICAS = 64

    def __init__(
        self,
        shards: int,
        replicas: int = DEFAULT_REPLICAS,
        seed: int = 0,
    ) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard: {shards!r}")
        if replicas < 1:
            raise ValueError(f"need at least one replica: {replicas!r}")
        self.shards = shards
        self.replicas = replicas
        self.seed = seed
        points: List[Tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(replicas):
                points.append((_point(f"{seed}:{shard}:{replica}"), shard))
        points.sort()
        self._ring_points = [p for p, _ in points]
        self._ring_shards = [s for _, s in points]

    def shard_of_library(self, library_name: str) -> int:
        """The shard owning *library_name* (first ring point clockwise)."""
        if self.shards == 1:
            return 0
        index = bisect.bisect_right(self._ring_points, _point(library_name))
        if index == len(self._ring_points):
            index = 0
        return self._ring_shards[index]

    def shard_of_key(self, lock_key: str) -> int:
        """Route a lock-manager key.

        The scheduler's run-level keys are ``cell/<library>/<cell>``;
        those route by their library segment so a library's whole lock
        namespace lives on one shard.  Any other key shape routes by its
        full text — deterministic, if arbitrary.
        """
        if lock_key.startswith("cell/"):
            parts = lock_key.split("/", 2)
            if len(parts) == 3:
                return self.shard_of_library(parts[1])
        return self.shard_of_library(lock_key)

    def spread(self, library_names: Iterable[str]) -> Dict[int, int]:
        """How many of *library_names* land on each shard (diagnostics)."""
        counts: Counter = Counter(
            self.shard_of_library(name) for name in library_names
        )
        return {shard: counts.get(shard, 0) for shard in range(self.shards)}
